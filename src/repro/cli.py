"""Command-line interface: ``repro-dispersion`` / ``python -m repro``.

Subcommands mirror the experiment suite:

* ``run``         -- one dispersion run, printed round by round;
* ``sweep``       -- rounds vs. k on random churn (Table I row 3 shape);
* ``faults``      -- rounds vs. f crash faults (Table I row 4 shape);
* ``lower-bound`` -- the Theorem 3 star-star adversary (Figure 2 shape);
* ``figure3``     -- the reconstructed Figure 3/4 worked example;
* ``cache``       -- inspect (``stats``, ``verify``) or clean (``gc``,
  ``clear``) the content-addressed run store;
* ``chaos``       -- replay a seeded fault plan (:mod:`repro.chaos`)
  against the campaign and assert bit-identical convergence;
* ``lint``        -- the AST-based determinism / cache-safety analyzer
  (:mod:`repro.lint`): checks the D/C/R/H invariant rules over a source
  tree, with ``--json`` for the machine-readable report.

``sweep``, ``faults`` and ``campaign`` accept ``--jobs N`` to fan their
run grids across ``N`` worker processes (``--jobs -1`` uses every core);
results are bit-identical to serial execution.  The same three commands
cache every run in a content-addressed store (``$REPRO_CACHE_DIR`` or
the user cache dir; override with ``--cache-dir``, opt out with
``--no-cache``), which makes interrupted campaigns resumable and repeat
invocations nearly free.  ``--timeout S`` / ``--retries N`` bound each
work unit's wall clock and retry budget when running with ``--jobs``.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from typing import List, Optional

from repro.adversary.star_lower_bound import StarStarAdversary
from repro.analysis.experiments import (
    run_dispersion,
    summarize,
    sweep_faults,
    sweep_rounds_vs_k,
)
from repro.analysis.figures import build_fig3_instance, fig3_component_summary
from repro.analysis.tables import format_table
from repro.core.dispersion import DispersionDynamic
from repro.graph.dynamic import RandomChurnDynamicGraph
from repro.robots.robot import RobotSet
from repro.sim.engine import SimulationEngine
from repro.sim.hooks import ProgressNarrator
from repro.sim.runner import runner_from_jobs
from repro.sim.store import RunStore


def _component_name(kind: str):
    """An argparse ``type=`` validator resolving ``kind`` registry names.

    Unknown names fail fast at parse time, listing every registered
    component of that kind, so a typo'd ``--backend vectorised`` never
    reaches the engine.
    """

    def validate(name: str) -> str:
        from repro.sim.spec import registered_components

        known = registered_components()[kind]
        if name not in known:
            raise argparse.ArgumentTypeError(
                f"unknown {kind} {name!r}; available: {', '.join(known)}"
            )
        return name

    validate.__name__ = kind  # argparse error messages say "invalid scheduler"
    return validate


class _ListComponentsAction(argparse.Action):
    """``--list-backends`` / ``--list-schedulers``: print registry, exit."""

    def __init__(self, option_strings, dest, kind=None, **kwargs):
        self.kind = kind
        super().__init__(option_strings, dest, nargs=0, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        from repro.sim.spec import registered_components

        for name in registered_components()[self.kind]:
            print(name)
        parser.exit(0)


def _backend_from_args(args: argparse.Namespace):
    """The EngineBackend instance ``--backend`` asks for, or None."""
    if not getattr(args, "backend", None):
        return None
    from repro.sim.spec import ComponentSpec, build_backend

    return build_backend(ComponentSpec(args.backend))


def _add_execution_args(parser: argparse.ArgumentParser, what: str) -> None:
    """The shared execution/caching flags of sweep/faults/campaign."""
    parser.add_argument(
        "--jobs", type=int, default=None,
        help=f"worker processes for {what} (-1: all cores)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="run-store location (default: $REPRO_CACHE_DIR or the user "
        "cache dir)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every run; do not read or write the run store",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-unit wall-clock limit in seconds (with --jobs)",
    )
    parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry budget per work unit (with --jobs)",
    )
    parser.add_argument(
        "--durability", choices=("fast", "strict"), default="fast",
        help="run-store write durability: 'strict' fsyncs entry and "
        "directory so published entries survive power loss intact",
    )


def _store_from_args(args: argparse.Namespace) -> Optional[RunStore]:
    """The run store the command should use, or None with ``--no-cache``."""
    if args.no_cache:
        return None
    return RunStore(
        args.cache_dir, durability=getattr(args, "durability", "fast")
    )


def _print_cache_line(store: Optional[RunStore]) -> None:
    if store is not None:
        print(
            f"cache: {store.hits} hits, {store.misses} misses "
            f"({store.root})"
        )


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.sim.scheduling import (
        AsyncScheduler,
        RandomSubsetActivation,
        SsyncScheduler,
    )

    dyn = RandomChurnDynamicGraph(
        args.n, extra_edges=args.extra_edges, seed=args.seed
    )
    if args.rooted:
        robots = RobotSet.rooted(args.k, args.n)
    else:
        robots = RobotSet.arbitrary(args.k, args.n, random.Random(args.seed))

    scheduler = None
    max_rounds = None
    if args.scheduler == "ssync":
        scheduler = SsyncScheduler(
            RandomSubsetActivation(args.activation_p, seed=args.seed)
        )
        max_rounds = 10 * args.k * args.n + 100
    elif args.scheduler == "async":
        scheduler = AsyncScheduler(seed=args.seed, max_delay=args.max_delay)
        max_rounds = 10 * args.k * args.n + 100

    result = SimulationEngine(
        dyn,
        robots,
        DispersionDynamic(),
        scheduler=scheduler,
        max_rounds=max_rounds,
        observers=[ProgressNarrator()] if args.live else None,
        backend=_backend_from_args(args),
    ).run()
    print(result.summary())
    if result.final_epoch is not None:
        print(f"scheduler={args.scheduler} final logical epoch: "
              f"{result.final_epoch}")
    if args.trace:
        rows = [
            (
                record.round_index,
                len(record.occupied_before),
                len(record.occupied_after),
                record.num_moves,
                record.num_components,
            )
            for record in result.records
        ]
        print(
            format_table(
                ("round", "occ_before", "occ_after", "moves", "components"),
                rows,
            )
        )
    return 0 if result.dispersed else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    k_values = args.k_values or [8, 16, 32, 64, 128]
    store = _store_from_args(args)
    with runner_from_jobs(
        args.jobs, timeout=args.timeout, retries=args.retries, store=store
    ) as runner:
        data = sweep_rounds_vs_k(
            k_values,
            extra_edges_per_node=args.extra_edges_per_node,
            rooted=args.rooted,
            seeds=range(args.seeds),
            runner=runner,
        )
    rows = []
    for k in k_values:
        stats = summarize(data[k])
        rows.append(
            (
                k,
                2 * k,
                stats["mean_rounds"],
                int(stats["min_rounds"]),
                int(stats["max_rounds"]),
                stats["mean_moves"],
            )
        )
    print(
        format_table(
            ("k", "n", "mean_rounds", "min", "max", "mean_moves"),
            rows,
            title="rounds to dispersion vs k (random churn, Theorem 4 shape)",
        )
    )
    _print_cache_line(store)
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    k = args.k
    f_values = args.f_values or [0, k // 8, k // 4, k // 2, (3 * k) // 4]
    store = _store_from_args(args)
    with runner_from_jobs(
        args.jobs, timeout=args.timeout, retries=args.retries, store=store
    ) as runner:
        data = sweep_faults(k, f_values, seeds=range(args.seeds), runner=runner)
    rows = []
    for f in f_values:
        stats = summarize(data[f])
        rows.append((f, k - f, stats["mean_rounds"], stats["mean_moves"]))
    print(
        format_table(
            ("f", "k-f", "mean_rounds", "mean_moves"),
            rows,
            title=f"rounds vs crash faults, k={k} (Theorem 5 shape)",
        )
    )
    _print_cache_line(store)
    return 0


def _cmd_lower_bound(args: argparse.Namespace) -> int:
    rows = []
    for k in args.k_values or [8, 16, 32, 64]:
        n = k + args.slack_nodes
        adversary = StarStarAdversary(n, [0], seed=args.seed)
        result = run_dispersion(adversary, RobotSet.rooted(k, n))
        rows.append((k, n, result.rounds, k - 1, result.rounds == k - 1))
    print(
        format_table(
            ("k", "n", "rounds", "k-1", "tight"),
            rows,
            title="Theorem 3 star-star adversary: rounds equal k-1 exactly",
        )
    )
    return 0


def _cmd_figure3(args: argparse.Namespace) -> int:
    instance = build_fig3_instance()
    for line in fig3_component_summary(instance):
        print(line)
    from repro.core.components import partition_into_components
    from repro.core.spanning_tree import build_spanning_tree
    from repro.core.disjoint_paths import compute_disjoint_paths
    from repro.sim.observation import build_info_packets

    packets = build_info_packets(instance.snapshot, instance.positions)
    for component in partition_into_components(packets.values()):
        tree = build_spanning_tree(component)
        assert tree is not None
        paths = compute_disjoint_paths(tree, component)
        print(
            f"component root {tree.root}: tree edges {tree.edges()}, "
            f"disjoint paths {[list(p.nodes) for p in paths]}"
        )
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.analysis.campaign import run_campaign

    scale = "quick" if args.quick else args.scale
    store = _store_from_args(args)
    with runner_from_jobs(
        args.jobs, timeout=args.timeout, retries=args.retries, store=store
    ) as runner:
        report = run_campaign(scale, runner=runner, backend=args.backend)
    print(report.render())
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0 if report.all_passed else 1


def _cmd_export_dot(args: argparse.Namespace) -> int:
    from repro.analysis.dot import configuration_to_dot, figure3_dot

    if args.what == "figure3":
        text = figure3_dot()
    else:
        dyn = RandomChurnDynamicGraph(
            args.n, extra_edges=args.n // 2, seed=args.seed
        )
        robots = RobotSet.rooted(args.k, args.n)
        text = configuration_to_dot(dyn.snapshot(0), robots.positions)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_ring(args: argparse.Namespace) -> int:
    from repro.baselines.ring_walk import RingWalkDispersion
    from repro.graph.rings import RingDynamicGraph
    from repro.sim.observation import CommunicationModel

    walker = RingWalkDispersion()
    blocked = SimulationEngine(
        RingDynamicGraph(
            args.n, mode="blocking", seed=args.seed, algorithm=walker
        ),
        RobotSet.rooted(args.k, args.n),
        walker,
        communication=CommunicationModel.LOCAL,
        max_rounds=args.budget,
    ).run()
    paper_algorithm = DispersionDynamic()
    paper = SimulationEngine(
        RingDynamicGraph(
            args.n,
            mode="blocking",
            seed=args.seed,
            algorithm=paper_algorithm,
            communication=CommunicationModel.GLOBAL,
        ),
        RobotSet.rooted(args.k, args.n),
        paper_algorithm,
    ).run()
    print(
        format_table(
            ("algorithm", "dispersed", "rounds"),
            [
                ("ring walker (local)", blocked.dispersed, blocked.rounds),
                ("paper (global+1NK)", paper.dispersed, paper.rounds),
            ],
            title=f"blocking dynamic ring, k={args.k}, n={args.n}",
        )
    )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    store = RunStore(args.cache_dir)
    if args.cache_command == "stats":
        stats = store.stats()
        if args.json:
            print(json.dumps(stats.to_dict(), indent=2, sort_keys=True))
        else:
            print(stats.render())
    elif args.cache_command == "gc":
        outcome = store.gc(
            max_entries=args.max_entries,
            max_bytes=args.max_bytes,
            drop_stale=not args.keep_stale,
            purge_quarantine_days=args.purge_quarantine,
        )
        line = (
            f"gc: removed {outcome['removed']} entries, "
            f"kept {outcome['kept']}"
        )
        if outcome["stale_tmp_removed"]:
            line += (
                f", swept {outcome['stale_tmp_removed']} stale staging "
                f"files"
            )
        if outcome["tombstones_swept"]:
            line += f", finished {outcome['tombstones_swept']} tombstones"
        if outcome["unlink_errors"]:
            line += f", {outcome['unlink_errors']} unlink errors"
        if args.purge_quarantine is not None:
            line += (
                f", purged {outcome['quarantine_purged']} quarantined"
            )
        print(f"{line} ({store.root})")
    elif args.cache_command == "verify":
        report = store.verify(quarantine=args.fix)
        if args.json:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.render())
            if report.corrupt and args.fix:
                print(
                    "quarantined entries are recomputed on their next "
                    f"read ({store.quarantine_dir})"
                )
        return 0 if report.clean else 1
    else:  # clear
        removed = store.clear()
        print(f"clear: removed {removed} entries ({store.root})")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import tempfile

    from repro.chaos import FaultPlan, PlanError, replay_plan

    if args.crash_matrix:
        if args.plan is not None:
            print(
                "error: --plan and --crash-matrix are mutually exclusive",
                file=sys.stderr,
            )
            return 2
        return _run_crash_matrix_cli(args)
    if args.plan is None:
        print(
            "error: one of --plan or --crash-matrix is required",
            file=sys.stderr,
        )
        return 2
    try:
        with open(args.plan, "r", encoding="utf-8") as handle:
            plan = FaultPlan.from_json(handle.read())
    except OSError as error:
        print(f"error: cannot read fault plan: {error}", file=sys.stderr)
        return 2
    except PlanError as error:
        print(f"error: invalid fault plan: {error}", file=sys.stderr)
        return 2

    scale = "quick" if args.quick else args.scale
    # The replay corrupts store entries by design, so it always runs
    # against a throwaway root -- never the user's cache.
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as root:
        report = replay_plan(
            plan,
            root,
            scale=scale,
            jobs=args.jobs,
            timeout=args.timeout,
        )
    print(report.render())
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    golden_ok = True
    if args.golden_failures:
        from repro.chaos import (
            diff_failure_streams,
            load_failure_stream,
            render_failure_stream,
        )

        if args.update_golden:
            with open(args.golden_failures, "w", encoding="utf-8") as handle:
                handle.write(
                    render_failure_stream(report.plan_digest, report.failures)
                )
            print(f"wrote golden failure stream {args.golden_failures}")
        else:
            try:
                with open(args.golden_failures, encoding="utf-8") as handle:
                    golden_digest, golden = load_failure_stream(handle.read())
            except (OSError, ValueError) as error:
                print(
                    f"error: cannot read golden failure stream: {error}",
                    file=sys.stderr,
                )
                return 2
            diff = diff_failure_streams(report.failures, golden)
            if golden_digest != report.plan_digest:
                diff.insert(
                    0,
                    f"plan digest mismatch: replayed {report.plan_digest}, "
                    f"golden stream was recorded for {golden_digest}",
                )
            if diff:
                golden_ok = False
                print(
                    f"failure stream drift vs {args.golden_failures}:"
                )
                for line in diff:
                    print(f"  {line}")
            else:
                print(
                    f"failure stream matches {args.golden_failures} "
                    f"({len(report.failures)} records)"
                )
    return 0 if report.ok and golden_ok else 1


def _run_crash_matrix_cli(args: argparse.Namespace) -> int:
    """``repro chaos --crash-matrix``: the crash-point replay harness."""
    import tempfile

    from repro.chaos import run_crash_matrix

    durabilities = (
        ("fast", "strict")
        if args.durability == "both"
        else (args.durability,)
    )
    # Every cell builds and destroys its own store tree; the whole
    # matrix runs under a throwaway workdir, never the user's cache.
    with tempfile.TemporaryDirectory(prefix="repro-crash-matrix-") as root:
        report = run_crash_matrix(root, durabilities=durabilities)
    print(report.render())
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0 if report.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run_from_args

    return run_from_args(args)


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.analysis.paper_table import table1

    text, all_ok = table1()
    print(text)
    return 0 if all_ok else 1


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro-dispersion",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--list-backends", action=_ListComponentsAction, kind="backend",
        help="print the registered engine backends and exit",
    )
    parser.add_argument(
        "--list-schedulers", action=_ListComponentsAction, kind="scheduler",
        help="print the registered scheduler models and exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="one dispersion run")
    p_run.add_argument("--n", type=int, default=40)
    p_run.add_argument("--k", type=int, default=30)
    p_run.add_argument("--extra-edges", type=int, default=20)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--rooted", action="store_true")
    p_run.add_argument("--trace", action="store_true")
    p_run.add_argument(
        "--live", action="store_true",
        help="print per-round progress as the run executes",
    )
    p_run.add_argument(
        "--scheduler", type=_component_name("scheduler"),
        default="fsync", metavar="NAME",
        help="scheduler model driving the execution (default: fsync, "
        "the paper's fully synchronous model; see --list-schedulers "
        "and docs/scheduling.md)",
    )
    p_run.add_argument(
        "--backend", type=_component_name("backend"),
        default=None, metavar="NAME",
        help="engine backend (default: reference; see --list-backends). "
        "'vectorized' runs the numpy struct-of-arrays fast path, "
        "bit-identical to the reference",
    )
    p_run.add_argument(
        "--activation-p", type=float, default=0.6,
        help="per-robot activation probability for --scheduler ssync",
    )
    p_run.add_argument(
        "--max-delay", type=int, default=3,
        help="max inter-activation delay for --scheduler async",
    )
    p_run.set_defaults(func=_cmd_run)

    p_sweep = sub.add_parser("sweep", help="rounds vs k")
    p_sweep.add_argument("--k-values", type=int, nargs="*", default=None)
    p_sweep.add_argument("--seeds", type=int, default=3)
    p_sweep.add_argument("--extra-edges-per-node", type=float, default=0.5)
    p_sweep.add_argument("--rooted", action="store_true", default=True)
    _add_execution_args(p_sweep, "the sweep grid")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_faults = sub.add_parser("faults", help="rounds vs crash faults")
    p_faults.add_argument("--k", type=int, default=64)
    p_faults.add_argument("--f-values", type=int, nargs="*", default=None)
    p_faults.add_argument("--seeds", type=int, default=3)
    _add_execution_args(p_faults, "the fault grid")
    p_faults.set_defaults(func=_cmd_faults)

    p_lb = sub.add_parser("lower-bound", help="Theorem 3 adversary")
    p_lb.add_argument("--k-values", type=int, nargs="*", default=None)
    p_lb.add_argument("--slack-nodes", type=int, default=5)
    p_lb.add_argument("--seed", type=int, default=0)
    p_lb.set_defaults(func=_cmd_lower_bound)

    p_fig3 = sub.add_parser("figure3", help="Figure 3/4 worked example")
    p_fig3.set_defaults(func=_cmd_figure3)

    p_campaign = sub.add_parser(
        "campaign", help="run the full reproduction campaign"
    )
    p_campaign.add_argument(
        "--scale", choices=("quick", "full"), default="quick"
    )
    p_campaign.add_argument(
        "--quick", action="store_true",
        help="alias for --scale quick (the default)",
    )
    p_campaign.add_argument(
        "--backend", type=_component_name("backend"),
        default=None, metavar="NAME",
        help="engine backend for every campaign run (default: reference; "
        "see --list-backends)",
    )
    _add_execution_args(p_campaign, "the campaign's run grids")
    p_campaign.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the machine-readable report (timings, verdicts, "
        "cache hit counts)",
    )
    p_campaign.set_defaults(func=_cmd_campaign)

    p_cache = sub.add_parser(
        "cache", help="inspect or clean the content-addressed run store"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_cache_stats = cache_sub.add_parser(
        "stats", help="entry counts, bytes, and session hit/miss counters"
    )
    p_cache_stats.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_cache_gc = cache_sub.add_parser(
        "gc", help="drop stale-salt entries and enforce size bounds"
    )
    p_cache_gc.add_argument(
        "--max-entries", type=int, default=None,
        help="keep at most N entries (oldest evicted first)",
    )
    p_cache_gc.add_argument(
        "--max-bytes", type=int, default=None,
        help="keep at most N bytes of entries (oldest evicted first)",
    )
    p_cache_gc.add_argument(
        "--keep-stale", action="store_true",
        help="keep entries written under older code-version salts",
    )
    p_cache_gc.add_argument(
        "--purge-quarantine", type=float, default=None, metavar="DAYS",
        help="also delete quarantined entries at least DAYS days old "
        "(0 purges all)",
    )
    p_cache_verify = cache_sub.add_parser(
        "verify",
        help="checksum every entry; exit 1 if any corruption is found",
    )
    p_cache_verify.add_argument(
        "--fix", action="store_true",
        help="quarantine corrupt entries so the next read recomputes them",
    )
    p_cache_verify.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_cache_clear = cache_sub.add_parser(
        "clear", help="remove every entry from the store"
    )
    for cache_parser in (
        p_cache_stats, p_cache_gc, p_cache_verify, p_cache_clear
    ):
        cache_parser.add_argument(
            "--cache-dir", default=None, metavar="PATH",
            help="run-store location (default: $REPRO_CACHE_DIR or the "
            "user cache dir)",
        )
    p_cache.set_defaults(func=_cmd_cache)

    p_chaos = sub.add_parser(
        "chaos",
        help="replay a seeded fault plan and check bit-identical "
        "convergence, or run the crash-consistency matrix",
    )
    p_chaos.add_argument(
        "--plan", default=None, metavar="PATH",
        help="FaultPlan JSON file (see docs/robustness.md)",
    )
    p_chaos.add_argument(
        "--crash-matrix", action="store_true",
        help="instead of a plan replay: simulate a crash at every "
        "filesystem-op boundary of the store's write/recompute/gc "
        "workloads and assert the recovery invariants",
    )
    p_chaos.add_argument(
        "--durability", choices=("fast", "strict", "both"),
        default="both",
        help="store durability mode(s) the crash matrix sweeps "
        "(default both)",
    )
    p_chaos.add_argument(
        "--scale", choices=("quick", "full"), default="quick"
    )
    p_chaos.add_argument(
        "--quick", action="store_true",
        help="alias for --scale quick (the default)",
    )
    p_chaos.add_argument(
        "--jobs", type=int, default=2,
        help="worker processes for the chaos pool (default 2)",
    )
    p_chaos.add_argument(
        "--timeout", type=float, default=5.0, metavar="S",
        help="per-unit wall-clock limit for the chaos pool (hang faults "
        "must exceed this to fire as timeouts)",
    )
    p_chaos.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the machine-readable chaos report",
    )
    p_chaos.add_argument(
        "--golden-failures", default=None, metavar="PATH",
        help="compare the replay's canonical failure stream against "
        "this golden snapshot; exit 1 on drift",
    )
    p_chaos.add_argument(
        "--update-golden", action="store_true",
        help="with --golden-failures: (re)write the snapshot instead "
        "of comparing",
    )
    p_chaos.set_defaults(func=_cmd_chaos)

    p_dot = sub.add_parser("export-dot", help="export Graphviz DOT pictures")
    p_dot.add_argument(
        "what", choices=("figure3", "random"), help="which picture"
    )
    p_dot.add_argument("--n", type=int, default=16)
    p_dot.add_argument("--k", type=int, default=10)
    p_dot.add_argument("--seed", type=int, default=0)
    p_dot.add_argument("--output", default=None)
    p_dot.set_defaults(func=_cmd_export_dot)

    p_lint = sub.add_parser(
        "lint",
        help="AST-based determinism / cache-safety analyzer (reprolint)",
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(p_lint)
    p_lint.set_defaults(func=_cmd_lint)

    p_table1 = sub.add_parser(
        "table1", help="the paper's Table I with measured verdicts"
    )
    p_table1.set_defaults(func=_cmd_table1)

    p_ring = sub.add_parser("ring", help="dynamic-ring blocking demo")
    p_ring.add_argument("--n", type=int, default=14)
    p_ring.add_argument("--k", type=int, default=9)
    p_ring.add_argument("--seed", type=int, default=0)
    p_ring.add_argument("--budget", type=int, default=300)
    p_ring.set_defaults(func=_cmd_ring)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout was closed early (e.g. piped into `head`); exit quietly.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
