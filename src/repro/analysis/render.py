"""ASCII rendering of configurations and run traces (for the examples).

Nothing here is used by the algorithms; it turns ground-truth snapshots,
placements and :class:`~repro.sim.metrics.RunResult` traces into terminal
output a human can follow.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.graph.snapshot import GraphSnapshot
from repro.sim.metrics import RunResult


def render_configuration(
    snapshot: GraphSnapshot,
    positions: Mapping[int, int],
    *,
    node_labels: Optional[Mapping[int, str]] = None,
) -> str:
    """Adjacency-list view of one round: node, robots on it, neighbors."""
    labels: Mapping[int, str] = node_labels or {}

    def label_of(node: int) -> str:
        return labels.get(node, f"node{node}")

    robots_at: Dict[int, List[int]] = {}
    for robot_id, node in positions.items():
        robots_at.setdefault(node, []).append(robot_id)
    lines = []
    for node in snapshot.nodes():
        robots = sorted(robots_at.get(node, []))
        robot_text = (
            "robots " + ",".join(str(r) for r in robots) if robots else "empty"
        )
        neighbor_text = ", ".join(
            f"{port}->{label_of(snapshot.neighbor_via(node, port))}"
            for port in snapshot.ports(node)
        )
        lines.append(
            f"  {label_of(node):<10} [{robot_text:<16}] ports: {neighbor_text}"
        )
    return "\n".join(lines)


def render_progress(result: RunResult) -> str:
    """One line per round: occupied-set growth and movement volume."""
    lines = [
        f"run: {result.summary()}",
        f"occupied trajectory: {result.occupied_trajectory()}",
    ]
    for record in result.records:
        gained = sorted(record.newly_occupied)
        crashed = sorted(
            record.crashed_before_communicate + record.crashed_after_compute
        )
        parts = [
            f"round {record.round_index:>3}:",
            f"occupied {len(record.occupied_before):>3} ->"
            f" {len(record.occupied_after):>3}",
            f"moves {record.num_moves:>3}",
            f"components {record.num_components}",
        ]
        if gained:
            parts.append(f"newly occupied {gained}")
        if crashed:
            parts.append(f"crashed {crashed}")
        lines.append("  " + "  ".join(parts))
    return "\n".join(lines)


def occupancy_bar(result: RunResult, width: int = 50) -> str:
    """A coarse 'progress bar over rounds' visualization."""
    trajectory = result.occupied_trajectory()
    k = result.k
    lines = []
    for round_index, occupied in enumerate(trajectory):
        filled = int(width * occupied / max(1, k))
        lines.append(
            f"  r{round_index:>3} |{'#' * filled}{'.' * (width - filled)}| "
            f"{occupied}/{k}"
        )
    return "\n".join(lines)
