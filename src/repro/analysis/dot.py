"""Graphviz DOT export of snapshots, configurations, and the Figure 3/4
structures.

Pure text generation (no graphviz dependency): paste the output into any
DOT renderer to obtain pictures in the style of the paper's figures --
occupied nodes labelled with their robots, component spanning-tree edges
highlighted, disjoint root paths colored.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.components import ComponentGraph
from repro.core.disjoint_paths import RootPath
from repro.core.spanning_tree import SpanningTree
from repro.graph.snapshot import GraphSnapshot

_PALETTE = ("forestgreen", "firebrick", "royalblue", "darkorange", "purple")


def _robots_at(positions: Mapping[int, int]) -> Dict[int, List[int]]:
    at: Dict[int, List[int]] = {}
    for robot_id, node in positions.items():
        at.setdefault(node, []).append(robot_id)
    for ids in at.values():
        ids.sort()
    return at


def configuration_to_dot(
    snapshot: GraphSnapshot,
    positions: Mapping[int, int],
    *,
    name: str = "configuration",
    show_ports: bool = True,
) -> str:
    """One round's graph with robot occupancy, as an undirected DOT graph.

    Occupied nodes are drawn filled, multiplicity nodes double-circled;
    edge labels carry the two port numbers (``u_port/v_port``).
    """
    robots_at = _robots_at(positions)
    lines = [f"graph {name} {{", "  node [fontsize=10];"]
    for node in snapshot.nodes():
        ids = robots_at.get(node)
        if ids:
            label = f"v{node}\\n{{{','.join(str(r) for r in ids)}}}"
            shape = "doublecircle" if len(ids) >= 2 else "circle"
            lines.append(
                f'  n{node} [label="{label}", shape={shape}, '
                'style=filled, fillcolor=lightgray];'
            )
        else:
            lines.append(f'  n{node} [label="v{node}", shape=circle];')
    for edge in snapshot.edges():
        attrs = ""
        if show_ports:
            attrs = f' [label="{edge.port_u}/{edge.port_v}", fontsize=8]'
        lines.append(f"  n{edge.u} -- n{edge.v}{attrs};")
    lines.append("}")
    return "\n".join(lines)


def components_to_dot(
    snapshot: GraphSnapshot,
    positions: Mapping[int, int],
    components: Sequence[ComponentGraph],
    *,
    trees: Optional[Mapping[int, SpanningTree]] = None,
    paths: Optional[Mapping[int, Sequence[RootPath]]] = None,
    name: str = "components",
) -> str:
    """The Figure 3/4 picture: components colored, spanning-tree edges
    bold, disjoint root paths highlighted.

    ``trees`` and ``paths`` are keyed by the component's root
    representative.  Node identity is mapped back to ground-truth nodes
    via the smallest-robot-ID-per-node convention.
    """
    robots_at = _robots_at(positions)
    node_of_rep = {ids[0]: node for node, ids in robots_at.items()}
    color_of_node: Dict[int, str] = {}
    tree_edges: Set[Tuple[int, int]] = set()
    path_edges: Set[Tuple[int, int]] = set()

    for index, component in enumerate(components):
        color = _PALETTE[index % len(_PALETTE)]
        for rep in component.representatives:
            color_of_node[node_of_rep[rep]] = color
        tree = (trees or {}).get(
            component.multiplicity_representatives()[0]
            if component.multiplicity_representatives()
            else -1
        )
        if tree is not None:
            for parent, child in tree.edges():
                a, b = node_of_rep[parent], node_of_rep[child]
                tree_edges.add((min(a, b), max(a, b)))
            for path in (paths or {}).get(tree.root, []):
                for rep_a, rep_b in zip(path.nodes, path.nodes[1:]):
                    a, b = node_of_rep[rep_a], node_of_rep[rep_b]
                    path_edges.add((min(a, b), max(a, b)))

    lines = [f"graph {name} {{", "  node [fontsize=10];"]
    for node in snapshot.nodes():
        ids = robots_at.get(node)
        if ids:
            color = color_of_node.get(node, "lightgray")
            shape = "doublecircle" if len(ids) >= 2 else "circle"
            label = f"v{node}\\n{{{','.join(str(r) for r in ids)}}}"
            lines.append(
                f'  n{node} [label="{label}", shape={shape}, '
                f"style=filled, fillcolor={color}, fontcolor=white];"
            )
        else:
            lines.append(f'  n{node} [label="v{node}", shape=circle];')
    for edge in snapshot.edges():
        key = (edge.u, edge.v)
        if key in path_edges:
            attrs = " [penwidth=3, color=black]"
        elif key in tree_edges:
            attrs = " [penwidth=2, style=bold]"
        else:
            attrs = " [style=dashed, color=gray]"
        lines.append(f"  n{edge.u} -- n{edge.v}{attrs};")
    lines.append("}")
    return "\n".join(lines)


def figure3_dot() -> str:
    """The reconstructed Figure 3/4 instance, fully annotated."""
    from repro.analysis.figures import build_fig3_instance
    from repro.core.components import partition_into_components
    from repro.core.disjoint_paths import compute_disjoint_paths
    from repro.core.sliding import truncate_paths
    from repro.core.spanning_tree import build_spanning_tree
    from repro.sim.observation import build_info_packets

    instance = build_fig3_instance()
    packets = list(
        build_info_packets(instance.snapshot, instance.positions).values()
    )
    components = partition_into_components(packets)
    trees: Dict[int, SpanningTree] = {}
    paths: Dict[int, List[RootPath]] = {}
    for component in components:
        tree = build_spanning_tree(component)
        if tree is None:
            continue
        trees[tree.root] = tree
        selected = compute_disjoint_paths(tree, component)
        paths[tree.root] = truncate_paths(
            selected, component.node(tree.root).robot_count
        )
    return components_to_dot(
        instance.snapshot,
        instance.positions,
        components,
        trees=trees,
        paths=paths,
        name="figure3",
    )
