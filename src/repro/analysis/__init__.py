"""Experiment harnesses, bound checks, ablations, and report tables.

This package is the glue between the library and the ``benchmarks/`` tree:
it runs parameter sweeps (rounds vs. k, faults, dynamism levels), fits and
checks the paper's bounds (O(k) rounds, Theta(log k) bits), reconstructs
the Figure 3/4 worked example, and renders aligned text tables so every
benchmark prints the same kind of rows the paper reports.
"""

from repro.analysis.experiments import (
    DispersionOutcome,
    run_dispersion,
    sweep_rounds_vs_k,
    sweep_faults,
)
from repro.analysis.bounds import (
    linear_fit,
    check_rounds_upper_bound,
    check_memory_logarithmic,
    check_monotone_progress,
)
from repro.analysis.figures import build_fig3_instance, Fig3Instance
from repro.analysis.tables import format_table
from repro.analysis.ablation import (
    BfsTreeVariant,
    NoDisjointnessVariant,
    NoTruncationVariant,
    UnorderedLeafVariant,
)
from repro.analysis.statistics import (
    LinearFit,
    SampleSummary,
    fit_line,
    fit_logarithm,
    summarize_samples,
)
from repro.analysis.dot import configuration_to_dot, components_to_dot, figure3_dot

__all__ = [
    "DispersionOutcome",
    "run_dispersion",
    "sweep_rounds_vs_k",
    "sweep_faults",
    "linear_fit",
    "check_rounds_upper_bound",
    "check_memory_logarithmic",
    "check_monotone_progress",
    "build_fig3_instance",
    "Fig3Instance",
    "format_table",
    "BfsTreeVariant",
    "NoDisjointnessVariant",
    "NoTruncationVariant",
    "UnorderedLeafVariant",
    "LinearFit",
    "SampleSummary",
    "fit_line",
    "fit_logarithm",
    "summarize_samples",
    "configuration_to_dot",
    "components_to_dot",
    "figure3_dot",
]
