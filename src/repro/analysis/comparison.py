"""Head-to-head algorithm comparison on identical instances.

The contrast experiments (E1, E6) compare algorithms by hand; this module
generalizes the pattern into a harness: run any set of named algorithms on
the *same* sequence of instances (same graphs, same placements, each
algorithm in its own declared model), and produce a comparison table with
completion rates, round statistics, move volume, and pairwise speedups.

Fairness rules baked in:

* every algorithm sees the same dynamic graph realization (oblivious
  processes are rebuilt from the same seed; adaptive adversaries are
  *per-algorithm by definition* -- the harness rebuilds them around each
  contender, which is the honest comparison for worst-case analysis);
* each algorithm runs in the communication/sensing model it declares, so
  a local-model baseline is not silently given global information;
* round budgets are shared, and non-completion is reported rather than
  dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.statistics import summarize_samples
from repro.analysis.tables import format_table
from repro.graph.dynamic import DynamicGraph
from repro.robots.robot import RobotSet
from repro.sim.algorithm import RobotAlgorithm
from repro.sim.engine import SimulationEngine


@dataclass(frozen=True)
class Contender:
    """One algorithm entered into a comparison."""

    name: str
    algorithm_factory: Callable[[], RobotAlgorithm]

    def build(self) -> RobotAlgorithm:
        """A fresh algorithm instance (state must not leak across runs)."""
        return self.algorithm_factory()


@dataclass
class ComparisonResult:
    """Aggregated outcomes of one comparison."""

    instances: int
    budget: int
    completed: Dict[str, int]
    rounds: Dict[str, List[float]]
    moves: Dict[str, List[float]]

    def completion_rate(self, name: str) -> float:
        """Fraction of instances the contender dispersed within budget."""
        return self.completed[name] / self.instances

    def mean_rounds(self, name: str) -> Optional[float]:
        """Mean rounds over *completed* instances (None if none)."""
        values = self.rounds[name]
        return summarize_samples(values).mean if values else None

    def speedup(self, baseline: str, improved: str) -> Optional[float]:
        """mean_rounds(baseline) / mean_rounds(improved), if both exist."""
        base = self.mean_rounds(baseline)
        new = self.mean_rounds(improved)
        if base is None or new is None or new == 0:
            return None
        return base / new

    def table(self, *, title: str = "") -> str:
        """The comparison as an aligned text table."""
        rows = []
        for name in sorted(self.completed):
            mean = self.mean_rounds(name)
            move_values = self.moves[name]
            rows.append(
                (
                    name,
                    f"{self.completed[name]}/{self.instances}",
                    mean if mean is not None else float("nan"),
                    (
                        summarize_samples(move_values).mean
                        if move_values
                        else float("nan")
                    ),
                )
            )
        return format_table(
            ("algorithm", "completed", "mean rounds", "mean moves"),
            rows,
            title=title or f"comparison over {self.instances} instances "
            f"(budget {self.budget} rounds)",
        )


def compare(
    contenders: Sequence[Contender],
    dynamics_factory: Callable[[int, RobotAlgorithm], DynamicGraph],
    robots_factory: Callable[[int], RobotSet],
    *,
    seeds: Sequence[int] = (0, 1, 2),
    budget: int = 500,
) -> ComparisonResult:
    """Run every contender on every seeded instance.

    ``dynamics_factory(seed, algorithm)`` builds the dynamic graph; the
    algorithm argument exists so adaptive adversaries can probe the very
    contender they are attacking (pass-through for oblivious processes).
    ``robots_factory(seed)`` builds the placement.  Each contender runs in
    the model it declares via its class attributes.
    """
    if not contenders:
        raise ValueError("need at least one contender")
    names = [c.name for c in contenders]
    if len(set(names)) != len(names):
        raise ValueError("contender names must be unique")

    result = ComparisonResult(
        instances=len(seeds),
        budget=budget,
        completed={c.name: 0 for c in contenders},
        rounds={c.name: [] for c in contenders},
        moves={c.name: [] for c in contenders},
    )
    for seed in seeds:
        robots = robots_factory(seed)
        for contender in contenders:
            algorithm = contender.build()
            engine = SimulationEngine(
                dynamics_factory(seed, algorithm),
                robots,
                algorithm,
                communication=algorithm.requires_communication,
                neighborhood_knowledge=(
                    algorithm.requires_neighborhood_knowledge
                ),
                max_rounds=budget,
                collect_records=False,
            )
            run = engine.run()
            if run.dispersed:
                result.completed[contender.name] += 1
                result.rounds[contender.name].append(float(run.rounds))
            result.moves[contender.name].append(float(run.total_moves))
    return result
