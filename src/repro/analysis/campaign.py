"""The one-shot reproduction campaign.

``run_campaign()`` executes a compact version of every experiment in
EXPERIMENTS.md -- Table I's four rows, the Figure 2 tightness check, the
Figure 3/4 worked example, and the baseline/ring contrasts -- and returns a
structured report renderable as markdown or plain text.  It is what
``repro-dispersion campaign`` prints, and doubles as the library's
self-check: every section carries a pass/fail verdict against the paper's
expected shape.

Scales: ``"quick"`` (seconds; k up to 64) and ``"full"`` (the benchmark
suite's sizes, k up to 256).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List

from repro.adversary.star_lower_bound import StarStarAdversary
from repro.analysis.experiments import (
    churn_dynamics,
    run_dispersion,
    summarize,
    sweep_faults,
    sweep_rounds_vs_k,
)
from repro.analysis.statistics import fit_line
from repro.analysis.tables import format_table
from repro.core.dispersion import DispersionDynamic
from repro.robots.faults import CrashPhase
from repro.robots.robot import RobotSet
from repro.sim.engine import SimulationEngine
from repro.sim.observation import CommunicationModel


@dataclass
class CampaignSection:
    """One experiment's rendered table plus its verdict."""

    title: str
    body: str
    passed: bool

    def render(self) -> str:
        """The section as '[PASS/FAIL] title' plus its table."""
        verdict = "PASS" if self.passed else "FAIL"
        return f"[{verdict}] {self.title}\n{self.body}"


@dataclass
class CampaignReport:
    """All sections of one campaign run."""

    scale: str
    sections: List[CampaignSection] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        """Whether every experiment matched the paper's expected shape."""
        return all(section.passed for section in self.sections)

    def render(self) -> str:
        """The whole campaign report as plain text."""
        header = (
            f"reproduction campaign ({self.scale} scale): "
            f"{sum(s.passed for s in self.sections)}/{len(self.sections)} "
            "experiments match the paper's shape"
        )
        blocks = [header, "=" * len(header)]
        blocks += [section.render() for section in self.sections]
        return "\n\n".join(blocks)


def _k_values(scale: str) -> List[int]:
    return [8, 16, 32, 64] if scale == "quick" else [8, 16, 32, 64, 128, 256]


def _section_algorithm(scale: str) -> CampaignSection:
    k_values = _k_values(scale)
    data = sweep_rounds_vs_k(k_values, seeds=(0, 1))
    rows = []
    means = []
    ok = True
    for k in k_values:
        stats = summarize(data[k])
        means.append(stats["mean_rounds"])
        within = stats["max_rounds"] <= k - 1
        ok &= within and stats["all_dispersed"] == 1.0
        rows.append((k, stats["mean_rounds"], k - 1, within))
    fit = fit_line([float(k) for k in k_values], means)
    ok &= 0.0 < fit.slope <= 1.0
    body = format_table(("k", "mean rounds", "bound k-1", "within"), rows)
    body += f"\nlinear fit slope {fit.slope:.3f} (Theta(k) shape)"
    return CampaignSection(
        "Table I row 3 -- O(k) rounds on random churn", body, ok
    )


def _section_lower_bound(scale: str) -> CampaignSection:
    rows = []
    ok = True
    for k in _k_values(scale):
        n = k + 6
        result = run_dispersion(
            StarStarAdversary(n, [0], seed=k),
            RobotSet.rooted(k, n),
            collect_records=False,
            max_rounds=2 * k,
        )
        tight = result.dispersed and result.rounds == k - 1
        ok &= tight
        rows.append((k, result.rounds, k - 1, tight))
    return CampaignSection(
        "Figure 2 / Theorem 3 -- the Omega(k) bound is met exactly",
        format_table(("k", "rounds", "k-1", "tight"), rows),
        ok,
    )


def _section_memory(scale: str) -> CampaignSection:
    rows = []
    ok = True
    for k in _k_values(scale):
        n = k + 8
        result = run_dispersion(
            churn_dynamics()(n, 1),
            RobotSet.rooted(k, n),
            collect_records=False,
        )
        expected = math.ceil(math.log2(k + 1))
        ok &= result.max_persistent_bits == expected
        rows.append((k, result.max_persistent_bits, expected))
    return CampaignSection(
        "Lemma 8 -- Theta(log k) persistent bits",
        format_table(("k", "measured bits", "ceil(log2(k+1))"), rows),
        ok,
    )


def _section_faults(scale: str) -> CampaignSection:
    k = 32 if scale == "quick" else 64
    f_values = [0, k // 4, k // 2, (3 * k) // 4]
    data = sweep_faults(
        k,
        f_values,
        seeds=(0, 1),
        crash_window=2,
        phases=[CrashPhase.BEFORE_COMMUNICATE],
    )
    rows = []
    means = []
    ok = True
    for f in f_values:
        stats = summarize(data[f])
        means.append(stats["mean_rounds"])
        ok &= stats["all_dispersed"] == 1.0
        rows.append((f, k - f, stats["mean_rounds"]))
    ok &= means[-1] < means[0]
    return CampaignSection(
        f"Table I row 4 -- O(k-f) rounds under crashes (k={k})",
        format_table(("f", "k-f", "mean rounds"), rows),
        ok,
    )


def _section_impossibility_local(scale: str) -> CampaignSection:
    from repro.adversary.local_impossibility import (
        LocalStallAdversary,
        build_fig1_instance,
        interior_views_are_symmetric,
    )
    from repro.baselines.local_candidates import LOCAL_CANDIDATES

    rounds = 100 if scale == "quick" else 400
    instance = build_fig1_instance(6, 9)
    rows = []
    ok = interior_views_are_symmetric(instance)
    for candidate_cls in LOCAL_CANDIDATES:
        algorithm = candidate_cls()
        adversary = LocalStallAdversary(9, algorithm, seed=1)
        result = SimulationEngine(
            adversary,
            instance.positions,
            algorithm,
            communication=CommunicationModel.LOCAL,
            max_rounds=rounds,
        ).run()
        ok &= not result.dispersed
        rows.append((candidate_cls.name, rounds, result.dispersed))
    return CampaignSection(
        "Table I row 1 / Figure 1 -- local-model candidates stall",
        format_table(("candidate", "rounds given", "dispersed"), rows),
        ok,
    )


def _section_impossibility_global(scale: str) -> CampaignSection:
    from repro.adversary.global_impossibility import CliqueRewiringAdversary
    from repro.baselines.global_candidates import GLOBAL_NO1NK_CANDIDATES

    rounds = 100 if scale == "quick" else 400
    k, n = 8, 14
    positions = {i: i - 1 for i in range(1, k)}
    positions[k] = 0
    rows = []
    ok = True
    for candidate_cls in GLOBAL_NO1NK_CANDIDATES:
        algorithm = candidate_cls()
        adversary = CliqueRewiringAdversary(n, algorithm, seed=1)
        result = SimulationEngine(
            adversary,
            dict(positions),
            algorithm,
            neighborhood_knowledge=False,
            max_rounds=rounds,
        ).run()
        visited = set()
        for record in result.records:
            visited |= record.occupied_after
        new_nodes = len(visited) - (k - 1) if result.records else 0
        ok &= (not result.dispersed) and new_nodes == 0
        rows.append((candidate_cls.name, rounds, new_nodes))
    return CampaignSection(
        "Table I row 2 -- no-1-NK candidates make zero progress",
        format_table(("candidate", "rounds given", "new nodes visited"), rows),
        ok,
    )


def _section_figure34(scale: str) -> CampaignSection:
    from repro.analysis.figures import build_fig3_instance
    from repro.core.components import partition_into_components
    from repro.core.spanning_tree import build_spanning_tree
    from repro.graph.dynamic import StaticDynamicGraph
    from repro.sim.observation import build_info_packets

    instance = build_fig3_instance()
    packets = list(
        build_info_packets(instance.snapshot, instance.positions).values()
    )
    components = partition_into_components(packets)
    roots = sorted(
        build_spanning_tree(c).root for c in components
    )
    result = SimulationEngine(
        StaticDynamicGraph(instance.snapshot),
        instance.positions,
        DispersionDynamic(),
    ).run()
    ok = (
        {tuple(c.representatives) for c in components}
        == {tuple(c) for c in instance.expected_components}
        and tuple(roots) == tuple(sorted(instance.expected_roots))
        and result.dispersed
    )
    rows = [
        (str([list(c.representatives) for c in components]), str(roots),
         result.rounds, result.dispersed)
    ]
    return CampaignSection(
        "Figures 3 & 4 -- the worked example (15 nodes / 17 edges / "
        "14 robots)",
        format_table(("components", "roots", "rounds", "dispersed"), rows),
        ok,
    )


def _section_ring(scale: str) -> CampaignSection:
    from repro.baselines.ring_walk import RingWalkDispersion
    from repro.graph.rings import RingDynamicGraph

    n, k = 12, 8
    walker = RingWalkDispersion()
    blocked = SimulationEngine(
        RingDynamicGraph(n, mode="blocking", seed=1, algorithm=walker),
        RobotSet.rooted(k, n),
        walker,
        communication=CommunicationModel.LOCAL,
        max_rounds=150 if scale == "quick" else 400,
    ).run()
    paper_algorithm = DispersionDynamic()
    paper = SimulationEngine(
        RingDynamicGraph(
            n,
            mode="blocking",
            seed=1,
            algorithm=paper_algorithm,
            communication=CommunicationModel.GLOBAL,
        ),
        RobotSet.rooted(k, n),
        paper_algorithm,
    ).run()
    ok = (not blocked.dispersed) and paper.dispersed and paper.rounds <= k - 1
    rows = [
        ("ring walker (local)", blocked.dispersed, blocked.rounds),
        ("paper algorithm (global+1NK)", paper.dispersed, paper.rounds),
    ]
    return CampaignSection(
        "E6 -- dynamic rings: blocking adversary vs both algorithms",
        format_table(("algorithm", "dispersed", "rounds"), rows),
        ok,
    )


def _section_byzantine(scale: str) -> CampaignSection:
    from repro.graph.dynamic import RandomChurnDynamicGraph
    from repro.robots.byzantine import HideMultiplicity

    n, k = 20, 12
    budget = 120 if scale == "quick" else 300
    honest = SimulationEngine(
        RandomChurnDynamicGraph(n, extra_edges=n // 2, seed=2),
        RobotSet.rooted(k, n),
        DispersionDynamic(),
        max_rounds=budget,
    ).run()
    attacked = SimulationEngine(
        RandomChurnDynamicGraph(n, extra_edges=n // 2, seed=2),
        RobotSet.rooted(k, n),
        DispersionDynamic(),
        byzantine_policies={1: HideMultiplicity()},
        max_rounds=budget,
    ).run()
    ok = honest.dispersed and not attacked.dispersed and (
        attacked.total_moves == 0
    )
    rows = [
        ("honest", honest.dispersed, honest.rounds, honest.total_moves),
        ("1 liar (hide multiplicity)", attacked.dispersed,
         attacked.rounds, attacked.total_moves),
    ]
    return CampaignSection(
        "E7 -- byzantine: one packet-forging robot livelocks Algorithm 4",
        format_table(("fleet", "dispersed", "rounds", "moves"), rows),
        ok,
    )


_SECTIONS = (
    _section_algorithm,
    _section_lower_bound,
    _section_memory,
    _section_faults,
    _section_impossibility_local,
    _section_impossibility_global,
    _section_figure34,
    _section_ring,
    _section_byzantine,
)


def run_campaign(scale: str = "quick") -> CampaignReport:
    """Execute every experiment at the given scale; see module docstring."""
    if scale not in ("quick", "full"):
        raise ValueError(f"scale must be 'quick' or 'full', got {scale!r}")
    report = CampaignReport(scale=scale)
    for build_section in _SECTIONS:
        report.sections.append(build_section(scale))
    return report
