"""The one-shot reproduction campaign.

``run_campaign()`` executes a compact version of every experiment in
EXPERIMENTS.md -- Table I's four rows, the Figure 2 tightness check, the
Figure 3/4 worked example, and the baseline/ring contrasts -- and returns a
structured report renderable as markdown or plain text.  It is what
``repro-dispersion campaign`` prints, and doubles as the library's
self-check: every section carries a pass/fail verdict against the paper's
expected shape.

Every section is a *build-specs / interpret* pair: it declares its runs as
:class:`~repro.sim.spec.RunSpec` s, executes them through the campaign's
:class:`~repro.sim.runner.Runner` (pass ``runner=ProcessPoolRunner(...)``
or ``repro-dispersion campaign --jobs N`` to fan sections across cores),
and turns the results into a verdict.  The report records per-section
wall-clock and run counts; ``CampaignReport.to_dict()`` is the
machine-readable form ``repro-dispersion campaign --json`` writes.

Campaigns are *resumable*: pass ``store=RunStore(...)`` (or let the CLI
default to the user cache dir) and every run is keyed by its spec's
content hash -- an interrupted or repeated campaign re-executes only the
specs that are not already stored, and the report's ``cache`` block
says how many runs were served from disk versus recomputed (plus how
many stored entries failed integrity validation and were quarantined).

Campaigns *degrade gracefully*: when the runner stack tolerates faults
(worker crashes, timeouts, corrupt store entries -- see
:mod:`repro.chaos`), the structured
:class:`~repro.chaos.failures.FailureRecord` s are attached to the
report's ``failures`` list instead of aborting the campaign; the
section verdicts then tell whether the recovered results still match
the paper.

Scales: ``"quick"`` (seconds; k up to 64) and ``"full"`` (the benchmark
suite's sizes, k up to 256).
"""

from __future__ import annotations

import math
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.experiments import summarize, sweep_faults, sweep_rounds_vs_k
from repro.analysis.statistics import fit_line
from repro.analysis.tables import format_table
from repro.robots.faults import CrashPhase
from repro.sim.metrics import RunResult
from repro.sim.runner import Runner, SerialRunner
from repro.sim.spec import ComponentSpec, PlacementSpec, RunSpec
from repro.sim.store import CachingRunner, RunStore


@dataclass
class CampaignSection:
    """One experiment's rendered table plus its verdict."""

    title: str
    body: str
    passed: bool
    seconds: float = 0.0
    runs: int = 0
    data: Optional[Dict[str, Any]] = None
    """Optional structured payload for the section (beyond the rendered
    table); included in ``to_dict`` when set, e.g. the per-scheduler
    degradation numbers of the scheduler-models section."""

    def render(self) -> str:
        """The section as '[PASS/FAIL] title' plus its table."""
        verdict = "PASS" if self.passed else "FAIL"
        return f"[{verdict}] {self.title}\n{self.body}"

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable form: title, verdict, timing, run count."""
        entry: Dict[str, Any] = {
            "title": self.title,
            "passed": self.passed,
            "seconds": round(self.seconds, 6),
            "runs": self.runs,
        }
        if self.data is not None:
            entry["data"] = self.data
        return entry


@dataclass
class CampaignReport:
    """All sections of one campaign run."""

    scale: str
    sections: List[CampaignSection] = field(default_factory=list)
    backend: str = "serial"
    total_seconds: float = 0.0
    cache: Optional[Dict[str, int]] = None
    failures: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        """Whether every experiment matched the paper's expected shape."""
        return all(section.passed for section in self.sections)

    def render(self) -> str:
        """The whole campaign report as plain text."""
        header = (
            f"reproduction campaign ({self.scale} scale): "
            f"{sum(s.passed for s in self.sections)}/{len(self.sections)} "
            "experiments match the paper's shape"
        )
        blocks = [header, "=" * len(header)]
        blocks += [section.render() for section in self.sections]
        if self.cache is not None:
            blocks.append(
                f"cache: {self.cache['hits']} hits, "
                f"{self.cache['recomputed']} recomputed, "
                f"{self.cache.get('corrupt_entries', 0)} corrupt entries "
                "quarantined"
            )
        if self.failures:
            blocks.append(
                f"faults tolerated: {len(self.failures)} "
                "(see --json for the structured records)"
            )
        return "\n\n".join(blocks)

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable form (what ``campaign --json`` writes)."""
        return {
            "kind": "campaign_report",
            "scale": self.scale,
            "backend": self.backend,
            "all_passed": self.all_passed,
            "total_seconds": round(self.total_seconds, 6),
            "total_runs": sum(s.runs for s in self.sections),
            "cache": self.cache,
            "failures": list(self.failures),
            "sections": [section.to_dict() for section in self.sections],
        }


class _CountingRunner(Runner):
    """Wraps the campaign's runner to count runs per section."""

    name = "counting"

    def __init__(self, inner: Runner) -> None:
        self.inner = inner
        self.count = 0

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Delegate to the wrapped backend, tallying spec counts."""
        self.count += len(specs)
        return self.inner.run(specs)


class _BackendPinningRunner(Runner):
    """Pins an engine backend on every spec before delegation.

    Wrapping *outside* any :class:`CachingRunner` means the pinned spec
    is what gets content-hashed, so each engine backend caches under
    its own digest and never serves the other's entries.
    """

    name = "backend-pinning"

    def __init__(self, inner: Runner, backend: str) -> None:
        self.inner = inner
        self.engine_backend = backend

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Delegate with ``backend=`` pinned on every spec."""
        pinned = [
            spec.with_(backend=ComponentSpec(self.engine_backend))
            for spec in specs
        ]
        return self.inner.run(pinned)


def _runner_chain(runner: Runner) -> List[Runner]:
    """The runner plus every backend it wraps, outermost first."""
    chain: List[Runner] = []
    node: Optional[Runner] = runner
    while node is not None and not any(node is seen for seen in chain):
        chain.append(node)
        node = getattr(node, "inner", None)
    return chain


def _find_caching_runner(runner: Runner) -> Optional[CachingRunner]:
    """The first :class:`CachingRunner` in the wrapper chain, if any."""
    for node in _runner_chain(runner):
        if isinstance(node, CachingRunner):
            return node
    return None


def _collect_failure_records(runner: Runner) -> List[Any]:
    """Every structured failure record held anywhere in the chain.

    Duck-typed: any chain node -- or its ``store`` -- exposing a
    ``failure_records`` sequence (the :mod:`repro.chaos` runners and
    stores do) contributes, so the campaign needs no import of the
    chaos package to surface tolerated faults.
    """
    records: List[Any] = []
    for node in _runner_chain(runner):
        for source in (node, getattr(node, "store", None)):
            found = getattr(source, "failure_records", None)
            if found:
                records.extend(found)
    return records


_CHURN = lambda n, seed: ComponentSpec(  # noqa: E731
    "random_churn", {"n": n, "extra_edges": n // 2, "seed": seed}
)


def _k_values(scale: str) -> List[int]:
    return [8, 16, 32, 64] if scale == "quick" else [8, 16, 32, 64, 128, 256]


def _section_algorithm(scale: str, runner: Runner) -> CampaignSection:
    k_values = _k_values(scale)
    data = sweep_rounds_vs_k(k_values, seeds=(0, 1), runner=runner)
    rows = []
    means = []
    ok = True
    for k in k_values:
        stats = summarize(data[k])
        means.append(stats["mean_rounds"])
        within = stats["max_rounds"] <= k - 1
        ok &= within and stats["all_dispersed"] == 1.0
        rows.append((k, stats["mean_rounds"], k - 1, within))
    fit = fit_line([float(k) for k in k_values], means)
    ok &= 0.0 < fit.slope <= 1.0
    body = format_table(("k", "mean rounds", "bound k-1", "within"), rows)
    body += f"\nlinear fit slope {fit.slope:.3f} (Theta(k) shape)"
    return CampaignSection(
        "Table I row 3 -- O(k) rounds on random churn", body, ok
    )


def _section_lower_bound(scale: str, runner: Runner) -> CampaignSection:
    k_values = _k_values(scale)
    specs = [
        RunSpec(
            graph=ComponentSpec(
                "star_star", {"n": k + 6, "initial_occupied": [0], "seed": k}
            ),
            placement=PlacementSpec(kind="rooted", k=k),
            seed=k,
            max_rounds=2 * k,
            collect_records=False,
            label=f"star_star k={k}",
        )
        for k in k_values
    ]
    rows = []
    ok = True
    for k, result in zip(k_values, runner.run(specs)):
        tight = result.dispersed and result.rounds == k - 1
        ok &= tight
        rows.append((k, result.rounds, k - 1, tight))
    return CampaignSection(
        "Figure 2 / Theorem 3 -- the Omega(k) bound is met exactly",
        format_table(("k", "rounds", "k-1", "tight"), rows),
        ok,
    )


def _section_memory(scale: str, runner: Runner) -> CampaignSection:
    k_values = _k_values(scale)
    specs = [
        RunSpec(
            graph=_CHURN(k + 8, 1),
            placement=PlacementSpec(kind="rooted", k=k),
            collect_records=False,
            label=f"memory k={k}",
        )
        for k in k_values
    ]
    rows = []
    ok = True
    for k, result in zip(k_values, runner.run(specs)):
        expected = math.ceil(math.log2(k + 1))
        ok &= result.max_persistent_bits == expected
        rows.append((k, result.max_persistent_bits, expected))
    return CampaignSection(
        "Lemma 8 -- Theta(log k) persistent bits",
        format_table(("k", "measured bits", "ceil(log2(k+1))"), rows),
        ok,
    )


def _section_faults(scale: str, runner: Runner) -> CampaignSection:
    k = 32 if scale == "quick" else 64
    f_values = [0, k // 4, k // 2, (3 * k) // 4]
    data = sweep_faults(
        k,
        f_values,
        seeds=(0, 1),
        crash_window=2,
        phases=[CrashPhase.BEFORE_COMMUNICATE],
        runner=runner,
    )
    rows = []
    means = []
    ok = True
    for f in f_values:
        stats = summarize(data[f])
        means.append(stats["mean_rounds"])
        ok &= stats["all_dispersed"] == 1.0
        rows.append((f, k - f, stats["mean_rounds"]))
    ok &= means[-1] < means[0]
    return CampaignSection(
        f"Table I row 4 -- O(k-f) rounds under crashes (k={k})",
        format_table(("f", "k-f", "mean rounds"), rows),
        ok,
    )


def _section_impossibility_local(scale: str, runner: Runner) -> CampaignSection:
    from repro.adversary.local_impossibility import (
        build_fig1_instance,
        interior_views_are_symmetric,
    )
    from repro.baselines.local_candidates import LOCAL_CANDIDATES

    rounds = 100 if scale == "quick" else 400
    instance = build_fig1_instance(6, 9)
    specs = [
        RunSpec(
            graph=ComponentSpec("local_stall", {"n": 9, "seed": 1}),
            placement=PlacementSpec(
                kind="explicit", positions=dict(instance.positions)
            ),
            algorithm=ComponentSpec(candidate_cls.name),
            communication="local",
            max_rounds=rounds,
            label=f"local_stall {candidate_cls.name}",
        )
        for candidate_cls in LOCAL_CANDIDATES
    ]
    rows = []
    ok = interior_views_are_symmetric(instance)
    for candidate_cls, result in zip(LOCAL_CANDIDATES, runner.run(specs)):
        ok &= not result.dispersed
        rows.append((candidate_cls.name, rounds, result.dispersed))
    return CampaignSection(
        "Table I row 1 / Figure 1 -- local-model candidates stall",
        format_table(("candidate", "rounds given", "dispersed"), rows),
        ok,
    )


def _section_impossibility_global(scale: str, runner: Runner) -> CampaignSection:
    from repro.baselines.global_candidates import GLOBAL_NO1NK_CANDIDATES

    rounds = 100 if scale == "quick" else 400
    k, n = 8, 14
    positions = {i: i - 1 for i in range(1, k)}
    positions[k] = 0
    specs = [
        RunSpec(
            graph=ComponentSpec("clique_rewiring", {"n": n, "seed": 1}),
            placement=PlacementSpec(kind="explicit", positions=dict(positions)),
            algorithm=ComponentSpec(candidate_cls.name),
            neighborhood_knowledge=False,
            max_rounds=rounds,
            label=f"clique_rewiring {candidate_cls.name}",
        )
        for candidate_cls in GLOBAL_NO1NK_CANDIDATES
    ]
    rows = []
    ok = True
    for candidate_cls, result in zip(
        GLOBAL_NO1NK_CANDIDATES, runner.run(specs)
    ):
        visited = set()
        for record in result.records:
            visited |= record.occupied_after
        new_nodes = len(visited) - (k - 1) if result.records else 0
        ok &= (not result.dispersed) and new_nodes == 0
        rows.append((candidate_cls.name, rounds, new_nodes))
    return CampaignSection(
        "Table I row 2 -- no-1-NK candidates make zero progress",
        format_table(("candidate", "rounds given", "new nodes visited"), rows),
        ok,
    )


def _section_figure34(scale: str, runner: Runner) -> CampaignSection:
    from repro.analysis.figures import build_fig3_instance
    from repro.core.components import partition_into_components
    from repro.core.spanning_tree import build_spanning_tree
    from repro.sim.observation import build_info_packets

    instance = build_fig3_instance()
    packets = list(
        build_info_packets(instance.snapshot, instance.positions).values()
    )
    components = partition_into_components(packets)
    roots = sorted(
        build_spanning_tree(c).root for c in components
    )
    (result,) = runner.run(
        [
            RunSpec(
                graph=ComponentSpec("fig3_static", {"n": instance.snapshot.n}),
                placement=PlacementSpec(
                    kind="explicit", positions=dict(instance.positions)
                ),
                label="fig3 worked example",
            )
        ]
    )
    ok = (
        {tuple(c.representatives) for c in components}
        == {tuple(c) for c in instance.expected_components}
        and tuple(roots) == tuple(sorted(instance.expected_roots))
        and result.dispersed
    )
    rows = [
        (str([list(c.representatives) for c in components]), str(roots),
         result.rounds, result.dispersed)
    ]
    return CampaignSection(
        "Figures 3 & 4 -- the worked example (15 nodes / 17 edges / "
        "14 robots)",
        format_table(("components", "roots", "rounds", "dispersed"), rows),
        ok,
    )


def _section_ring(scale: str, runner: Runner) -> CampaignSection:
    n, k = 12, 8
    blocked, paper = runner.run(
        [
            RunSpec(
                graph=ComponentSpec(
                    "ring", {"n": n, "mode": "blocking", "seed": 1}
                ),
                placement=PlacementSpec(kind="rooted", k=k),
                algorithm=ComponentSpec("ring_walk_dispersion"),
                communication="local",
                max_rounds=150 if scale == "quick" else 400,
                label="ring walker (local)",
            ),
            RunSpec(
                graph=ComponentSpec(
                    "ring",
                    {
                        "n": n,
                        "mode": "blocking",
                        "seed": 1,
                        "communication": "global",
                    },
                ),
                placement=PlacementSpec(kind="rooted", k=k),
                label="ring paper algorithm",
            ),
        ]
    )
    ok = (not blocked.dispersed) and paper.dispersed and paper.rounds <= k - 1
    rows = [
        ("ring walker (local)", blocked.dispersed, blocked.rounds),
        ("paper algorithm (global+1NK)", paper.dispersed, paper.rounds),
    ]
    return CampaignSection(
        "E6 -- dynamic rings: blocking adversary vs both algorithms",
        format_table(("algorithm", "dispersed", "rounds"), rows),
        ok,
    )


def _section_byzantine(scale: str, runner: Runner) -> CampaignSection:
    n, k = 20, 12
    budget = 120 if scale == "quick" else 300
    base = RunSpec(
        graph=_CHURN(n, 2),
        placement=PlacementSpec(kind="rooted", k=k),
        max_rounds=budget,
        label="byzantine honest",
    )
    honest, attacked = runner.run(
        [
            base,
            base.with_(
                byzantine={1: ComponentSpec("hide_multiplicity")},
                label="byzantine 1 liar",
            ),
        ]
    )
    ok = honest.dispersed and not attacked.dispersed and (
        attacked.total_moves == 0
    )
    rows = [
        ("honest", honest.dispersed, honest.rounds, honest.total_moves),
        ("1 liar (hide multiplicity)", attacked.dispersed,
         attacked.rounds, attacked.total_moves),
    ]
    return CampaignSection(
        "E7 -- byzantine: one packet-forging robot livelocks Algorithm 4",
        format_table(("fleet", "dispersed", "rounds", "moves"), rows),
        ok,
    )


def _section_schedulers(scale: str, runner: Runner) -> CampaignSection:
    """Section VIII -- where Algorithm 4 degrades beyond FSYNC.

    The paper proves the k-1 round bound in the fully synchronous model
    and names ssync/async as open; this section runs the same churn
    instance under all three scheduler models and charts the
    degradation: dispersion is still reached (the algorithm is safe --
    every reachable configuration keeps making progress on fully-active
    steps), but only FSYNC keeps the k-1 bound.
    """
    n, k = (18, 12) if scale == "quick" else (28, 20)
    budget = 4000
    base = RunSpec(
        graph=_CHURN(n, 3),
        placement=PlacementSpec(kind="rooted", k=k),
        max_rounds=budget,
        collect_records=False,
        label="schedulers fsync",
    )
    fsync, ssync, async_ = runner.run(
        [
            base,
            base.with_(
                scheduler=ComponentSpec(
                    "ssync",
                    {"policy": "random_subset", "p": 0.6, "seed": 5},
                ),
                label="schedulers ssync",
            ),
            base.with_(
                scheduler=ComponentSpec(
                    "async",
                    {"seed": 5, "distribution": "uniform", "max_delay": 3},
                ),
                label="schedulers async",
            ),
        ]
    )
    bound = k - 1
    rows = [
        ("fsync", fsync.dispersed, fsync.rounds, fsync.rounds <= bound),
        ("ssync p=0.6", ssync.dispersed, ssync.rounds,
         ssync.rounds <= bound),
        ("async uniform<=3", async_.dispersed, async_.rounds,
         async_.rounds <= bound),
    ]
    ok = (
        fsync.dispersed and ssync.dispersed and async_.dispersed
        and fsync.rounds <= bound
        and ssync.rounds >= fsync.rounds
        and async_.rounds >= fsync.rounds
    )
    body = format_table(
        ("scheduler", "dispersed", "steps", f"within k-1={bound}"), rows
    )
    return CampaignSection(
        "Section VIII -- scheduler models: Algorithm 4 degradation "
        "under ssync/async",
        body,
        ok,
        data={
            "algorithm": "dispersion_dynamic",
            "bound": bound,
            "degradation": {
                "fsync": {"dispersed": fsync.dispersed,
                          "steps": fsync.rounds},
                "ssync": {"dispersed": ssync.dispersed,
                          "steps": ssync.rounds},
                "async": {"dispersed": async_.dispersed,
                          "steps": async_.rounds,
                          "final_epoch": async_.final_epoch},
            },
        },
    )


def _section_backend_speedup(scale: str, runner: Runner) -> CampaignSection:
    """E13 -- the vectorized engine backend vs the reference.

    Each grid cell runs the identical spec through both engine backends
    and compares the results; the verdict is *bit-identicality only*
    (wall-clock never fails a campaign -- machine load must not flake
    CI).  The measured speedups ride along in ``data``.  Timing goes
    through :func:`~repro.sim.spec.execute` directly rather than the
    campaign runner: a cache hit would time disk I/O, not the engine,
    and these runs must not skew the campaign's cache hit-rate block.
    """
    from repro.sim.spec import execute
    from repro.sim.traceio import run_result_to_json

    cells = [(96, 72), (192, 144), (384, 288)]
    if scale == "full":
        cells.append((512, 384))
    rows = []
    ok = True
    cell_data: List[Dict[str, Any]] = []
    for index, (n, k) in enumerate(cells):
        spec = RunSpec(
            graph=ComponentSpec(
                "static_family",
                {"family": "random_dense", "n": n, "seed": 9},
            ),
            placement=PlacementSpec(kind="rooted", k=k),
            # Records only on the smallest cell: they feed the full
            # trace fingerprint below without slowing the big cells.
            collect_records=index == 0,
            label=f"backend speedup n={n} k={k}",
        )
        t0 = time.perf_counter()
        reference = execute(spec)
        ref_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        vectorized = execute(spec.with_(backend=ComponentSpec("vectorized")))
        vec_seconds = time.perf_counter() - t0
        identical = (
            reference.final_positions == vectorized.final_positions
            and reference.rounds == vectorized.rounds
            and reference.total_moves == vectorized.total_moves
        )
        if index == 0:
            identical &= run_result_to_json(
                reference
            ) == run_result_to_json(vectorized)
        ok &= reference.dispersed and identical
        speedup = (
            ref_seconds / vec_seconds if vec_seconds > 0 else float("inf")
        )
        rows.append(
            (
                f"{n}/{k}",
                f"{ref_seconds:.3f}",
                f"{vec_seconds:.3f}",
                f"{speedup:.1f}x",
                identical,
            )
        )
        cell_data.append(
            {
                "n": n,
                "k": k,
                "reference_seconds": round(ref_seconds, 6),
                "vectorized_seconds": round(vec_seconds, 6),
                "speedup": round(speedup, 3),
                "identical": identical,
            }
        )
    body = format_table(
        ("n/k", "reference s", "vectorized s", "speedup", "identical"), rows
    )
    return CampaignSection(
        "E13 -- vectorized engine backend: bit-identical, "
        "reference-vs-vectorized speedup",
        body,
        ok,
        data={
            "cells": cell_data,
            "largest_cell_speedup": cell_data[-1]["speedup"],
        },
    )


_SECTIONS = (
    _section_algorithm,
    _section_lower_bound,
    _section_memory,
    _section_faults,
    _section_impossibility_local,
    _section_impossibility_global,
    _section_figure34,
    _section_ring,
    _section_byzantine,
    _section_schedulers,
    _section_backend_speedup,
)


def run_campaign(
    scale: str = "quick",
    *,
    runner: Optional[Runner] = None,
    store: Optional[RunStore] = None,
    backend: Optional[str] = None,
) -> CampaignReport:
    """Execute every experiment at the given scale; see module docstring.

    ``runner`` is the execution backend the sections' spec grids go
    through; omitted, everything runs serially in-process.  ``store``
    caches every run by content hash, making the campaign resumable;
    the report then carries a ``cache`` block with hit/miss/recomputed
    counts for this invocation.  (A ``runner`` that is already a
    :class:`CachingRunner` is introspected instead of re-wrapped.)
    ``backend`` pins an *engine* backend (``"reference"`` or
    ``"vectorized"``) on every campaign spec; the pinning happens
    before content hashing, so each engine backend has its own cache
    namespace.
    """
    if scale not in ("quick", "full"):
        raise ValueError(f"scale must be 'quick' or 'full', got {scale!r}")
    base_runner = runner or SerialRunner()
    caching = _find_caching_runner(base_runner)
    if store is not None and not (
        caching is not None and caching.store.same_target(store)
    ):
        base_runner = CachingRunner(base_runner, store)
        caching = base_runner
    runner_name = base_runner.name
    if backend is not None:
        base_runner = _BackendPinningRunner(base_runner, backend)
    cache_store = caching.store if caching is not None else None
    hits_before = cache_store.hits if cache_store is not None else 0
    misses_before = cache_store.misses if cache_store is not None else 0
    corrupt_before = cache_store.corrupt if cache_store is not None else 0
    failures_before = Counter(_collect_failure_records(base_runner))
    report = CampaignReport(scale=scale, backend=runner_name)
    t_campaign = time.perf_counter()
    for build_section in _SECTIONS:
        counting = _CountingRunner(base_runner)
        t_section = time.perf_counter()
        section = build_section(scale, counting)
        section.seconds = time.perf_counter() - t_section
        section.runs = counting.count
        report.sections.append(section)
    report.total_seconds = time.perf_counter() - t_campaign
    if cache_store is not None:
        misses = cache_store.misses - misses_before
        report.cache = {
            "hits": cache_store.hits - hits_before,
            "misses": misses,
            "recomputed": misses,
            "corrupt_entries": cache_store.corrupt - corrupt_before,
        }
    # Only the records new since this invocation started: a reused
    # runner (e.g. a chaos replay's warm pass) keeps accumulating.
    new_records = Counter(_collect_failure_records(base_runner)) - failures_before
    report.failures = [
        record.to_dict() for record in sorted(new_records.elements())
    ]
    return report
