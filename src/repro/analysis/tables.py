"""Plain-text table rendering for benchmark reports.

Benchmarks print the rows/series that correspond to the paper's table and
figures; this module keeps that output aligned and consistent without any
third-party dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _render(cell: object) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render an aligned monospace table.

    Numeric cells are right-aligned, text cells left-aligned; floats are
    shown with two decimals and booleans as yes/no.
    """
    original_rows = [list(row) for row in rows]
    rendered_rows = [[_render(cell) for cell in row] for row in original_rows]

    widths = [len(h) for h in headers]
    for rendered in rendered_rows:
        if len(rendered) != len(headers):
            raise ValueError(
                f"row has {len(rendered)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(rendered):
            widths[i] = max(widths[i], len(cell))

    def align(text: str, width: int, original: object) -> str:
        is_numeric = isinstance(original, (int, float)) and not isinstance(
            original, bool
        )
        return text.rjust(width) if is_numeric else text.ljust(width)

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()
    )
    lines.append("  ".join("-" * w for w in widths))
    for original, rendered in zip(original_rows, rendered_rows):
        lines.append(
            "  ".join(
                align(text, width, cell)
                for text, width, cell in zip(rendered, widths, original)
            ).rstrip()
        )
    return "\n".join(lines)


def format_latex_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    caption: str = "",
    label: str = "",
) -> str:
    """Render the same data as a LaTeX ``tabular`` (booktabs-free).

    Useful when lifting measured tables into a paper-style writeup; the
    escaping covers the characters that occur in this library's reports.
    """

    def escape(text: str) -> str:
        for char, replacement in (
            ("&", r"\&"), ("%", r"\%"), ("_", r"\_"), ("#", r"\#"),
        ):
            text = text.replace(char, replacement)
        return text

    original_rows = [list(row) for row in rows]
    for row in original_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    column_spec = "l" * len(headers)
    lines = [r"\begin{table}[t]", r"  \centering"]
    if caption:
        lines.append(rf"  \caption{{{escape(caption)}}}")
    if label:
        lines.append(rf"  \label{{{label}}}")
    lines.append(rf"  \begin{{tabular}}{{{column_spec}}}")
    lines.append(r"    \hline")
    lines.append(
        "    " + " & ".join(escape(h) for h in headers) + r" \\"
    )
    lines.append(r"    \hline")
    for row in original_rows:
        lines.append(
            "    "
            + " & ".join(escape(_render(cell)) for cell in row)
            + r" \\"
        )
    lines.append(r"    \hline")
    lines.append(r"  \end{tabular}")
    lines.append(r"\end{table}")
    return "\n".join(lines)
