"""Reconstruction of the paper's worked example (Figures 3 and 4).

The paper illustrates the construction pipeline on a 15-node, 17-edge
round graph ``G_r`` carrying 14 robots that split into two connected
components -- the red component computed by robots 2, 4, 6, 8-11 and the
green one computed by the rest -- each spanning tree rooted at its
smallest-ID multiplicity node.  The figure's exact edge list and port
numbers are not machine-readable from the paper, so
:func:`build_fig3_instance` rebuilds an instance with exactly the stated
parameters and the figure-relevant structure:

* 15 nodes, 17 edges, 14 robots;
* two occupied connected components of six nodes each, >= 2 hops apart;
* robots 2, 4, 6, 8, 9, 10, 11 on one component, the others on the other;
* one multiplicity node per component, the smallest-ID one becoming the
  spanning tree root (robot 1's node and robot 2's node respectively);
* three empty nodes, placed so each component has frontier nodes with
  empty neighbors (so Figure 4's disjoint paths and sliding are
  non-trivial).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.graph.snapshot import GraphSnapshot


@dataclass(frozen=True)
class Fig3Instance:
    """The reconstructed Figure 3/4 instance."""

    snapshot: GraphSnapshot
    positions: Dict[int, int]
    expected_components: Tuple[Tuple[int, ...], Tuple[int, ...]]
    """The two components as sorted tuples of representative IDs."""

    expected_roots: Tuple[int, int]
    """Representative IDs of the two spanning-tree roots."""

    @property
    def k(self) -> int:
        return len(self.positions)

    @property
    def n(self) -> int:
        return self.snapshot.n


def build_fig3_instance() -> Fig3Instance:
    """Build the 15-node / 17-edge / 14-robot example instance.

    Layout (node indices are simulator ground truth, invisible to robots):

    * Component "green": nodes 0-5 carrying robots
      {0: [1, 12], 1: [3], 2: [5], 3: [7], 4: [13], 5: [14]} -- node 0 is
      the multiplicity node, so the green root representative is robot 1.
    * Component "red": nodes 6-11 carrying robots
      {6: [2, 9], 7: [4], 8: [6], 9: [8], 10: [10], 11: [11]} -- node 6 is
      the multiplicity node, root representative robot 2.
    * Empty nodes: 12 (between the components, keeping them 2 hops apart),
      13 and 14 (a small empty tail giving the green side extra frontier).
    """
    edges = [
        # green component (6 edges)
        (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 2),
        # red component (6 edges)
        (6, 7), (7, 8), (8, 9), (9, 10), (10, 11), (6, 8),
        # empty connector node 12 between the two components (2 edges)
        (5, 12), (12, 6),
        # empty tail 13 - 14 attached to the green side (3 edges)
        (12, 13), (13, 14), (4, 13),
    ]
    snapshot = GraphSnapshot.from_edges(15, edges)
    assert snapshot.num_edges == 17

    positions = {
        1: 0, 12: 0,        # green multiplicity node
        3: 1, 5: 2, 7: 3, 13: 4, 14: 5,
        2: 6, 9: 6,         # red multiplicity node
        4: 7, 6: 8, 8: 9, 10: 10, 11: 11,
    }
    green = (1, 3, 5, 7, 13, 14)
    red = (2, 4, 6, 8, 10, 11)
    return Fig3Instance(
        snapshot=snapshot,
        positions=positions,
        expected_components=(green, red),
        expected_roots=(1, 2),
    )


def fig3_component_summary(instance: Fig3Instance) -> List[str]:
    """Human-readable lines describing the instance (for examples/benches)."""
    lines = [
        f"n={instance.n} nodes, m={instance.snapshot.num_edges} edges, "
        f"k={instance.k} robots",
    ]
    for label, reps, root in zip(
        ("green", "red"),
        instance.expected_components,
        instance.expected_roots,
    ):
        lines.append(
            f"component {label}: representatives {list(reps)}, "
            f"spanning-tree root {root}"
        )
    return lines
