"""High-level experiment runners and parameter sweeps.

These helpers standardize how the benchmarks, examples and integration
tests launch runs: one call builds the dynamic graph, the placement, the
algorithm and the engine, and returns a compact :class:`DispersionOutcome`
row.  Sweeps aggregate rows over seeds so benchmark output reports
mean/min/max like the tables of an experimental-systems paper would.

The sweeps are built on the declarative :class:`~repro.sim.spec.RunSpec`
layer: :func:`rounds_vs_k_specs` / :func:`faults_specs` emit the spec
grid, and the sweep functions execute it through a pluggable
:class:`~repro.sim.runner.Runner` (pass ``runner=ProcessPoolRunner(...)``
to fan a sweep across cores) and optionally through a
:class:`~repro.sim.store.RunStore` (pass ``store=...``): stored specs
are served from the cache, so an interrupted sweep resumes where it
stopped and an identical re-run costs only disk reads.  Passing a custom
``dynamics`` / ``algorithm_factory`` *callable* still works as before --
those runs fall back to in-process execution since arbitrary callables
are not serializable (and are never cached).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.dispersion import DispersionDynamic
from repro.graph.dynamic import (
    DynamicGraph,
    RandomChurnDynamicGraph,
    StaticDynamicGraph,
)
from repro.robots.faults import CrashPhase, CrashSchedule
from repro.robots.robot import RobotSet
from repro.sim.algorithm import RobotAlgorithm
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import RunResult
from repro.sim.runner import Runner, SerialRunner
from repro.sim.spec import ComponentSpec, CrashSpec, PlacementSpec, RunSpec
from repro.sim.store import CachingRunner, RunStore


def _grid_backend(
    runner: Optional[Runner], store: Optional[RunStore]
) -> Runner:
    """The effective backend: ``runner`` (serial default), cached if asked."""
    backend = runner or SerialRunner()
    if store is not None and not (
        isinstance(backend, CachingRunner)
        and backend.store.same_target(store)
    ):
        backend = CachingRunner(backend, store)
    return backend


@dataclass(frozen=True)
class DispersionOutcome:
    """One run's headline numbers, ready for a report row."""

    k: int
    n: int
    initial_occupied: int
    rounds: int
    total_moves: int
    max_persistent_bits: int
    dispersed: bool
    alive: int
    faults: int

    @classmethod
    def from_result(cls, result: RunResult, faults: int = 0) -> "DispersionOutcome":
        return cls(
            k=result.k,
            n=result.n,
            initial_occupied=result.initial_occupied,
            rounds=result.rounds,
            total_moves=result.total_moves,
            max_persistent_bits=result.max_persistent_bits,
            dispersed=result.dispersed,
            alive=result.alive_count,
            faults=faults,
        )


DynamicsFactory = Callable[[int, int], DynamicGraph]
"""``(n, seed) -> DynamicGraph`` builder used by sweeps."""


def churn_dynamics(extra_edges_per_node: float = 0.5) -> DynamicsFactory:
    """A random-churn dynamics factory with edge budget scaled by ``n``."""

    def build(n: int, seed: int) -> DynamicGraph:
        return RandomChurnDynamicGraph(
            n, extra_edges=int(extra_edges_per_node * n), seed=seed
        )

    return build


def static_dynamics(
    builder: Callable[[int, random.Random], "object"],
) -> DynamicsFactory:
    """Wrap a graph-family builder ``(n, rng) -> snapshot`` as static
    dynamics."""

    def build(n: int, seed: int) -> DynamicGraph:
        return StaticDynamicGraph(builder(n, random.Random(seed)))

    return build


def run_dispersion(
    dynamic_graph: DynamicGraph,
    robots: RobotSet,
    *,
    algorithm: Optional[RobotAlgorithm] = None,
    crash_schedule: Optional[CrashSchedule] = None,
    max_rounds: Optional[int] = None,
    collect_records: bool = True,
) -> RunResult:
    """Run the paper's algorithm (or a supplied one) on an instance."""
    engine = SimulationEngine(
        dynamic_graph,
        robots,
        algorithm if algorithm is not None else DispersionDynamic(),
        crash_schedule=crash_schedule,
        max_rounds=max_rounds,
        collect_records=collect_records,
    )
    return engine.run()


def rounds_vs_k_specs(
    k_values: Sequence[int],
    *,
    n_for_k: Callable[[int], int] = lambda k: 2 * k,
    extra_edges_per_node: float = 0.5,
    rooted: bool = True,
    seeds: Sequence[int] = (0, 1, 2),
    algorithm: str = "dispersion_dynamic",
) -> List[RunSpec]:
    """The rounds-vs-k sweep as a declarative :class:`RunSpec` grid.

    One spec per ``(k, seed)`` pair, in ``k``-major order, reproducing
    :func:`sweep_rounds_vs_k`'s default (random-churn) instances exactly.
    """
    specs: List[RunSpec] = []
    for k in k_values:
        n = n_for_k(k)
        for seed in seeds:
            specs.append(
                RunSpec(
                    graph=ComponentSpec(
                        "random_churn",
                        {"n": n, "extra_edges": int(extra_edges_per_node * n)},
                    ),
                    placement=PlacementSpec(
                        kind="rooted" if rooted else "arbitrary", k=k
                    ),
                    algorithm=ComponentSpec(algorithm),
                    seed=seed,
                    max_rounds=4 * k + 64,
                    collect_records=False,
                    label=f"k={k} seed={seed}",
                )
            )
    return specs


def faults_specs(
    k: int,
    f_values: Sequence[int],
    *,
    n: Optional[int] = None,
    extra_edges_per_node: float = 0.5,
    seeds: Sequence[int] = (0, 1, 2),
    crash_window: Optional[int] = None,
    phases: Optional[List[CrashPhase]] = None,
) -> List[RunSpec]:
    """The crash-fault sweep as a declarative :class:`RunSpec` grid.

    One spec per ``(f, seed)`` pair, in ``f``-major order, reproducing
    :func:`sweep_faults`'s default instances exactly (including the
    ``fault:{k}:{f}:{seed}``-derived crash schedules).
    """
    n = n or 2 * k
    window = crash_window if crash_window is not None else max(1, k // 2)
    specs: List[RunSpec] = []
    for f in f_values:
        for seed in seeds:
            specs.append(
                RunSpec(
                    graph=ComponentSpec(
                        "random_churn",
                        {"n": n, "extra_edges": int(extra_edges_per_node * n)},
                    ),
                    placement=PlacementSpec(kind="rooted", k=k),
                    crash=CrashSpec(
                        kind="random",
                        f=f,
                        max_round=window,
                        phases=(
                            tuple(p.value for p in phases)
                            if phases is not None else None
                        ),
                    ),
                    seed=seed,
                    max_rounds=4 * k + 64,
                    collect_records=False,
                    label=f"k={k} f={f} seed={seed}",
                )
            )
    return specs


def sweep_rounds_vs_k(
    k_values: Sequence[int],
    *,
    n_for_k: Callable[[int], int] = lambda k: 2 * k,
    dynamics: Optional[DynamicsFactory] = None,
    extra_edges_per_node: float = 0.5,
    rooted: bool = True,
    seeds: Sequence[int] = (0, 1, 2),
    algorithm_factory: Callable[[], RobotAlgorithm] = DispersionDynamic,
    runner: Optional[Runner] = None,
    store: Optional[RunStore] = None,
) -> Dict[int, List[DispersionOutcome]]:
    """Rounds-to-dispersion as a function of ``k`` (Table I row 3 shape).

    Returns ``{k: [outcome per seed]}``.  Defaults: rooted starts on random
    churn with ``n = 2k`` and ``extra_edges_per_node * n`` churn edges.
    The default grid executes through ``runner`` (:class:`SerialRunner` if
    omitted), optionally cached in ``store``; supplying a custom
    ``dynamics`` or ``algorithm_factory`` callable forces in-process,
    uncached execution since arbitrary callables cannot be shipped to
    worker processes or hashed into a cache key.
    """
    if dynamics is None and algorithm_factory is DispersionDynamic:
        specs = rounds_vs_k_specs(
            k_values, n_for_k=n_for_k, rooted=rooted, seeds=seeds,
            extra_edges_per_node=extra_edges_per_node,
        )
        outcomes = _grid_backend(runner, store).run(specs)
        results: Dict[int, List[DispersionOutcome]] = {}
        for spec, result in zip(specs, outcomes):
            results.setdefault(spec.placement.k, []).append(
                DispersionOutcome.from_result(result)
            )
        return results
    dynamics = dynamics or churn_dynamics(extra_edges_per_node)
    results = {}
    for k in k_values:
        n = n_for_k(k)
        rows: List[DispersionOutcome] = []
        for seed in seeds:
            dyn = dynamics(n, seed)
            if rooted:
                robots = RobotSet.rooted(k, n)
            else:
                robots = RobotSet.arbitrary(k, n, random.Random(seed))
            result = run_dispersion(
                dyn,
                robots,
                algorithm=algorithm_factory(),
                collect_records=False,
                max_rounds=4 * k + 64,
            )
            rows.append(DispersionOutcome.from_result(result))
        results[k] = rows
    return results


def sweep_faults(
    k: int,
    f_values: Sequence[int],
    *,
    n: Optional[int] = None,
    dynamics: Optional[DynamicsFactory] = None,
    seeds: Sequence[int] = (0, 1, 2),
    crash_window: Optional[int] = None,
    phases: Optional[List[CrashPhase]] = None,
    runner: Optional[Runner] = None,
    store: Optional[RunStore] = None,
) -> Dict[int, List[DispersionOutcome]]:
    """Rounds-to-dispersion as a function of the crash count ``f``
    (Table I row 4 / Theorem 5 shape).

    Crashes are scheduled uniformly in ``[0, crash_window]`` (default:
    early, within the first ``k // 2`` rounds, which is the regime where
    Theorem 5's O(k - f) saving is visible).  The default grid executes
    through ``runner`` (:class:`SerialRunner` if omitted), optionally
    cached in ``store``; a custom ``dynamics`` callable forces
    in-process, uncached execution.
    """
    if dynamics is None:
        specs = faults_specs(
            k, f_values, n=n, seeds=seeds,
            crash_window=crash_window, phases=phases,
        )
        outcomes = _grid_backend(runner, store).run(specs)
        results: Dict[int, List[DispersionOutcome]] = {}
        for spec, result in zip(specs, outcomes):
            assert spec.crash is not None
            results.setdefault(spec.crash.f, []).append(
                DispersionOutcome.from_result(result, faults=spec.crash.f)
            )
        return results
    n = n or 2 * k
    window = crash_window if crash_window is not None else max(1, k // 2)
    results = {}
    for f in f_values:
        rows: List[DispersionOutcome] = []
        for seed in seeds:
            rng = random.Random(f"fault:{k}:{f}:{seed}")
            schedule = CrashSchedule.random_schedule(
                k, f, window, rng, phases=phases
            )
            result = run_dispersion(
                dynamics(n, seed),
                RobotSet.rooted(k, n),
                crash_schedule=schedule,
                collect_records=False,
                max_rounds=4 * k + 64,
            )
            rows.append(DispersionOutcome.from_result(result, faults=f))
        results[f] = rows
    return results


def summarize(outcomes: List[DispersionOutcome]) -> Dict[str, float]:
    """Mean/min/max rounds and mean moves over a list of outcomes."""
    rounds = [o.rounds for o in outcomes]
    moves = [o.total_moves for o in outcomes]
    return {
        "mean_rounds": sum(rounds) / len(rounds),
        "min_rounds": float(min(rounds)),
        "max_rounds": float(max(rounds)),
        "mean_moves": sum(moves) / len(moves),
        "all_dispersed": float(all(o.dispersed for o in outcomes)),
    }
