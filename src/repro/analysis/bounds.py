"""Empirical checks of the paper's bounds.

Each function takes measured data and decides whether the corresponding
theoretical claim holds in the measurements:

* Theorem 4 upper bound -- fault-free runs finish within ``k - alpha_0``
  rounds (the occupied set starts at ``alpha_0`` nodes and must gain at
  least one node per round, Lemma 7);
* Lemma 7 -- the occupied node set grows monotonically, by at least one
  node per executed round, in fault-free runs;
* Lemma 8 -- peak persistent memory grows like ``ceil(log2 k)`` bits;
* linearity -- rounds vs. k is (approximately) a line, the Theta(k) shape.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Tuple

from repro.sim.metrics import RunResult


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares ``y ~ slope * x + intercept`` (numpy-backed)."""
    import numpy as np

    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) pairs")
    slope, intercept = np.polyfit(np.asarray(xs, float), np.asarray(ys, float), 1)
    return float(slope), float(intercept)


def check_rounds_upper_bound(result: RunResult) -> bool:
    """Theorem 4: a fault-free run finishes in at most ``k - alpha_0``
    rounds (and trivially at least 0)."""
    if result.crashed_robots:
        raise ValueError(
            "the k - alpha_0 bound is for fault-free runs; use the O(k - f) "
            "check for faulty ones"
        )
    if not result.dispersed:
        return False
    return result.rounds <= result.k - result.initial_occupied


def check_faulty_rounds_bound(result: RunResult, slack: int = 1) -> bool:
    """Theorem 5 shape: with ``f`` crashes the run needs O(k - f) rounds.

    The executable form: rounds <= (k - f) + slack extra rounds for crash
    timing artifacts (a crash after Compute can undo one round's progress:
    the crashed robot's vacated node must be re-occupied).
    """
    if not result.dispersed:
        return False
    f = len(result.crashed_robots)
    return result.rounds <= max(0, result.k - f) + slack * max(1, f)


def check_monotone_progress(result: RunResult) -> bool:
    """Lemma 7 on a fault-free trace: |occupied| strictly grows each round.

    Requires the run to have per-round records.
    """
    if result.crashed_robots:
        raise ValueError("Lemma 7 is a fault-free statement")
    trajectory = result.occupied_trajectory()
    return all(b >= a + 1 for a, b in zip(trajectory, trajectory[1:]))


def check_memory_logarithmic(
    bits_by_k: Dict[int, int], *, constant: float = 3.0
) -> bool:
    """Lemma 8 shape: measured peak bits <= constant * ceil(log2 k) + 1,
    and non-decreasing dependence on k overall."""
    for k, bits in bits_by_k.items():
        budget = constant * max(1.0, math.ceil(math.log2(max(k, 2)))) + 1
        if bits > budget:
            return False
    return True


def max_new_nodes_per_round(result: RunResult) -> int:
    """Largest per-round occupied-set growth in a recorded trace."""
    progress = result.progress_per_round()
    return max(progress) if progress else 0


def min_new_nodes_per_round(result: RunResult) -> int:
    """Smallest per-round occupied-set growth in a recorded trace."""
    progress = result.progress_per_round()
    return min(progress) if progress else 0


def rounds_match_lower_bound(result: RunResult) -> bool:
    """Against the Theorem 3 adversary, rounds must be exactly
    ``k - alpha_0``: at most one new node per round is reachable, and the
    algorithm's Lemma 7 guarantees at least one."""
    if not result.dispersed:
        return False
    return result.rounds == result.k - result.initial_occupied
