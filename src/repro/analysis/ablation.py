"""Ablated variants of Algorithm 4 for the design-choice benchmarks.

DESIGN.md calls out three load-bearing design choices in the paper's
algorithm; each variant here removes exactly one of them so the ablation
benchmark can show what breaks:

* :class:`NoDisjointnessVariant` -- skips Algorithm 3's disjointness
  filter and slides along *every* root path (conflicts resolved
  first-path-wins).  Paths then share nodes, a shared node is asked to
  forward one robot to several successors at once, and Lemma 7's invariant
  "every occupied node stays occupied" can break: runs get slower and can
  oscillate.
* :class:`NoTruncationVariant` -- skips Algorithm 4's
  ``count(v_root) - 1`` cap, allowing the root to send out as many robots
  as it has paths.  The root can then be vacated, previously-occupied
  nodes become empty again, and the ``k - alpha_0`` round bound no longer
  holds.
* :class:`UnorderedLeafVariant` -- processes leaf candidates in
  *decreasing* ID order instead of increasing.  This one is expected to
  still be correct (any common deterministic order preserves Lemmas 4-7);
  it isolates which conventions are essential versus arbitrary.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.components import ComponentGraph
from repro.core.disjoint_paths import RootPath, leaf_node_set
from repro.core.dispersion import DispersionDynamic
from repro.core.sliding import compute_sliding_moves, truncate_paths
from repro.core.spanning_tree import build_spanning_tree


class NoDisjointnessVariant(DispersionDynamic):
    """Ablation: all root paths, no disjointness filter."""

    name = "ablation_no_disjointness"

    def component_moves(self, component: ComponentGraph) -> Dict[int, int]:
        """All root paths, conflicts resolved first-path-wins."""
        tree = build_spanning_tree(component)
        if tree is None:
            return {}
        paths = [
            RootPath(tuple(tree.root_path(leaf)))
            for leaf in leaf_node_set(tree, component)
        ]
        root_count = component.node(tree.root).robot_count
        paths = truncate_paths(paths, root_count)

        # Sliding with overlapping paths: first path wins each robot; a
        # robot already claimed by an earlier path is skipped (its hop is
        # simply lost).  Mirrors what a naive implementation would do.
        moves: Dict[int, int] = {}
        root_robots = sorted(component.node(tree.root).robot_ids)
        for index, path in enumerate(paths):
            mover = root_robots[index + 1]
            if mover not in moves:
                if path.is_trivial:
                    port = component.node(tree.root).smallest_empty_port
                    if port is not None:
                        moves[mover] = port
                else:
                    moves[mover] = component.port_between(
                        path.nodes[0], path.nodes[1]
                    )
            for position in range(1, len(path.nodes)):
                node = path.nodes[position]
                info = component.node(node)
                candidates = [
                    r for r in sorted(info.robot_ids, reverse=True)
                    if r not in moves
                ]
                if not candidates:
                    continue
                if position < len(path.nodes) - 1:
                    port = component.port_between(
                        node, path.nodes[position + 1]
                    )
                else:
                    empty_port = info.smallest_empty_port
                    if empty_port is None:
                        continue
                    port = empty_port
                moves[candidates[0]] = port
        return moves


class NoTruncationVariant(DispersionDynamic):
    """Ablation: no ``count(v_root) - 1`` cap; the root may be vacated."""

    name = "ablation_no_truncation"

    def component_moves(self, component: ComponentGraph) -> Dict[int, int]:
        tree = build_spanning_tree(component)
        if tree is None:
            return {}
        from repro.core.disjoint_paths import compute_disjoint_paths

        paths = compute_disjoint_paths(tree, component)
        root_info = component.node(tree.root)
        # Assign as many root robots as there are paths -- including the
        # smallest one, so the root can end the round empty.
        usable = min(len(paths), root_info.robot_count)
        paths = paths[:usable]

        moves: Dict[int, int] = {}
        root_robots = sorted(root_info.robot_ids)
        for index, path in enumerate(paths):
            mover = root_robots[index]  # note: index 0 moves too
            if path.is_trivial:
                port = root_info.smallest_empty_port
                if port is not None:
                    moves[mover] = port
            else:
                moves[mover] = component.port_between(
                    path.nodes[0], path.nodes[1]
                )
                for position in range(1, len(path.nodes)):
                    node = path.nodes[position]
                    info = component.node(node)
                    if position < len(path.nodes) - 1:
                        port = component.port_between(
                            node, path.nodes[position + 1]
                        )
                    else:
                        empty_port = info.smallest_empty_port
                        if empty_port is None:
                            continue
                        port = empty_port
                    mover_here = max(info.robot_ids)
                    if mover_here not in moves:
                        moves[mover_here] = port
        return moves


class BfsTreeVariant(DispersionDynamic):
    """The paper's parenthetical: use a BFS spanning tree instead of DFS.

    Expected to preserve every guarantee (Lemmas 2-8 only need *some*
    deterministic tree all robots agree on); BFS trees are shallower, so
    root paths -- and hence per-round sliding chains -- tend to be
    shorter, trading fewer robot moves for (possibly) fewer parallel
    disjoint paths.
    """

    name = "ablation_bfs_tree"

    def component_moves(self, component: ComponentGraph) -> Dict[int, int]:
        from repro.core.disjoint_paths import compute_disjoint_paths
        from repro.core.spanning_tree import build_spanning_tree_bfs

        tree = build_spanning_tree_bfs(component)
        if tree is None:
            return {}
        paths = compute_disjoint_paths(tree, component)
        paths = truncate_paths(
            paths, component.node(tree.root).robot_count
        )
        return compute_sliding_moves(component, tree, paths)


class UnorderedLeafVariant(DispersionDynamic):
    """Ablation: greedy selection in *decreasing* leaf-ID order."""

    name = "ablation_descending_leaf_order"

    def component_moves(self, component: ComponentGraph) -> Dict[int, int]:
        tree = build_spanning_tree(component)
        if tree is None:
            return {}
        used_nodes: Set[int] = set()
        used_edges: Set[Tuple[int, int]] = set()
        selected: List[RootPath] = []
        for leaf in sorted(leaf_node_set(tree, component), reverse=True):
            path = RootPath(tuple(tree.root_path(leaf)))
            if any(node in used_nodes for node in path.interior_and_leaf):
                continue
            if any(edge in used_edges for edge in path.edges()):
                continue
            used_nodes.update(path.interior_and_leaf)
            used_edges.update(path.edges())
            selected.append(path)
        root_count = component.node(tree.root).robot_count
        selected = truncate_paths(selected, root_count)
        return compute_sliding_moves(component, tree, selected)
