"""Statistical helpers for experiment aggregation.

Sweeps repeat runs over seeds; these helpers turn the resulting samples
into the summaries a paper-style evaluation reports: means with confidence
intervals, least-squares fits with goodness-of-fit, and simple monotone
trend tests.  Built on numpy/scipy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple


@dataclass(frozen=True)
class SampleSummary:
    """Mean, spread and a confidence interval of one metric's samples."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float

    def as_row(self) -> Tuple[float, float, float, float]:
        """(mean, ci_low, ci_high, stdev) for table rows."""
        return (self.mean, self.ci_low, self.ci_high, self.stdev)


def summarize_samples(
    samples: Sequence[float], *, confidence: float = 0.95
) -> SampleSummary:
    """Mean with a Student-t confidence interval.

    For a single sample the interval degenerates to the point itself.
    """
    if not samples:
        raise ValueError("need at least one sample")
    import numpy as np

    data = np.asarray(samples, dtype=float)
    mean = float(data.mean())
    if len(data) == 1:
        return SampleSummary(1, mean, 0.0, mean, mean, mean, mean)

    from scipy import stats

    sem = float(stats.sem(data))
    stdev = float(data.std(ddof=1))
    if sem == 0.0:
        low = high = mean
    else:
        low, high = stats.t.interval(
            confidence, len(data) - 1, loc=mean, scale=sem
        )
    return SampleSummary(
        count=len(data),
        mean=mean,
        stdev=stdev,
        minimum=float(data.min()),
        maximum=float(data.max()),
        ci_low=float(low),
        ci_high=float(high),
    )


@dataclass(frozen=True)
class LinearFit:
    """A least-squares line with its coefficient of determination."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        """The fitted value at ``x``."""
        return self.slope * x + self.intercept


def fit_line(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Least-squares line fit with R^2 (the Theta(k) shape test)."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) pairs")
    import numpy as np

    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    ss_res = float(((y - predicted) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r_squared = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return LinearFit(float(slope), float(intercept), r_squared)


def fit_logarithm(ks: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Fit ``y ~ a * log2(k) + b`` (the Theta(log k) memory shape)."""
    if any(k <= 0 for k in ks):
        raise ValueError("log fit needs positive k values")
    return fit_line([math.log2(k) for k in ks], ys)


def is_monotone_decreasing(
    values: Sequence[float], *, tolerance: float = 0.0
) -> bool:
    """Whether the sequence trends down (each step may rise by at most
    ``tolerance`` -- sweeps over random seeds are noisy)."""
    return all(
        later <= earlier + tolerance
        for earlier, later in zip(values, values[1:])
    )


def group_summaries(
    samples_by_key: Dict[object, Sequence[float]],
    *,
    confidence: float = 0.95,
) -> Dict[object, SampleSummary]:
    """Summarize every group of a keyed sample dict."""
    return {
        key: summarize_samples(values, confidence=confidence)
        for key, values in samples_by_key.items()
    }


def relative_speedup(
    baseline: Sequence[float], improved: Sequence[float]
) -> float:
    """Mean(baseline) / mean(improved) -- the 'who wins by what factor'
    number the reproduction bands care about."""
    base = summarize_samples(baseline).mean
    new = summarize_samples(improved).mean
    if new == 0:
        raise ValueError("improved mean is zero; speedup undefined")
    return base / new
