"""Render the paper's Table I with this reproduction's measured verdicts.

The paper's only table summarizes its four results.  :func:`table1` runs a
compact measurement for each row and renders the table with an extra
column stating what this repository measured -- the one-glance "does the
reproduction hold" artifact, printed by ``repro-dispersion table1``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.tables import format_table


def _row_local_impossible() -> Tuple[str, bool]:
    from repro.adversary.local_impossibility import (
        LocalStallAdversary,
        build_fig1_instance,
    )
    from repro.baselines.local_candidates import LOCAL_CANDIDATES
    from repro.sim.engine import SimulationEngine
    from repro.sim.observation import CommunicationModel

    instance = build_fig1_instance(6, 9)
    stalled = 0
    for candidate_cls in LOCAL_CANDIDATES:
        algorithm = candidate_cls()
        result = SimulationEngine(
            LocalStallAdversary(9, algorithm, seed=1),
            instance.positions,
            algorithm,
            communication=CommunicationModel.LOCAL,
            max_rounds=120,
        ).run()
        if not result.dispersed:
            stalled += 1
    total = len(LOCAL_CANDIDATES)
    return (
        f"{stalled}/{total} candidates stalled 120 rounds",
        stalled == total,
    )


def _row_global_impossible() -> Tuple[str, bool]:
    from repro.adversary.global_impossibility import CliqueRewiringAdversary
    from repro.baselines.global_candidates import GLOBAL_NO1NK_CANDIDATES
    from repro.sim.engine import SimulationEngine

    k, n = 8, 14
    positions = {i: i - 1 for i in range(1, k)}
    positions[k] = 0
    frozen = 0
    for candidate_cls in GLOBAL_NO1NK_CANDIDATES:
        algorithm = candidate_cls()
        result = SimulationEngine(
            CliqueRewiringAdversary(n, algorithm, seed=1),
            dict(positions),
            algorithm,
            neighborhood_knowledge=False,
            max_rounds=120,
        ).run()
        visited = set()
        for record in result.records:
            visited |= record.occupied_after
        if not result.dispersed and len(visited) <= k - 1:
            frozen += 1
    total = len(GLOBAL_NO1NK_CANDIDATES)
    return (
        f"{frozen}/{total} candidates at zero progress",
        frozen == total,
    )


def _row_algorithm() -> Tuple[str, bool]:
    from repro.adversary.star_lower_bound import StarStarAdversary
    from repro.analysis.experiments import run_dispersion
    from repro.robots.robot import RobotSet

    tight = True
    for k in (16, 64):
        result = run_dispersion(
            StarStarAdversary(k + 6, [0], seed=k),
            RobotSet.rooted(k, k + 6),
            collect_records=False,
        )
        tight &= result.dispersed and result.rounds == k - 1
    return ("rounds = k-1 exactly vs worst case", tight)


def _row_faulty() -> Tuple[str, bool]:
    import random

    from repro.analysis.experiments import churn_dynamics, run_dispersion
    from repro.robots.faults import CrashPhase, CrashSchedule
    from repro.robots.robot import RobotSet

    k, f = 32, 16
    schedule = CrashSchedule.random_schedule(
        k, f, 2, random.Random(5), phases=[CrashPhase.BEFORE_COMMUNICATE]
    )
    result = run_dispersion(
        churn_dynamics()(2 * k, 5),
        RobotSet.rooted(k, 2 * k),
        crash_schedule=schedule,
        collect_records=False,
    )
    ok = result.dispersed and result.rounds <= (k - f) + f
    return (
        f"f={f}: dispersed in {result.rounds} rounds (k-f={k - f})",
        ok,
    )


def table1() -> Tuple[str, bool]:
    """The paper's Table I with measured verdicts; returns (text, all_ok)."""
    rows: List[Tuple[str, str, str, str, str, bool]] = []
    measurements = [
        ("local", "unlimited", "yes", "impossible (Thm 1)",
         _row_local_impossible),
        ("global", "unlimited", "no", "impossible (Thm 2)",
         _row_global_impossible),
        ("global", "Theta(log k)", "yes", "Theta(k) rounds (Thms 3&4)",
         _row_algorithm),
        ("global, f crashes", "Theta(log k)", "yes",
         "O(k-f) rounds (Thm 5)", _row_faulty),
    ]
    all_ok = True
    for comm, memory, knowledge, claim, measure in measurements:
        measured, ok = measure()
        all_ok &= ok
        rows.append((comm, memory, knowledge, claim, measured, ok))
    text = format_table(
        ("comm. model", "memory/robot", "1-NK", "paper result",
         "this reproduction measured", "holds"),
        rows,
        title="Table I of the paper, with measured verdicts",
    )
    return text, all_ok
