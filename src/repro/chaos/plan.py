"""Declarative, seeded fault plans.

A :class:`FaultPlan` is to chaos what a :class:`~repro.sim.spec.RunSpec`
is to a simulation run: pure data naming every fault to inject, JSON
round-trippable, and content-addressable (:func:`plan_digest`).  A plan
fully determines a chaos replay -- same plan, same campaign, same
failure stream, same results -- which is what lets the chaos suite
assert convergence as a golden test instead of eyeballing flaky logs.

Faults come in three layers, mirroring the execution stack:

* :class:`StoreFault` -- corrupts one on-disk store entry (bit flip,
  truncation, stale salt, undecodable bytes) immediately before it is
  read.  ``op_index`` counts, per store instance, the reads that find an
  existing entry: fault ``op_index=2`` hits the third stored entry the
  replay reads back.
* :class:`RunnerFault` -- makes a dispatched work unit misbehave:
  ``crash`` SIGKILLs the worker mid-unit, ``hang`` stalls it past the
  pool timeout, ``transient`` raises a retriable exception, ``slow``
  injects latency without failing (the unit still completes and must
  still produce bit-identical results).
  A runner fault is addressed one of two ways: ``unit_index`` counts
  work units globally across every ``run()`` call the chaos runner
  serves ("the Nth unit of the campaign" -- which *physical* unit that
  is depends on the pool's ``chunksize``), while ``spec_digest`` names
  the :func:`~repro.sim.spec.spec_digest` of a spec the unit contains,
  which keeps the plan meaning the same work however the units are
  batched.
* :class:`EngineFault` -- raises from a named engine phase hook
  (:class:`repro.chaos.engine_faults.PhaseFaultObserver`) while the
  ``spec_index``-th dispatched spec executes.
* :class:`FsFault` -- sabotages one filesystem operation of the
  parent-side store's write path (:class:`repro.chaos.fs.ChaosVFS`):
  ``eio``/``enospc`` raise the corresponding ``OSError`` from the
  matched op, ``torn_write`` persists a partial buffer and simulates a
  crash, ``lost_rename`` crashes with the publish rename undone, and
  ``crash`` raises :class:`~repro.chaos.fs.SimulatedCrash` at the op
  boundary.  The target is addressed by operation name (``op``), the
  Nth matching occurrence (``op_index``), and optionally the store's
  ``writer`` tag (``"parent"`` hits only the
  :class:`~repro.sim.store.CachingRunner` write path).

``seed`` drives every stochastic choice an injector makes (currently the
bit-flip position), through ``random.Random`` instances derived from the
seed and the fault's position in the plan -- never ambient state.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.sim.spec import canonical_json

PLAN_FORMAT_VERSION = 1

#: Ways a store entry can be corrupted on disk.
STORE_FAULT_KINDS: Tuple[str, ...] = (
    "bit_flip",
    "truncate",
    "stale_salt",
    "unreadable",
)

#: Ways a dispatched work unit can misbehave.
RUNNER_FAULT_KINDS: Tuple[str, ...] = ("crash", "hang", "transient", "slow")

#: Ways a filesystem operation can be sabotaged.
FS_FAULT_KINDS: Tuple[str, ...] = (
    "eio",
    "enospc",
    "torn_write",
    "lost_rename",
    "crash",
)

#: The :class:`~repro.sim.store.VirtualFS` operations an
#: :class:`FsFault` may target (``"any"`` matches every op).
FS_OPS: Tuple[str, ...] = (
    "any",
    "mkdir",
    "write_bytes",
    "fsync_file",
    "replace",
    "fsync_dir",
    "unlink",
)

#: The engine phase hooks an :class:`EngineFault` may target, in firing
#: order (see :class:`repro.sim.hooks.EngineObserver`).
ENGINE_PHASES: Tuple[str, ...] = (
    "on_run_start",
    "on_round_start",
    "on_communicate",
    "on_compute",
    "on_move",
    "on_round_end",
    "on_run_end",
)


class PlanError(ValueError):
    """A fault plan references an unknown kind or a bad value."""


@dataclass(frozen=True)
class StoreFault:
    """Corrupt the ``op_index``-th stored entry read back, by ``kind``."""

    kind: str
    op_index: int

    def __post_init__(self) -> None:
        if self.kind not in STORE_FAULT_KINDS:
            raise PlanError(
                f"unknown store fault kind {self.kind!r}; expected one of "
                f"{STORE_FAULT_KINDS}"
            )
        if self.op_index < 0:
            raise PlanError(f"op_index must be >= 0, got {self.op_index}")

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form."""
        return {"kind": self.kind, "op_index": self.op_index}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StoreFault":
        """Inverse of :meth:`to_dict`."""
        return cls(kind=str(data["kind"]), op_index=int(data["op_index"]))


@dataclass(frozen=True)
class RunnerFault:
    """Make one dispatched work unit misbehave.

    The target is addressed by exactly one of ``unit_index`` (the Nth
    unit dispatched globally -- chunksize-dependent) or ``spec_digest``
    (the unit containing the spec with that
    :func:`~repro.sim.spec.spec_digest` -- chunksize-portable; the
    failure stream then records the matched spec's global index as the
    canonical unit, so the stream is identical however units are
    batched).

    ``times`` bounds how often the fault fires (a re-dispatched unit
    would otherwise crash forever); ``seconds`` is the stall length of a
    ``hang`` fault (must exceed the chaos pool's timeout to matter) or
    the injected latency of a ``slow`` fault (must stay *under* the
    timeout, or it degenerates into a hang).
    """

    kind: str
    unit_index: Optional[int] = None
    times: int = 1
    seconds: float = 30.0
    spec_digest: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in RUNNER_FAULT_KINDS:
            raise PlanError(
                f"unknown runner fault kind {self.kind!r}; expected one of "
                f"{RUNNER_FAULT_KINDS}"
            )
        if (self.unit_index is None) == (self.spec_digest is None):
            raise PlanError(
                "a runner fault is addressed by exactly one of unit_index "
                "or spec_digest"
            )
        if self.unit_index is not None and self.unit_index < 0:
            raise PlanError(f"unit_index must be >= 0, got {self.unit_index}")
        if self.spec_digest is not None and not self.spec_digest:
            raise PlanError("spec_digest must be a non-empty digest string")
        if self.times < 1:
            raise PlanError(f"times must be >= 1, got {self.times}")
        if self.seconds <= 0:
            raise PlanError(f"seconds must be positive, got {self.seconds}")

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (only the addressing field in use is kept,
        so index-addressed plans serialize exactly as they always have).
        """
        data: Dict[str, Any] = {
            "kind": self.kind,
            "times": self.times,
            "seconds": self.seconds,
        }
        if self.unit_index is not None:
            data["unit_index"] = self.unit_index
        if self.spec_digest is not None:
            data["spec_digest"] = self.spec_digest
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunnerFault":
        """Inverse of :meth:`to_dict`."""
        unit_index = data.get("unit_index")
        digest = data.get("spec_digest")
        return cls(
            kind=str(data["kind"]),
            unit_index=int(unit_index) if unit_index is not None else None,
            times=int(data.get("times", 1)),
            seconds=float(data.get("seconds", 30.0)),
            spec_digest=str(digest) if digest is not None else None,
        )


@dataclass(frozen=True)
class EngineFault:
    """Raise from ``phase`` while the ``spec_index``-th spec executes.

    ``round_index`` delays the fault to the first firing of the phase at
    or after that round; ``times`` bounds how many executions of the
    spec the fault poisons before the retry succeeds.
    """

    phase: str
    spec_index: int
    round_index: int = 0
    times: int = 1

    def __post_init__(self) -> None:
        if self.phase not in ENGINE_PHASES:
            raise PlanError(
                f"unknown engine phase {self.phase!r}; expected one of "
                f"{ENGINE_PHASES}"
            )
        if self.spec_index < 0:
            raise PlanError(f"spec_index must be >= 0, got {self.spec_index}")
        if self.round_index < 0:
            raise PlanError(
                f"round_index must be >= 0, got {self.round_index}"
            )
        if self.times < 1:
            raise PlanError(f"times must be >= 1, got {self.times}")

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form."""
        return {
            "phase": self.phase,
            "spec_index": self.spec_index,
            "round_index": self.round_index,
            "times": self.times,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EngineFault":
        """Inverse of :meth:`to_dict`."""
        return cls(
            phase=str(data["phase"]),
            spec_index=int(data["spec_index"]),
            round_index=int(data.get("round_index", 0)),
            times=int(data.get("times", 1)),
        )


@dataclass(frozen=True)
class FsFault:
    """Sabotage the ``op_index``-th matching filesystem operation.

    ``op`` names the :class:`~repro.sim.store.VirtualFS` operation to
    match (``"any"`` matches all of them); ``writer`` restricts the
    match to ops tagged with that store address (``"parent"`` -- the
    :class:`~repro.sim.store.CachingRunner` write path, ``"worker"`` --
    pool-worker write-through; empty matches any writer).  ``op_index``
    counts the matching ops, per :class:`~repro.chaos.fs.ChaosVFS`
    instance; ``times`` makes the fault fire on that many *consecutive*
    matching ops (an ``enospc`` with ``times=3`` models a disk that
    stays full for three writes).

    ``eio``/``enospc`` are survivable (the write path degrades
    gracefully and records an ``io`` failure); ``torn_write``,
    ``lost_rename`` and ``crash`` raise
    :class:`~repro.chaos.fs.SimulatedCrash` and are meant for the
    crash-point harness, not for convergence replays.
    """

    kind: str
    op: str = "any"
    op_index: int = 0
    writer: str = ""
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FS_FAULT_KINDS:
            raise PlanError(
                f"unknown fs fault kind {self.kind!r}; expected one of "
                f"{FS_FAULT_KINDS}"
            )
        if self.op not in FS_OPS:
            raise PlanError(
                f"unknown fs op {self.op!r}; expected one of {FS_OPS}"
            )
        if self.kind == "torn_write" and self.op not in ("any", "write_bytes"):
            raise PlanError(
                f"torn_write targets write_bytes ops, not {self.op!r}"
            )
        if self.kind == "lost_rename" and self.op not in ("any", "replace"):
            raise PlanError(
                f"lost_rename targets replace ops, not {self.op!r}"
            )
        if self.op_index < 0:
            raise PlanError(f"op_index must be >= 0, got {self.op_index}")
        if self.times < 1:
            raise PlanError(f"times must be >= 1, got {self.times}")

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form."""
        return {
            "kind": self.kind,
            "op": self.op,
            "op_index": self.op_index,
            "writer": self.writer,
            "times": self.times,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FsFault":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=str(data["kind"]),
            op=str(data.get("op", "any")),
            op_index=int(data.get("op_index", 0)),
            writer=str(data.get("writer", "")),
            times=int(data.get("times", 1)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """Every fault one chaos replay injects, as pure data.

    Keep concurrent fault *windows* disjoint for a fully deterministic
    failure stream: a ``crash`` and a ``hang`` whose units are in flight
    simultaneously race over which one breaks the pool first.  Targeting
    units dispatched by different ``run()`` calls (different campaign
    sections) guarantees disjointness, since each call completes before
    the next begins.
    """

    seed: int = 0
    store: Tuple[StoreFault, ...] = ()
    runner: Tuple[RunnerFault, ...] = ()
    engine: Tuple[EngineFault, ...] = ()
    fs: Tuple[FsFault, ...] = ()
    label: str = ""

    def __post_init__(self) -> None:
        # Tolerate lists from direct construction; store tuples so plans
        # are hashable frozen data like every other spec layer.
        object.__setattr__(self, "store", tuple(self.store))
        object.__setattr__(self, "runner", tuple(self.runner))
        object.__setattr__(self, "engine", tuple(self.engine))
        object.__setattr__(self, "fs", tuple(self.fs))

    def to_dict(self) -> Dict[str, Any]:
        """Full JSON-serializable dict export of the plan.

        The ``fs`` layer is omitted when empty (like ``label``), so
        plans predating it serialize -- and hash -- exactly as they
        always have.
        """
        data: Dict[str, Any] = {
            "format_version": PLAN_FORMAT_VERSION,
            "kind": "fault_plan",
            "seed": self.seed,
            "store": [fault.to_dict() for fault in self.store],
            "runner": [fault.to_dict() for fault in self.runner],
            "engine": [fault.to_dict() for fault in self.engine],
        }
        if self.fs:
            data["fs"] = [fault.to_dict() for fault in self.fs]
        if self.label:
            data["label"] = self.label
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        version = data.get("format_version", PLAN_FORMAT_VERSION)
        if version != PLAN_FORMAT_VERSION:
            raise PlanError(
                f"unsupported fault plan format_version {version}; this "
                f"library reads version {PLAN_FORMAT_VERSION}"
            )
        if data.get("kind", "fault_plan") != "fault_plan":
            raise PlanError(f"not a fault_plan document: {data.get('kind')!r}")
        return cls(
            seed=int(data.get("seed", 0)),
            store=tuple(
                StoreFault.from_dict(item) for item in data.get("store", ())
            ),
            runner=tuple(
                RunnerFault.from_dict(item) for item in data.get("runner", ())
            ),
            engine=tuple(
                EngineFault.from_dict(item) for item in data.get("engine", ())
            ),
            fs=tuple(
                FsFault.from_dict(item) for item in data.get("fs", ())
            ),
            label=str(data.get("label", "")),
        )

    def to_json(self, indent: int = 2) -> str:
        """The plan as a JSON string (what ``examples/*.json`` hold)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Inverse of :meth:`to_json`."""
        try:
            data = json.loads(text)
        except ValueError as error:
            raise PlanError(
                f"fault plan does not parse as JSON: {error}"
            ) from error
        if not isinstance(data, dict):
            raise PlanError("fault plan document must be a JSON object")
        return cls.from_dict(data)

    @property
    def fault_count(self) -> int:
        """Total number of declared faults across all layers."""
        return (
            len(self.store)
            + len(self.runner)
            + len(self.engine)
            + len(self.fs)
        )


def plan_digest(plan: FaultPlan, *, salt: str = "faultplan1") -> str:
    """Stable content hash of a plan (display ``label`` excluded).

    Mirrors :func:`~repro.sim.spec.spec_digest`: sha256 of the salt plus
    the plan's canonical JSON, so two plans share a digest iff they
    inject the same faults from the same seed.
    """
    data = plan.to_dict()
    data.pop("label", None)
    payload = f"{salt}\n{canonical_json(data)}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _claim_keys(plan: FaultPlan) -> List[str]:
    """The worker-side claim-counter key of every claimable fault."""
    keys = [f"runner-{index}" for index in range(len(plan.runner))]
    keys += [f"engine-{index}" for index in range(len(plan.engine))]
    return keys
