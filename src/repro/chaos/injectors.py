"""Worker-side fault primitives: the intentional-misbehavior shims.

This module is the *only* place in the library allowed to kill, stall or
fail a process on purpose, and the only file exempted from the
determinism D-rules (see ``DETERMINISM_EXEMPT`` in
:mod:`repro.lint.rules`): injecting a hang requires a real sleep, and a
crash requires a real SIGKILL.  The exemption is narrow by design --
every injector here is still *scheduled* deterministically: whether a
fault fires is decided by an explicit on-disk claim counter
(:func:`claim`), never by wall clock, PID arithmetic or ambient RNG
state, so a replayed plan consumes its fault budget in exactly the same
order every time.

The claim-counter idiom (a per-fault file under the replay's working
directory, read-increment-write) is how a fault "fires N times then
stops" survives the very worker death it causes: the counter lives
outside the killed process, exactly like the sentinel files the pool's
fault-tolerance tests use.
"""

from __future__ import annotations

import os
import pathlib
import signal
import time
from typing import Union

from repro.chaos.failures import ChaosTransientError


def claim(workdir: Union[str, os.PathLike], key: str, times: int) -> bool:
    """Consume one firing of fault ``key``; False once ``times`` is spent.

    The counter file persists across worker deaths and pool rebuilds, so
    a crash fault claimed just before SIGKILL stays claimed -- the
    re-dispatched unit sees an exhausted budget and runs clean.
    """
    path = pathlib.Path(workdir) / f"{key}.count"
    try:
        count = int(path.read_text())
    except (OSError, ValueError):
        count = 0
    if count >= times:
        return False
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(str(count + 1))
    return True


def kill_current_process() -> None:
    """Die the way a crashed worker dies: SIGKILL, no cleanup, no trace."""
    os.kill(os.getpid(), signal.SIGKILL)


def hang(seconds: float) -> None:
    """Stall the worker past the pool's per-unit timeout."""
    time.sleep(seconds)


def inject_latency(seconds: float) -> None:
    """Delay the unit *without* failing it (the ``slow`` fault).

    Unlike :func:`hang` the delay is meant to stay under the pool's
    per-unit timeout: the unit still completes, which is exactly the
    point -- results must be bit-identical with or without the latency.
    """
    time.sleep(seconds)


def raise_transient(detail: str) -> None:
    """Raise the retriable injected failure with a deterministic detail."""
    raise ChaosTransientError(detail)
