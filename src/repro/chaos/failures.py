"""Structured failure records and the chaos exception types.

A :class:`FailureRecord` is one observed, tolerated fault: which work
unit it hit, on which attempt, what kind of fault it was, and a
deterministic human-readable detail.  The taxonomy mirrors the layers a
fault can originate from:

* ``crash``     -- a worker process was lost (SIGKILL, OOM) and broke
  the pool;
* ``timeout``   -- a unit exceeded its wall-clock budget (a hung
  worker);
* ``corrupt``   -- a store entry failed integrity validation and was
  quarantined;
* ``transient`` -- a dispatched task raised a retriable exception;
* ``engine``    -- an exception escaped a named engine phase hook;
* ``io``        -- a filesystem write failed (``ENOSPC``, ``EIO``) and
  the store write-back was skipped rather than aborting the run.

Records are plain frozen data with a total order, so a chaos replay's
failure stream can be sorted into a canonical sequence and compared
bit-for-bit across replays -- the golden-test property of
:func:`repro.chaos.replay.replay_plan`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

#: Every failure kind a record may carry, by injection layer.
FAILURE_KINDS: Tuple[str, ...] = (
    "crash",
    "timeout",
    "corrupt",
    "transient",
    "engine",
    "io",
)

FAILURE_STREAM_KIND = "chaos_failure_stream"
FAILURE_STREAM_FORMAT_VERSION = 1


class ChaosTransientError(RuntimeError):
    """The injected retriable task failure (runner layer)."""


class ChaosEngineFault(RuntimeError):
    """The injected engine phase-hook failure (engine layer)."""


@dataclass(frozen=True, order=True)
class FailureRecord:
    """One observed, tolerated fault event.

    Ordering is ``(unit, attempt, kind, detail)`` so a set of records
    sorts into a canonical sequence regardless of harvest order.
    """

    unit: int
    attempt: int
    kind: str
    detail: str

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ValueError(
                f"unknown failure kind {self.kind!r}; expected one of "
                f"{FAILURE_KINDS}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (what campaign ``--json`` attaches)."""
        return {
            "unit": self.unit,
            "attempt": self.attempt,
            "kind": self.kind,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FailureRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            unit=int(data["unit"]),
            attempt=int(data["attempt"]),
            kind=str(data["kind"]),
            detail=str(data["detail"]),
        )


def render_failure_stream(
    plan_digest: str, failures: Sequence[FailureRecord]
) -> str:
    """The golden on-disk form of a replay's canonical failure stream.

    Since a seeded plan reproduces its failure stream bit-for-bit, the
    stream itself is goldenable: CI serializes the replay's records and
    compares them against the checked-in snapshot, so a silent change in
    fault *handling* (a lost retry, a reclassified kind, an extra
    tolerated crash) fails the build even when results still converge.
    """
    document = {
        "kind": FAILURE_STREAM_KIND,
        "format_version": FAILURE_STREAM_FORMAT_VERSION,
        "plan_digest": plan_digest,
        "failures": [record.to_dict() for record in sorted(failures)],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def load_failure_stream(text: str) -> Tuple[str, List[FailureRecord]]:
    """``(plan_digest, records)`` from a golden stream document."""
    try:
        data = json.loads(text)
    except ValueError as error:
        raise ValueError(
            f"failure stream does not parse as JSON: {error}"
        ) from error
    if not isinstance(data, dict) or data.get("kind") != FAILURE_STREAM_KIND:
        raise ValueError(
            f"not a {FAILURE_STREAM_KIND} document: {data.get('kind')!r}"
            if isinstance(data, dict)
            else "failure stream document must be a JSON object"
        )
    version = data.get("format_version")
    if version != FAILURE_STREAM_FORMAT_VERSION:
        raise ValueError(
            f"unsupported failure stream format_version {version}; this "
            f"library reads version {FAILURE_STREAM_FORMAT_VERSION}"
        )
    records = [
        FailureRecord.from_dict(item) for item in data.get("failures", [])
    ]
    return str(data.get("plan_digest", "")), sorted(records)


def diff_failure_streams(
    actual: Sequence[FailureRecord],
    golden: Sequence[FailureRecord],
) -> List[str]:
    """Human-readable differences, one line each (empty when identical).

    Uses multiset semantics: the same record observed a different number
    of times is a difference.
    """

    def counted(records: Sequence[FailureRecord]) -> Dict[FailureRecord, int]:
        counts: Dict[FailureRecord, int] = {}
        for record in records:
            counts[record] = counts.get(record, 0) + 1
        return counts

    actual_counts = counted(actual)
    golden_counts = counted(golden)
    lines: List[str] = []
    for record in sorted(set(actual_counts) | set(golden_counts)):
        have = actual_counts.get(record, 0)
        want = golden_counts.get(record, 0)
        if have == want:
            continue
        lines.append(
            f"{'+ unexpected' if have > want else '- missing'} "
            f"(x{abs(have - want)}): unit {record.unit} attempt "
            f"{record.attempt} [{record.kind}] {record.detail}"
        )
    return lines
