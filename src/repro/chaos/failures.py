"""Structured failure records and the chaos exception types.

A :class:`FailureRecord` is one observed, tolerated fault: which work
unit it hit, on which attempt, what kind of fault it was, and a
deterministic human-readable detail.  The taxonomy mirrors the layers a
fault can originate from:

* ``crash``     -- a worker process was lost (SIGKILL, OOM) and broke
  the pool;
* ``timeout``   -- a unit exceeded its wall-clock budget (a hung
  worker);
* ``corrupt``   -- a store entry failed integrity validation and was
  quarantined;
* ``transient`` -- a dispatched task raised a retriable exception;
* ``engine``    -- an exception escaped a named engine phase hook.

Records are plain frozen data with a total order, so a chaos replay's
failure stream can be sorted into a canonical sequence and compared
bit-for-bit across replays -- the golden-test property of
:func:`repro.chaos.replay.replay_plan`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

#: Every failure kind a record may carry, by injection layer.
FAILURE_KINDS: Tuple[str, ...] = (
    "crash",
    "timeout",
    "corrupt",
    "transient",
    "engine",
)


class ChaosTransientError(RuntimeError):
    """The injected retriable task failure (runner layer)."""


class ChaosEngineFault(RuntimeError):
    """The injected engine phase-hook failure (engine layer)."""


@dataclass(frozen=True, order=True)
class FailureRecord:
    """One observed, tolerated fault event.

    Ordering is ``(unit, attempt, kind, detail)`` so a set of records
    sorts into a canonical sequence regardless of harvest order.
    """

    unit: int
    attempt: int
    kind: str
    detail: str

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ValueError(
                f"unknown failure kind {self.kind!r}; expected one of "
                f"{FAILURE_KINDS}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (what campaign ``--json`` attaches)."""
        return {
            "unit": self.unit,
            "attempt": self.attempt,
            "kind": self.kind,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FailureRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            unit=int(data["unit"]),
            attempt=int(data["attempt"]),
            kind=str(data["kind"]),
            detail=str(data["detail"]),
        )
