"""Runner-layer fault injection: a pool that sabotages its own units.

:class:`ChaosPoolRunner` extends
:class:`~repro.sim.runner.ProcessPoolRunner` two ways at once:

* **injection** -- it dispatches :func:`_chaos_run_unit` instead of the
  plain unit task.  The shim consults the plan payload shipped with each
  unit: a targeted unit first claims its fault budget (an on-disk
  counter that survives the worker's death) and then crashes, hangs or
  raises; a targeted spec executes under a
  :class:`~repro.chaos.engine_faults.PhaseFaultObserver` so the fault
  originates inside the engine's phase loop.
* **observation** -- it installs a
  :data:`~repro.sim.runner.FailureHook` that turns every fault event the
  base class tolerates into a structured
  :class:`~repro.chaos.failures.FailureRecord`.  Crash events are
  attributed only to plan-targeted units: a pool break takes innocent
  in-flight futures down with it nondeterministically, and recording
  that collateral would make the failure stream timing-dependent.

Unit and spec indices are counted *globally* across every ``run()`` call
the instance serves, so a plan written against a campaign ("crash the
9th unit") keeps meaning the same unit regardless of how the campaign's
sections batch their grids.  Digest-addressed runner faults
(``spec_digest``) go one step further: the target unit is whichever unit
*contains* the named spec, and the failure stream records the matched
spec's global index as the canonical unit -- so the same plan produces
the same stream under any ``chunksize``.
"""

from __future__ import annotations

import math
import os
import pathlib
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.chaos.engine_faults import PhaseFaultObserver
from repro.chaos.failures import FailureRecord
from repro.chaos.injectors import (
    claim,
    hang,
    inject_latency,
    kill_current_process,
    raise_transient,
)
from repro.chaos.plan import FaultPlan
from repro.sim.metrics import RunResult
from repro.sim.runner import ProcessPoolRunner
from repro.sim.spec import RunSpec, build_engine, execute, spec_digest
from repro.sim.store import RunStore, execute_through_store


def _chaos_run_unit(
    specs: List[RunSpec],
    global_indices: List[int],
    store_root: Optional[str],
    store_salt: Optional[str],
    payload: Dict[str, Any],
    workdir: str,
) -> List[RunResult]:
    """Worker-side task: misbehave per the plan, then execute the unit.

    Module-level and pure of process state (fault budgets live in
    ``workdir``), hence picklable like the task it shadows.
    """
    for fault in payload["unit_faults"]:
        if claim(workdir, fault["key"], int(fault["times"])):
            kind = fault["kind"]
            if kind == "crash":
                kill_current_process()
            elif kind == "hang":
                hang(float(fault["seconds"]))
            elif kind == "slow":
                # Latency only: the unit proceeds to execute normally
                # below, and its results must be bit-identical.
                inject_latency(float(fault["seconds"]))
            else:
                raise_transient(
                    f"injected transient failure ({fault['key']})"
                )
    engine_faults = {
        int(index): fault
        for index, fault in payload["engine_faults"].items()
    }
    results: List[RunResult] = []
    for spec, global_index in zip(specs, global_indices):
        fault = engine_faults.get(global_index)
        if fault is not None and claim(
            workdir, fault["key"], int(fault["times"])
        ):
            observer = PhaseFaultObserver(
                fault["phase"],
                int(fault["round_index"]),
                detail=(
                    f"injected engine fault at {fault['phase']} "
                    f"({fault['key']})"
                ),
            )
            # The observer raises out of the phase loop; if the run ends
            # before the phase ever fires, the claim is spent and the
            # spec falls through to a clean execution below.
            build_engine(spec, observers=[observer]).run()
        if store_root is None:
            results.append(execute(spec))
        else:
            results.append(
                execute_through_store(spec, store_root, store_salt or "")
            )
    return results


class ChaosPoolRunner(ProcessPoolRunner):
    """A :class:`ProcessPoolRunner` that injects a plan's runner faults.

    ``workdir`` holds the plan's fault-budget counters; use a fresh
    directory per replay, or firings from an earlier replay leak into
    the next.  The retry/restart budgets default high enough to absorb
    every fault the plan declares (each fault costs at most ``times``
    attempts or restarts), so a well-formed plan can never exhaust them.
    """

    name = "chaos_pool"

    def __init__(
        self,
        plan: FaultPlan,
        workdir: Union[str, os.PathLike],
        *,
        max_workers: int = 2,
        chunksize: int = 1,
        timeout: float = 5.0,
        retries: Optional[int] = None,
        retry_backoff: float = 0.01,
        max_restarts: Optional[int] = None,
        store: Optional[RunStore] = None,
    ) -> None:
        fault_attempts = sum(
            fault.times for fault in plan.runner if fault.kind == "transient"
        )
        fault_attempts += sum(fault.times for fault in plan.engine)
        fault_attempts += sum(
            fault.times for fault in plan.runner if fault.kind == "hang"
        )
        breakages = sum(
            fault.times
            for fault in plan.runner
            if fault.kind in ("crash", "hang")
        )
        if retries is None:
            retries = max(3, fault_attempts + 1)
        if max_restarts is None:
            max_restarts = breakages + 3
        super().__init__(
            max_workers,
            chunksize=chunksize,
            timeout=timeout,
            retries=retries,
            retry_backoff=retry_backoff,
            max_restarts=max_restarts,
            store=store,
            failure_hook=self._on_fault_event,
        )
        self.plan = plan
        self.workdir = pathlib.Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.failures: List[FailureRecord] = []
        self._unit_base = 0
        self._spec_base = 0
        self._run_unit_base = 0
        self._run_spec_base = 0
        self._crash_units = {
            fault.unit_index
            for fault in plan.runner
            if fault.kind == "crash" and fault.unit_index is not None
        }
        self._crash_digests = {
            fault.spec_digest
            for fault in plan.runner
            if fault.kind == "crash" and fault.spec_digest is not None
        }
        self._unit_faults: Dict[int, List[Dict[str, Any]]] = {}
        self._digest_faults: Dict[str, List[Dict[str, Any]]] = {}
        self._run_digests: List[str] = []
        for index, fault in enumerate(plan.runner):
            payload = {
                "key": f"runner-{index}",
                "kind": fault.kind,
                "times": fault.times,
                "seconds": fault.seconds,
            }
            if fault.unit_index is not None:
                self._unit_faults.setdefault(fault.unit_index, []).append(
                    payload
                )
            else:
                assert fault.spec_digest is not None
                self._digest_faults.setdefault(fault.spec_digest, []).append(
                    payload
                )
        self._engine_faults: Dict[int, Dict[str, Any]] = {}
        for index, fault in enumerate(plan.engine):
            self._engine_faults[fault.spec_index] = {
                "key": f"engine-{index}",
                "phase": fault.phase,
                "round_index": fault.round_index,
                "times": fault.times,
            }

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Execute specs, advancing the global unit/spec counters."""
        self._run_unit_base = self._unit_base
        self._run_spec_base = self._spec_base
        self._unit_base += math.ceil(len(specs) / self.chunksize)
        self._spec_base += len(specs)
        # Digest addressing needs this run's spec digests, both to match
        # units at submit time and to canonicalize fault attribution.
        self._run_digests = (
            [spec_digest(spec) for spec in specs]
            if self._digest_faults
            else []
        )
        return super().run(specs)

    def _global_unit(self, unit: List[int]) -> int:
        return self._run_unit_base + unit[0] // self.chunksize

    def _digest_match(self, unit: List[int]) -> Optional[int]:
        """The local index of the first digest-targeted spec in ``unit``."""
        for index in unit:
            if self._run_digests[index] in self._digest_faults:
                return index
        return None

    def _submit(
        self,
        pool: ProcessPoolExecutor,
        specs: Sequence[RunSpec],
        unit: List[int],
    ) -> Future:
        global_unit = self._global_unit(unit)
        global_indices = [self._run_spec_base + index for index in unit]
        unit_faults = list(self._unit_faults.get(global_unit, []))
        if self._run_digests:
            for index in unit:
                unit_faults.extend(
                    self._digest_faults.get(self._run_digests[index], [])
                )
        payload: Dict[str, Any] = {
            "unit_faults": unit_faults,
            "engine_faults": {
                str(index): self._engine_faults[index]
                for index in global_indices
                if index in self._engine_faults
            },
        }
        store_root = str(self.store.root) if self.store is not None else None
        store_salt = self.store.salt if self.store is not None else None
        return pool.submit(
            _chaos_run_unit,
            [specs[i] for i in unit],
            global_indices,
            store_root,
            store_salt,
            payload,
            str(self.workdir),
        )

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def _on_fault_event(
        self, kind: str, unit: List[int], attempt: int, detail: str
    ) -> None:
        global_unit = self._global_unit(unit)
        # Digest-addressed faults record the matched spec's global index
        # as the canonical unit: it names the same work under any
        # chunksize, where the physical unit number does not.
        matched = self._digest_match(unit) if self._run_digests else None
        canonical = (
            self._run_spec_base + matched if matched is not None
            else global_unit
        )
        if kind == "timeout":
            record_kind = "timeout"
        elif kind == "exception":
            if "ChaosEngineFault" in detail:
                record_kind = "engine"
            else:
                record_kind = "transient"
        else:  # crash
            digest = (
                self._run_digests[matched] if matched is not None else None
            )
            if (
                global_unit not in self._crash_units
                and digest not in self._crash_digests
            ):
                # Collateral: a break takes innocent in-flight futures
                # down nondeterministically; only targeted units are
                # part of the canonical failure stream.
                return
            record_kind = "crash"
        self.failures.append(
            FailureRecord(
                unit=canonical,
                attempt=attempt,
                kind=record_kind,
                detail=detail,
            )
        )

    @property
    def failure_records(self) -> List[FailureRecord]:
        """The tolerated-fault records, in canonical order."""
        return sorted(self.failures)
