"""Filesystem fault injection: a VirtualFS that sabotages store ops.

:class:`ChaosVFS` substitutes the :class:`~repro.sim.store.VirtualFS` a
:class:`~repro.sim.store.RunStore` routes every mutation through, which
turns the store's write path into an enumerable, addressable *op
stream*: op ``k`` is always the same operation on the same path for the
same workload, so a seeded :class:`~repro.chaos.plan.FsFault` -- or the
crash-point harness's ``crash_at=k`` -- names one exact syscall
boundary, deterministically.

Two injection styles share the instance:

* **plan faults** -- each :class:`~repro.chaos.plan.FsFault` matched
  against ``(op name, writer tag)`` fires on its ``op_index``-th
  matching op (and the ``times - 1`` matches after it): ``eio`` /
  ``enospc`` raise the corresponding ``OSError`` *instead of*
  performing the op (survivable -- the write path degrades gracefully),
  ``torn_write`` persists a seeded partial prefix of the buffer and
  raises :class:`SimulatedCrash`, ``lost_rename`` crashes with the
  publish rename never applied, and ``crash`` crashes at the boundary
  before the op takes effect.
* **crash-points** -- ``crash_at=k`` raises :class:`SimulatedCrash`
  immediately before op ``k`` executes, which is how the replay
  harness's crash matrix visits *every* boundary of a workload in turn.

Beyond injecting, the shim *models the page cache*: writes are volatile
until ``fsync_file``, renames until ``fsync_dir`` of the destination
directory.  After a simulated crash, :meth:`ChaosVFS.apply_crash_image`
rewrites the surviving directory tree into one of the on-disk states a
real power loss could have left (ALICE/CrashMonkey-style):

* ``"flush"``      -- everything executed was persisted (best case);
* ``"lose-volatile"`` -- un-fsynced renames are rolled back and
  un-fsynced writes torn to a seeded prefix (ext3/4 ordered-mode loss);
* ``"torn-publish"``  -- renames persist but un-fsynced *data* is torn
  at the destination (metadata-before-data reordering -- the classic
  torn published entry ``durability="strict"`` exists to rule out).

Under ``durability="strict"`` the store fsyncs at both boundaries, so
the volatile set is (nearly) always empty and every image collapses to
``"flush"``; under ``"fast"`` the images are genuinely adversarial and
recovery (checksum validation, quarantine, recompute, staging sweep)
must absorb them -- the property the crash matrix proves point by
point.
"""

from __future__ import annotations

import errno
import os
import pathlib
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.chaos.plan import FsFault
from repro.sim.store import VirtualFS

#: The crash-image policies :meth:`ChaosVFS.apply_crash_image` can
#: materialize, mildest first.
CRASH_IMAGE_MODES: Tuple[str, ...] = (
    "flush",
    "lose-volatile",
    "torn-publish",
)


class SimulatedCrash(BaseException):
    """The process 'died' at a filesystem operation boundary.

    Derives from ``BaseException`` so no library-level ``except
    Exception`` handler can absorb it -- like a real SIGKILL, it
    propagates to whoever is simulating the process boundary.  The
    ``simulated_crash`` marker tells cleanup code (the store's staged
    write) to leave crash debris in place instead of tidying it.
    """

    simulated_crash = True


@dataclass(frozen=True)
class VfsOp:
    """One recorded filesystem operation of the op stream."""

    index: int
    name: str
    path: str
    writer: str


class ChaosVFS(VirtualFS):
    """A :class:`~repro.sim.store.VirtualFS` with planned sabotage.

    ``faults`` are the plan's :class:`~repro.chaos.plan.FsFault`
    entries; ``seed`` drives every stochastic choice (torn-write
    lengths, crash-image tear points) through derived
    ``random.Random`` instances, never ambient state.  ``crash_at``
    arms the crash-point mode: :class:`SimulatedCrash` is raised
    immediately before the op with that stream index executes.

    One instance should serve one simulated process: the op counter,
    volatile-state model and fault budgets all reset with the instance.
    """

    def __init__(
        self,
        faults: Sequence[FsFault] = (),
        *,
        seed: int = 0,
        crash_at: Optional[int] = None,
    ) -> None:
        self.faults = tuple(faults)
        self.seed = seed
        self.crash_at = crash_at
        self.ops: List[VfsOp] = []
        #: Ops that matched each fault so far (fault index -> count).
        self._matches: Dict[int, int] = {}
        #: Data written but not yet fsynced: path -> whether a
        #: fsync_file has settled it (False = volatile).
        self._unsynced_data: Dict[str, bool] = {}
        #: Renames not yet settled by a fsync_dir of their destination
        #: directory, oldest first.
        self._volatile_renames: List[Dict[str, Any]] = []

    @property
    def op_count(self) -> int:
        """How many ops have entered the stream so far."""
        return len(self.ops)

    # ------------------------------------------------------------------
    # Fault matching
    # ------------------------------------------------------------------

    def _enter(self, name: str, path: pathlib.Path, writer: str) -> None:
        """Record the op, then fire any fault addressed to it."""
        index = len(self.ops)
        self.ops.append(VfsOp(index, name, str(path), writer))
        if self.crash_at is not None and index == self.crash_at:
            raise SimulatedCrash(
                f"crash-point {index}: before {name} {path}"
            )
        for fault_index, fault in enumerate(self.faults):
            if fault.op != "any" and fault.op != name:
                continue
            if fault.writer and fault.writer != writer:
                continue
            match = self._matches.get(fault_index, 0)
            self._matches[fault_index] = match + 1
            if not fault.op_index <= match < fault.op_index + fault.times:
                continue
            firing = match - fault.op_index
            if fault.kind == "eio":
                raise OSError(
                    errno.EIO, f"injected EIO (fs fault {fault_index})"
                )
            if fault.kind == "enospc":
                raise OSError(
                    errno.ENOSPC,
                    f"injected ENOSPC (fs fault {fault_index})",
                )
            if fault.kind == "torn_write" and name == "write_bytes":
                raise _TornWrite(fault_index, firing)
            if fault.kind == "lost_rename" and name == "replace":
                raise SimulatedCrash(
                    f"injected lost rename at op {index} "
                    f"(fs fault {fault_index})"
                )
            if fault.kind == "crash":
                raise SimulatedCrash(
                    f"injected crash at op {index} "
                    f"(fs fault {fault_index})"
                )

    def _rng(self, *scope: Union[int, str]) -> random.Random:
        parts = ":".join(str(part) for part in scope)
        return random.Random(f"chaosfs:{self.seed}:{parts}")

    # ------------------------------------------------------------------
    # The op surface
    # ------------------------------------------------------------------

    def mkdir(self, path: pathlib.Path, *, writer: str = "") -> None:
        """Create ``path``; a crash-point / fault boundary."""
        self._enter("mkdir", path, writer)
        super().mkdir(path, writer=writer)

    def write_bytes(
        self, path: pathlib.Path, data: bytes, *, writer: str = ""
    ) -> None:
        """Write ``data``; volatile until :meth:`fsync_file`."""
        try:
            self._enter("write_bytes", path, writer)
        except _TornWrite as torn:
            # Persist a seeded partial prefix -- the bytes a dying
            # process actually got out -- then crash.
            rng = self._rng("torn", torn.fault_index, torn.firing)
            cut = rng.randrange(0, len(data)) if data else 0
            super().write_bytes(path, data[:cut], writer=writer)
            raise SimulatedCrash(
                f"injected torn write ({cut}/{len(data)} bytes) at {path}"
            ) from None
        super().write_bytes(path, data, writer=writer)
        self._unsynced_data[str(path)] = False

    def fsync_file(self, path: pathlib.Path, *, writer: str = "") -> None:
        """Settle ``path``'s data against crash images."""
        self._enter("fsync_file", path, writer)
        super().fsync_file(path, writer=writer)
        self._unsynced_data.pop(str(path), None)

    def replace(
        self, src: pathlib.Path, dst: pathlib.Path, *, writer: str = ""
    ) -> None:
        """Publish ``src`` at ``dst``; volatile until :meth:`fsync_dir`."""
        self._enter("replace", dst, writer)
        pre: Optional[bytes]
        try:
            pre = dst.read_bytes()
        except OSError:
            pre = None
        data_synced = str(src) not in self._unsynced_data
        super().replace(src, dst, writer=writer)
        self._unsynced_data.pop(str(src), None)
        if not data_synced:
            self._unsynced_data[str(dst)] = False
        self._volatile_renames.append(
            {
                "src": str(src),
                "dst": str(dst),
                "pre": pre,
                "data_synced": data_synced,
            }
        )

    def fsync_dir(self, path: pathlib.Path, *, writer: str = "") -> None:
        """Settle renames under ``path`` against crash images."""
        self._enter("fsync_dir", path, writer)
        super().fsync_dir(path, writer=writer)
        settled = str(path)
        kept = []
        for record in self._volatile_renames:
            if str(pathlib.PurePath(record["dst"]).parent) == settled:
                continue
            kept.append(record)
        self._volatile_renames = kept

    def unlink(self, path: pathlib.Path, *, writer: str = "") -> None:
        """Remove ``path``; a crash-point / fault boundary."""
        self._enter("unlink", path, writer)
        super().unlink(path, writer=writer)
        self._unsynced_data.pop(str(path), None)
        self._volatile_renames = [
            record
            for record in self._volatile_renames
            if record["dst"] != str(path)
        ]

    # ------------------------------------------------------------------
    # Crash images
    # ------------------------------------------------------------------

    def apply_crash_image(self, mode: str) -> bool:
        """Rewrite the tree into the post-crash state ``mode`` describes.

        Call after catching :class:`SimulatedCrash` and before
        'restarting' against the surviving directory tree.  Returns
        whether anything on disk changed -- ``False`` means the image
        is indistinguishable from ``"flush"`` (everything relevant had
        been fsynced), so re-asserting recovery for it is redundant.
        """
        if mode not in CRASH_IMAGE_MODES:
            raise ValueError(
                f"unknown crash image mode {mode!r}; expected one of "
                f"{CRASH_IMAGE_MODES}"
            )
        if mode == "flush":
            return False
        changed = False
        rng = self._rng("image", mode, len(self.ops))
        if mode == "lose-volatile":
            # Undo un-fsynced renames newest-first: the destination
            # regains its pre-image and the staged bytes reappear at the
            # source -- torn, when the data itself was never synced.
            for record in reversed(self._volatile_renames):
                dst = pathlib.Path(record["dst"])
                src = pathlib.Path(record["src"])
                try:
                    moved = dst.read_bytes()
                except OSError:
                    continue
                self._unsynced_data.pop(record["dst"], None)
                if record["pre"] is None:
                    dst.unlink(missing_ok=True)
                else:
                    dst.write_bytes(record["pre"])
                if not record["data_synced"] and moved:
                    moved = moved[: rng.randrange(0, len(moved))]
                src.write_bytes(moved)
                changed = True
            self._volatile_renames = []
        # Both adversarial images tear whatever un-fsynced data remains
        # in place -- staged files a crash caught mid-write under
        # lose-volatile, published-but-unsynced entries under
        # torn-publish (metadata reached disk before the data).
        for path_str in sorted(self._unsynced_data):
            path = pathlib.Path(path_str)
            try:
                data = path.read_bytes()
            except OSError:
                continue
            if not data:
                continue
            path.write_bytes(data[: rng.randrange(0, len(data))])
            changed = True
        self._unsynced_data = {}
        return changed


class _TornWrite(Exception):
    """Internal signal from fault matching to the write op (never
    escapes :meth:`ChaosVFS.write_bytes`)."""

    def __init__(self, fault_index: int, firing: int) -> None:
        super().__init__(fault_index, firing)
        self.fault_index = fault_index
        self.firing = firing


def chaos_vfs_for_plan(plan: Any) -> Optional[ChaosVFS]:
    """The :class:`ChaosVFS` a plan's ``fs`` layer calls for, if any."""
    faults = getattr(plan, "fs", ())
    if not faults:
        return None
    return ChaosVFS(faults, seed=int(getattr(plan, "seed", 0)))
