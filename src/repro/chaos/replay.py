"""Replay a fault plan against a workload and check convergence.

:func:`replay_plan` is the chaos harness's top half, what the ``repro
chaos`` CLI drives.  It executes the same workload three times:

1. **baseline** -- serially, no store, no faults: the ground truth
   fingerprint;
2. **cold chaos** -- through the full chaos stack (recording wrapper ->
   caching over a :class:`~repro.chaos.store.FaultyStore` -> a
   :class:`~repro.chaos.runner.ChaosPoolRunner` whose workers write
   through a clean store at the same root).  Runner and engine faults
   fire here, while the store populates;
3. **warm chaos** -- the same stack again.  Reads now find stored
   entries, so the plan's store faults bite: corrupted entries must be
   detected, quarantined and recomputed.

Every pass's results are folded into a sha256 *fingerprint* (canonical
JSON of each :class:`~repro.sim.metrics.RunResult`, in execution order),
so "the chaos run converged" is a bit-identity check, not a statistical
one: :attr:`ChaosReport.converged` holds iff both chaos fingerprints
equal the baseline.  The tolerated faults come back as the canonically
sorted :class:`~repro.chaos.failures.FailureRecord` stream, which a
seeded plan reproduces identically on every replay -- the golden-test
property ``tests/test_chaos.py`` pins.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.chaos.failures import FailureRecord
from repro.chaos.plan import FaultPlan, plan_digest
from repro.chaos.runner import ChaosPoolRunner
from repro.chaos.store import FaultyStore
from repro.sim.metrics import RunResult
from repro.sim.runner import Runner, SerialRunner
from repro.sim.spec import RunSpec, canonical_json
from repro.sim.store import CachingRunner, RunStore
from repro.sim.traceio import run_result_to_dict


class RecordingRunner(Runner):
    """Wraps any runner, folding every result into a sha256 fingerprint.

    The fingerprint is over the canonical JSON of each result in
    execution order, so two runs fingerprint alike iff they produced
    bit-identical results in the same order -- across backends, stores
    and fault plans.
    """

    name = "recording"

    def __init__(self, inner: Runner) -> None:
        self.inner = inner
        self.count = 0
        self._hash = hashlib.sha256()
        self.name = f"recording[{inner.name}]"

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Delegate to the wrapped backend, hashing the results."""
        results = self.inner.run(specs)
        for result in results:
            self._hash.update(
                canonical_json(run_result_to_dict(result)).encode("utf-8")
            )
            self._hash.update(b"\n")
        self.count += len(results)
        return results

    @property
    def fingerprint(self) -> str:
        """The hex digest over every result recorded so far."""
        return self._hash.hexdigest()

    def close(self) -> None:
        """Close the wrapped backend."""
        self.inner.close()


@dataclass
class ChaosReport:
    """The outcome of one :func:`replay_plan` invocation."""

    plan: Dict[str, Any]
    plan_digest: str
    workload: str
    runs: int
    baseline_fingerprint: str
    cold_fingerprint: str
    warm_fingerprint: str
    corrupt_entries: int
    campaign_passed: bool
    failures: List[FailureRecord] = field(default_factory=list)

    @property
    def converged(self) -> bool:
        """Whether both chaos passes reproduced the baseline bits."""
        return (
            self.cold_fingerprint == self.baseline_fingerprint
            and self.warm_fingerprint == self.baseline_fingerprint
        )

    @property
    def ok(self) -> bool:
        """Converged, and the workload's own verdicts still pass."""
        return self.converged and self.campaign_passed

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable form (what ``repro chaos --json`` writes)."""
        return {
            "kind": "chaos_report",
            "plan": self.plan,
            "plan_digest": self.plan_digest,
            "workload": self.workload,
            "runs": self.runs,
            "baseline_fingerprint": self.baseline_fingerprint,
            "cold_fingerprint": self.cold_fingerprint,
            "warm_fingerprint": self.warm_fingerprint,
            "corrupt_entries": self.corrupt_entries,
            "campaign_passed": self.campaign_passed,
            "converged": self.converged,
            "ok": self.ok,
            "failures": [record.to_dict() for record in self.failures],
        }

    def render(self) -> str:
        """A human-readable verdict block."""
        verdict = "CONVERGED" if self.converged else "DIVERGED"
        lines = [
            f"chaos replay [{verdict}] plan {self.plan_digest[:12]} "
            f"({self.workload}, {self.runs} runs/pass)",
            f"  faults tolerated: {len(self.failures)} "
            f"({self._kind_summary()})",
            f"  corrupt entries detected + quarantined: "
            f"{self.corrupt_entries}",
            f"  workload verdicts: "
            f"{'PASS' if self.campaign_passed else 'FAIL'}",
            f"  baseline {self.baseline_fingerprint[:16]} / "
            f"cold {self.cold_fingerprint[:16]} / "
            f"warm {self.warm_fingerprint[:16]}",
        ]
        for record in self.failures:
            lines.append(
                f"  unit {record.unit} attempt {record.attempt} "
                f"[{record.kind}] {record.detail}"
            )
        return "\n".join(lines)

    def _kind_summary(self) -> str:
        counts: Dict[str, int] = {}
        for record in self.failures:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        if not counts:
            return "none"
        return ", ".join(
            f"{kind}={count}" for kind, count in sorted(counts.items())
        )


def _run_workload(
    runner: Runner,
    scale: str,
    specs: Optional[Sequence[RunSpec]],
) -> bool:
    """Run the campaign (or an explicit spec grid) through ``runner``."""
    if specs is not None:
        runner.run(list(specs))
        return True
    from repro.analysis.campaign import run_campaign

    return run_campaign(scale, runner=runner).all_passed


def replay_plan(
    plan: FaultPlan,
    root: Union[str, os.PathLike],
    *,
    scale: str = "quick",
    specs: Optional[Sequence[RunSpec]] = None,
    jobs: int = 2,
    timeout: float = 5.0,
    baseline_fingerprint: Optional[str] = None,
) -> ChaosReport:
    """Replay ``plan`` against a workload; see the module docstring.

    ``root`` must be a fresh directory per replay: it receives the chaos
    run's store (``<root>/store``) and the plan's fault-budget counters
    (``<root>/claims``), and a reused root would replay against spent
    budgets.  The workload is the reproduction campaign at ``scale``,
    or an explicit ``specs`` grid.  ``baseline_fingerprint`` skips the
    baseline pass when the caller already knows it (e.g. the second
    replay of a golden pair).
    """
    root = pathlib.Path(root)
    store_root = root / "store"
    workdir = root / "claims"

    workload = f"campaign:{scale}" if specs is None else f"grid:{len(specs)}"
    if baseline_fingerprint is None:
        baseline = RecordingRunner(SerialRunner())
        _run_workload(baseline, scale, specs)
        baseline_fingerprint = baseline.fingerprint

    faulty = FaultyStore(store_root, plan)
    pool = ChaosPoolRunner(
        plan,
        workdir,
        max_workers=jobs,
        timeout=timeout,
        store=RunStore(store_root, salt=faulty.salt),
    )
    chaos_stack = CachingRunner(pool, faulty)
    try:
        cold = RecordingRunner(chaos_stack)
        cold_passed = _run_workload(cold, scale, specs)
        warm = RecordingRunner(chaos_stack)
        warm_passed = _run_workload(warm, scale, specs)
    finally:
        pool.close()

    return ChaosReport(
        plan=plan.to_dict(),
        plan_digest=plan_digest(plan),
        workload=workload,
        runs=cold.count,
        baseline_fingerprint=baseline_fingerprint,
        cold_fingerprint=cold.fingerprint,
        warm_fingerprint=warm.fingerprint,
        corrupt_entries=faulty.corrupt,
        campaign_passed=cold_passed and warm_passed,
        failures=sorted(list(pool.failures) + list(faulty.failures)),
    )
