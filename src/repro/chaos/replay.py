"""Replay a fault plan against a workload and check convergence.

:func:`replay_plan` is the chaos harness's top half, what the ``repro
chaos`` CLI drives.  It executes the same workload three times:

1. **baseline** -- serially, no store, no faults: the ground truth
   fingerprint;
2. **cold chaos** -- through the full chaos stack (recording wrapper ->
   caching over a :class:`~repro.chaos.store.FaultyStore` -> a
   :class:`~repro.chaos.runner.ChaosPoolRunner` whose workers write
   through a clean store at the same root).  Runner and engine faults
   fire here, while the store populates;
3. **warm chaos** -- the same stack again.  Reads now find stored
   entries, so the plan's store faults bite: corrupted entries must be
   detected, quarantined and recomputed.

Every pass's results are folded into a sha256 *fingerprint* (canonical
JSON of each :class:`~repro.sim.metrics.RunResult`, in execution order),
so "the chaos run converged" is a bit-identity check, not a statistical
one: :attr:`ChaosReport.converged` holds iff both chaos fingerprints
equal the baseline.  The tolerated faults come back as the canonically
sorted :class:`~repro.chaos.failures.FailureRecord` stream, which a
seeded plan reproduces identically on every replay -- the golden-test
property ``tests/test_chaos.py`` pins.

:func:`run_crash_matrix` is the harness's *crash-consistency* half, what
``repro chaos --crash-matrix`` drives.  Instead of replaying one plan,
it enumerates **every** filesystem-operation boundary of three store
workloads -- cold write, cache-miss recompute, and two-phase gc
compaction (with a concurrent writer racing the eviction) -- and, at
each boundary, simulates a crash (:class:`~repro.chaos.fs.SimulatedCrash`),
materializes each reachable post-crash disk image
(:data:`~repro.chaos.fs.CRASH_IMAGE_MODES`), restarts against the
surviving tree, and asserts the recovery invariants:

1. **no torn read** -- ``get`` never returns a result that differs from
   the fault-free baseline (torn/corrupt entries are misses, not lies);
2. **verify classifies all damage** -- any surviving entry that the
   read path would reject is flagged by :meth:`RunStore.verify`;
3. **staging swept** -- a restart one process-lifetime later holds no
   orphaned ``tmp/`` debris;
4. **warm convergence** -- a warm re-run through the recovered store is
   bit-identical to the baseline, and the store verifies clean after.

The matrix runs under both ``durability`` modes: ``"strict"`` because
its fsync points must make every adversarial image collapse to a clean
one, ``"fast"`` because recovery -- not durability -- is its guarantee.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.chaos.failures import FailureRecord
from repro.chaos.fs import CRASH_IMAGE_MODES, ChaosVFS, SimulatedCrash
from repro.chaos.plan import FaultPlan, plan_digest
from repro.chaos.runner import ChaosPoolRunner
from repro.chaos.store import FaultyStore, corrupt_entry_file
from repro.sim.metrics import RunResult
from repro.sim.runner import Runner, SerialRunner
from repro.sim.spec import RunSpec, canonical_json, make_spec
from repro.sim.store import (
    STALE_TMP_GRACE_SECONDS,
    CachingRunner,
    RunStore,
)
from repro.sim.traceio import run_result_to_dict


class RecordingRunner(Runner):
    """Wraps any runner, folding every result into a sha256 fingerprint.

    The fingerprint is over the canonical JSON of each result in
    execution order, so two runs fingerprint alike iff they produced
    bit-identical results in the same order -- across backends, stores
    and fault plans.
    """

    name = "recording"

    def __init__(self, inner: Runner) -> None:
        self.inner = inner
        self.count = 0
        self._hash = hashlib.sha256()
        self.name = f"recording[{inner.name}]"

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Delegate to the wrapped backend, hashing the results."""
        results = self.inner.run(specs)
        for result in results:
            self._hash.update(
                canonical_json(run_result_to_dict(result)).encode("utf-8")
            )
            self._hash.update(b"\n")
        self.count += len(results)
        return results

    @property
    def fingerprint(self) -> str:
        """The hex digest over every result recorded so far."""
        return self._hash.hexdigest()

    def close(self) -> None:
        """Close the wrapped backend."""
        self.inner.close()


@dataclass
class ChaosReport:
    """The outcome of one :func:`replay_plan` invocation."""

    plan: Dict[str, Any]
    plan_digest: str
    workload: str
    runs: int
    baseline_fingerprint: str
    cold_fingerprint: str
    warm_fingerprint: str
    corrupt_entries: int
    campaign_passed: bool
    failures: List[FailureRecord] = field(default_factory=list)

    @property
    def converged(self) -> bool:
        """Whether both chaos passes reproduced the baseline bits."""
        return (
            self.cold_fingerprint == self.baseline_fingerprint
            and self.warm_fingerprint == self.baseline_fingerprint
        )

    @property
    def ok(self) -> bool:
        """Converged, and the workload's own verdicts still pass."""
        return self.converged and self.campaign_passed

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable form (what ``repro chaos --json`` writes)."""
        return {
            "kind": "chaos_report",
            "plan": self.plan,
            "plan_digest": self.plan_digest,
            "workload": self.workload,
            "runs": self.runs,
            "baseline_fingerprint": self.baseline_fingerprint,
            "cold_fingerprint": self.cold_fingerprint,
            "warm_fingerprint": self.warm_fingerprint,
            "corrupt_entries": self.corrupt_entries,
            "campaign_passed": self.campaign_passed,
            "converged": self.converged,
            "ok": self.ok,
            "failures": [record.to_dict() for record in self.failures],
        }

    def render(self) -> str:
        """A human-readable verdict block."""
        verdict = "CONVERGED" if self.converged else "DIVERGED"
        lines = [
            f"chaos replay [{verdict}] plan {self.plan_digest[:12]} "
            f"({self.workload}, {self.runs} runs/pass)",
            f"  faults tolerated: {len(self.failures)} "
            f"({self._kind_summary()})",
            f"  corrupt entries detected + quarantined: "
            f"{self.corrupt_entries}",
            f"  workload verdicts: "
            f"{'PASS' if self.campaign_passed else 'FAIL'}",
            f"  baseline {self.baseline_fingerprint[:16]} / "
            f"cold {self.cold_fingerprint[:16]} / "
            f"warm {self.warm_fingerprint[:16]}",
        ]
        for record in self.failures:
            lines.append(
                f"  unit {record.unit} attempt {record.attempt} "
                f"[{record.kind}] {record.detail}"
            )
        return "\n".join(lines)

    def _kind_summary(self) -> str:
        counts: Dict[str, int] = {}
        for record in self.failures:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        if not counts:
            return "none"
        return ", ".join(
            f"{kind}={count}" for kind, count in sorted(counts.items())
        )


def _run_workload(
    runner: Runner,
    scale: str,
    specs: Optional[Sequence[RunSpec]],
) -> bool:
    """Run the campaign (or an explicit spec grid) through ``runner``."""
    if specs is not None:
        runner.run(list(specs))
        return True
    from repro.analysis.campaign import run_campaign

    return run_campaign(scale, runner=runner).all_passed


def replay_plan(
    plan: FaultPlan,
    root: Union[str, os.PathLike],
    *,
    scale: str = "quick",
    specs: Optional[Sequence[RunSpec]] = None,
    jobs: int = 2,
    timeout: float = 5.0,
    baseline_fingerprint: Optional[str] = None,
) -> ChaosReport:
    """Replay ``plan`` against a workload; see the module docstring.

    ``root`` must be a fresh directory per replay: it receives the chaos
    run's store (``<root>/store``) and the plan's fault-budget counters
    (``<root>/claims``), and a reused root would replay against spent
    budgets.  The workload is the reproduction campaign at ``scale``,
    or an explicit ``specs`` grid.  ``baseline_fingerprint`` skips the
    baseline pass when the caller already knows it (e.g. the second
    replay of a golden pair).
    """
    root = pathlib.Path(root)
    store_root = root / "store"
    workdir = root / "claims"

    workload = f"campaign:{scale}" if specs is None else f"grid:{len(specs)}"
    if baseline_fingerprint is None:
        baseline = RecordingRunner(SerialRunner())
        _run_workload(baseline, scale, specs)
        baseline_fingerprint = baseline.fingerprint

    faulty = FaultyStore(store_root, plan)
    # Plans with an fs layer disable worker write-through, so every
    # store write funnels through the parent-side CachingRunner path --
    # the op stream the plan's FsFaults address.
    pool = ChaosPoolRunner(
        plan,
        workdir,
        max_workers=jobs,
        timeout=timeout,
        store=None if plan.fs else RunStore(store_root, salt=faulty.salt),
    )
    chaos_stack = CachingRunner(pool, faulty)
    try:
        cold = RecordingRunner(chaos_stack)
        cold_passed = _run_workload(cold, scale, specs)
        warm = RecordingRunner(chaos_stack)
        warm_passed = _run_workload(warm, scale, specs)
    finally:
        pool.close()

    return ChaosReport(
        plan=plan.to_dict(),
        plan_digest=plan_digest(plan),
        workload=workload,
        runs=cold.count,
        baseline_fingerprint=baseline_fingerprint,
        cold_fingerprint=cold.fingerprint,
        warm_fingerprint=warm.fingerprint,
        corrupt_entries=faulty.corrupt,
        campaign_passed=cold_passed and warm_passed,
        failures=sorted(
            list(pool.failures)
            + list(faulty.failures)
            + list(chaos_stack.failures)
        ),
    )


# ----------------------------------------------------------------------
# Crash-point matrix
# ----------------------------------------------------------------------


def _default_matrix_grid() -> List[RunSpec]:
    """The tiny spec grid the crash matrix exercises by default.

    Small enough that one engine execution is milliseconds (the matrix
    re-runs the workload at every crash-point x image cell), varied
    enough that every entry has distinct content.
    """
    return [
        make_spec(
            "ring",
            {"n": 6},
            k=4,
            seed=seed,
            label=f"crash-matrix seed={seed}",
        )
        for seed in range(3)
    ]


class _MatrixScenario:
    """One faultable store workload of the crash matrix.

    ``prepare`` builds the pre-crash state with a clean store;
    ``execute`` performs the operations whose op stream is enumerated;
    ``after_crash`` simulates activity racing the crashed process (the
    gc scenario's concurrent writer).
    """

    name = ""

    def __init__(
        self, specs: Sequence[RunSpec], results: Sequence[RunResult]
    ) -> None:
        self.specs = list(specs)
        self.results = list(results)

    def prepare(self, store_root: pathlib.Path, durability: str) -> None:
        """Build the clean pre-crash store state (no faults)."""

    def execute(self, store: RunStore) -> None:
        """The crash-point-enumerable operations."""
        raise NotImplementedError

    def after_crash(self, store_root: pathlib.Path, durability: str) -> None:
        """Concurrent activity between the crash and the restart."""


class _WriteScenario(_MatrixScenario):
    """Cold store writes: every spec is a miss and gets published."""

    name = "store-write"

    def execute(self, store: RunStore) -> None:
        CachingRunner(SerialRunner(), store).run(self.specs)


class _RecomputeScenario(_MatrixScenario):
    """A corrupt entry is quarantined and recomputed on read."""

    name = "recompute"

    def prepare(self, store_root: pathlib.Path, durability: str) -> None:
        store = RunStore(store_root, durability=durability)
        for spec, result in zip(self.specs, self.results):
            store.put(spec, result)
        victim = store.path_for(store.digest(self.specs[0]))
        corrupt_entry_file(
            victim, "bit_flip", random.Random("crash-matrix:recompute")
        )

    def execute(self, store: RunStore) -> None:
        CachingRunner(SerialRunner(), store).run(self.specs)


class _GcScenario(_MatrixScenario):
    """Two-phase gc compaction racing a writer republishing a victim."""

    name = "gc-compaction"

    def prepare(self, store_root: pathlib.Path, durability: str) -> None:
        store = RunStore(store_root, durability=durability)
        for spec, result in zip(self.specs, self.results):
            store.put(spec, result)
        stale = RunStore(store_root, salt="crash-matrix-stale-salt")
        for spec, result in zip(self.specs[:2], self.results[:2]):
            stale.put(spec, result)

    def execute(self, store: RunStore) -> None:
        store.gc(max_entries=1)

    def after_crash(self, store_root: pathlib.Path, durability: str) -> None:
        # The concurrent writer: republish a digest gc may just have
        # been evicting.  Two-phase deletion must leave this fresh
        # entry intact whatever point the gc died at.
        writer = RunStore(store_root, durability=durability)
        writer.put(self.specs[0], self.results[0])


@dataclass
class CrashMatrixReport:
    """The outcome of one :func:`run_crash_matrix` sweep."""

    durabilities: List[str]
    spec_count: int
    cells: List[Dict[str, Any]] = field(default_factory=list)
    violations: List[Dict[str, str]] = field(default_factory=list)

    @property
    def crash_points(self) -> int:
        """Total crash points enumerated across all cells."""
        return sum(cell["crash_points"] for cell in self.cells)

    @property
    def images_checked(self) -> int:
        """Total (crash point, image) combinations actually asserted."""
        return sum(cell["images_checked"] for cell in self.cells)

    @property
    def ok(self) -> bool:
        """Whether every crash point recovered under every image."""
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable form (``repro chaos --crash-matrix --json``)."""
        return {
            "kind": "crash_matrix_report",
            "durabilities": list(self.durabilities),
            "spec_count": self.spec_count,
            "crash_points": self.crash_points,
            "images_checked": self.images_checked,
            "cells": list(self.cells),
            "violations": list(self.violations),
            "ok": self.ok,
        }

    def render(self) -> str:
        """A verdict block plus one line per scenario cell."""
        verdict = "RECOVERED" if self.ok else "VIOLATED"
        lines = [
            f"crash matrix [{verdict}] {self.crash_points} crash points, "
            f"{self.images_checked} images checked "
            f"({self.spec_count} specs, "
            f"durability {'/'.join(self.durabilities)})"
        ]
        for cell in self.cells:
            lines.append(
                f"  {cell['scenario']:<14} durability={cell['durability']:<6} "
                f"{cell['crash_points']:>3} points, "
                f"{cell['images_checked']:>3} images, "
                f"{cell['images_skipped']:>3} collapsed to flush"
            )
        for violation in self.violations:
            lines.append(
                f"  VIOLATION [{violation['invariant']}] "
                f"{violation['scenario']} durability="
                f"{violation['durability']} op {violation['crash_point']} "
                f"({violation['op']}) image {violation['image']}: "
                f"{violation['detail']}"
            )
        return "\n".join(lines)


def _matrix_clock(store_root: pathlib.Path) -> Callable[[], float]:
    """A frozen clock 'one process lifetime after' the crash.

    Derived from on-disk mtimes rather than the wall clock, so the
    restart deterministically sees every staging orphan as stale --
    which lets the matrix assert the startup sweep at every crash
    point.
    """
    newest = 0.0
    staging = store_root / "tmp"
    if staging.is_dir():
        for leftover in staging.iterdir():
            try:
                newest = max(newest, leftover.stat().st_mtime)
            except OSError:
                continue
    horizon = newest + STALE_TMP_GRACE_SECONDS * 2.0
    return lambda: horizon


def _check_recovery(
    store_root: pathlib.Path,
    durability: str,
    specs: Sequence[RunSpec],
    baseline: Sequence[str],
) -> List[Dict[str, str]]:
    """Assert the four recovery invariants against the surviving tree.

    Returns one dict per violation (empty = this image recovered);
    keys ``invariant`` and ``detail`` are filled in, the caller adds
    the cell coordinates.
    """
    problems: List[Dict[str, str]] = []
    clock = _matrix_clock(store_root)
    probe = RunStore(store_root, durability=durability, clock=clock)
    flagged = {
        item["digest"] for item in probe.verify().corrupt
    }
    probe.recover()
    if probe.staging_usage() != 0:
        problems.append(
            {
                "invariant": "staging-swept",
                "detail": (
                    f"{probe.staging_usage()} orphaned tmp files survive "
                    f"the startup sweep"
                ),
            }
        )
    for spec, expected in zip(specs, baseline):
        digest = probe.digest(spec)
        existed = probe.path_for(digest).exists()
        got = probe.get(spec)
        if got is not None:
            if canonical_json(run_result_to_dict(got)) != expected:
                problems.append(
                    {
                        "invariant": "no-torn-read",
                        "detail": (
                            f"entry {digest[:12]} read back different "
                            f"bits than the baseline result"
                        ),
                    }
                )
        elif existed and digest not in flagged:
            problems.append(
                {
                    "invariant": "verify-classifies-damage",
                    "detail": (
                        f"entry {digest[:12]} was rejected by the read "
                        f"path but not flagged by verify"
                    ),
                }
            )
    # Warm convergence: recompute whatever was lost, then the store
    # must hold nothing but sound entries.
    warm_store = RunStore(store_root, durability=durability, clock=clock)
    warm = CachingRunner(SerialRunner(), warm_store)
    for spec, result, expected in zip(specs, warm.run(specs), baseline):
        if canonical_json(run_result_to_dict(result)) != expected:
            problems.append(
                {
                    "invariant": "warm-convergence",
                    "detail": (
                        f"warm re-run of {warm_store.digest(spec)[:12]} "
                        f"diverged from the baseline"
                    ),
                }
            )
    final = warm_store.verify()
    if not final.clean:
        problems.append(
            {
                "invariant": "warm-convergence",
                "detail": (
                    f"{len(final.corrupt)} corrupt entries survive the "
                    f"warm repair pass"
                ),
            }
        )
    return problems


def run_crash_matrix(
    workdir: Union[str, os.PathLike],
    *,
    durabilities: Sequence[str] = ("fast", "strict"),
    specs: Optional[Sequence[RunSpec]] = None,
    seed: int = 0,
) -> CrashMatrixReport:
    """Enumerate every crash point of the store workloads; see module doc.

    ``workdir`` hosts one throwaway store tree per (scenario,
    durability, crash point) cell -- use a fresh temporary directory.
    ``specs`` overrides the default micro-grid (keep it tiny: the full
    workload re-runs at every cell).
    """
    workdir = pathlib.Path(workdir)
    grid = list(specs) if specs is not None else _default_matrix_grid()
    baseline_runner = SerialRunner()
    results = baseline_runner.run(grid)
    baseline = [
        canonical_json(run_result_to_dict(result)) for result in results
    ]
    report = CrashMatrixReport(
        durabilities=list(durabilities), spec_count=len(grid)
    )
    scenarios = (_WriteScenario, _RecomputeScenario, _GcScenario)
    cell_serial = 0
    for durability in durabilities:
        for scenario_cls in scenarios:
            scenario = scenario_cls(grid, results)
            # Counting pass: same workload, no faults, to learn the
            # length of the deterministic op stream.
            cell_serial += 1
            count_root = workdir / f"cell-{cell_serial}"
            scenario.prepare(count_root / "store", durability)
            counting = ChaosVFS(seed=seed)
            scenario.execute(
                RunStore(
                    count_root / "store",
                    durability=durability,
                    vfs=counting,
                )
            )
            cell = {
                "scenario": scenario.name,
                "durability": durability,
                "crash_points": counting.op_count,
                "images_checked": 0,
                "images_skipped": 0,
            }
            for crash_point in range(counting.op_count):
                for image in CRASH_IMAGE_MODES:
                    cell_serial += 1
                    root = workdir / f"cell-{cell_serial}"
                    store_root = root / "store"
                    scenario.prepare(store_root, durability)
                    vfs = ChaosVFS(seed=seed, crash_at=crash_point)
                    store = RunStore(
                        store_root, durability=durability, vfs=vfs
                    )
                    try:
                        scenario.execute(store)
                    except SimulatedCrash:
                        pass
                    changed = vfs.apply_crash_image(image)
                    if image != "flush" and not changed:
                        # Indistinguishable from the flush image (all
                        # volatile state had been fsynced): already
                        # covered, skip the redundant recovery run.
                        cell["images_skipped"] += 1
                        continue
                    scenario.after_crash(store_root, durability)
                    cell["images_checked"] += 1
                    crashed_op = vfs.ops[crash_point]
                    for problem in _check_recovery(
                        store_root, durability, grid, baseline
                    ):
                        report.violations.append(
                            {
                                "scenario": scenario.name,
                                "durability": durability,
                                "crash_point": str(crash_point),
                                "op": crashed_op.name,
                                "image": image,
                                "invariant": problem["invariant"],
                                "detail": problem["detail"],
                            }
                        )
            report.cells.append(cell)
    return report
