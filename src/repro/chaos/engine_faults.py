"""Engine-layer fault injection: an observer that raises at a phase.

The engine's CCM loop notifies its observers at seven named points
(:class:`repro.sim.hooks.EngineObserver`); observer exceptions propagate
out of :meth:`~repro.sim.engine.SimulationEngine.run` by design.  A
:class:`PhaseFaultObserver` exploits exactly that: attached via
``build_engine(spec, observers=[...])`` it raises
:class:`~repro.chaos.failures.ChaosEngineFault` the first time its
target phase fires at or after its target round -- turning "what if
instrumentation blows up mid-round?" into a schedulable, deterministic
event the runner's retry budget must absorb.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from repro.chaos.failures import ChaosEngineFault
from repro.chaos.plan import ENGINE_PHASES, PlanError
from repro.sim.hooks import EngineObserver
from repro.sim.metrics import RoundRecord, RunResult


class PhaseFaultObserver(EngineObserver):
    """Raises :class:`ChaosEngineFault` at a named phase hook.

    ``phase`` is one of :data:`~repro.chaos.plan.ENGINE_PHASES`;
    ``round_index`` delays the fault until the phase fires at or after
    that round (``on_run_start`` / ``on_run_end`` ignore it -- they fire
    once).  The observer is single-shot per engine run by construction:
    the raise aborts the run that triggered it.
    """

    def __init__(
        self, phase: str, round_index: int = 0, detail: str = ""
    ) -> None:
        if phase not in ENGINE_PHASES:
            raise PlanError(
                f"unknown engine phase {phase!r}; expected one of "
                f"{ENGINE_PHASES}"
            )
        self.phase = phase
        self.round_index = round_index
        self.detail = detail or f"injected engine fault at {phase}"

    def _fire(self, phase: str, round_index: int) -> None:
        if phase == self.phase and round_index >= self.round_index:
            raise ChaosEngineFault(self.detail)

    def on_run_start(self, k: int, n: int) -> None:
        """Fault point before round 0."""
        self._fire("on_run_start", self.round_index)

    def on_round_start(self, round_index: int, snapshot: object) -> None:
        """Fault point at graph delivery."""
        self._fire("on_round_start", round_index)

    def on_communicate(self, round_index: int, observations: Mapping) -> None:
        """Fault point after packet delivery."""
        self._fire("on_communicate", round_index)

    def on_compute(self, round_index: int, decisions: Mapping) -> None:
        """Fault point after decision collection."""
        self._fire("on_compute", round_index)

    def on_move(
        self,
        round_index: int,
        moved: Tuple[int, ...],
        positions: Dict[int, int],
    ) -> None:
        """Fault point after move application."""
        self._fire("on_move", round_index)

    def on_round_end(self, record: RoundRecord) -> None:
        """Fault point at round bookkeeping."""
        self._fire("on_round_end", record.round_index)

    def on_run_end(self, result: RunResult) -> None:
        """Fault point at run completion."""
        self._fire("on_run_end", self.round_index)
