"""Store-layer fault injection: a RunStore that sabotages its entries.

A :class:`FaultyStore` is a drop-in :class:`~repro.sim.store.RunStore`
that corrupts its own on-disk entries *immediately before reading them
back*, per a :class:`~repro.chaos.plan.FaultPlan`.  Fault positions are
counted over the reads that find an existing entry (a cold read of an
absent digest has nothing to corrupt and consumes no fault), so
``op_index=2`` always hits the third stored entry a replay reads --
deterministic regardless of how many cold misses interleave.

The corruption itself (:func:`corrupt_entry_file`) writes real damage to
the real file: flipped bits inside the checksummed content, truncation
at the midpoint, a rewritten salt, or undecodable bytes.  Detection is
entirely the base class's job -- the read path's integrity validation
must catch every one of these, quarantine the entry and recompute, which
is exactly the property the chaos suite pins.
"""

from __future__ import annotations

import json
import os
import pathlib
import random
from typing import Dict, List, Optional, Tuple, Union

from repro.chaos.failures import FailureRecord
from repro.chaos.plan import FaultPlan, StoreFault
from repro.sim.metrics import RunResult
from repro.sim.spec import CODE_VERSION_SALT, RunSpec
from repro.sim.store import RunStore


def corrupt_entry_file(
    path: pathlib.Path, kind: str, rng: random.Random
) -> bool:
    """Damage the entry at ``path`` in place; False if nothing is there.

    ``bit_flip`` flips one bit at an ``rng``-chosen offset inside the
    checksummed region (at or after the ``"spec"`` key, so the flip can
    never land in provenance metadata the checksum ignores);
    ``truncate`` cuts the file at the midpoint; ``stale_salt`` rewrites
    the recorded salt (checksum and spec-digest validation must catch
    the lie); ``unreadable`` replaces the head with bytes that do not
    decode as UTF-8.
    """
    try:
        data = path.read_bytes()
    except OSError:
        return False
    if not data:
        return False
    if kind == "truncate":
        path.write_bytes(data[: len(data) // 2])
    elif kind == "unreadable":
        path.write_bytes(b"\xff\xfe" + data[:32])
    elif kind == "stale_salt":
        try:
            payload = json.loads(data.decode("utf-8"))
            payload["salt"] = str(payload.get("salt", "")) + "-tampered"
            path.write_text(
                json.dumps(payload, separators=(",", ":"), sort_keys=True)
            )
        except ValueError:
            # Already unparsable (double-faulted entry): truncate instead.
            path.write_bytes(data[: len(data) // 2])
    else:  # bit_flip
        anchor = data.find(b'"spec"')
        start = anchor if 0 <= anchor < len(data) else len(data) // 2
        offset = rng.randrange(start, len(data))
        flipped = data[offset] ^ (1 << rng.randrange(8))
        path.write_bytes(data[:offset] + bytes([flipped]) + data[offset + 1:])
    return True


class FaultyStore(RunStore):
    """A :class:`RunStore` whose read path injects planned corruption.

    Only the *parent-side* store of a chaos stack should be a
    ``FaultyStore``; pool workers keep writing through a clean
    :class:`RunStore` at the same root, so injected damage always comes
    from this instance's deterministic, serially-counted read sequence.
    """

    def __init__(
        self,
        root: Union[str, os.PathLike],
        plan: FaultPlan,
        *,
        salt: str = CODE_VERSION_SALT,
    ) -> None:
        # The plan's fs layer rides along: parent-side store ops route
        # through a ChaosVFS so FsFaults can hit this store's (and the
        # wrapping CachingRunner's) write path.
        from repro.chaos.fs import chaos_vfs_for_plan

        super().__init__(root, salt=salt, vfs=chaos_vfs_for_plan(plan))
        self.plan = plan
        self.failures: List[FailureRecord] = []
        self._stored_reads = 0
        self._by_op: Dict[int, List[Tuple[int, StoreFault]]] = {}
        for index, fault in enumerate(plan.store):
            self._by_op.setdefault(fault.op_index, []).append((index, fault))

    def get(self, spec: RunSpec) -> Optional[RunResult]:
        """Corrupt the entry first if a fault targets this read."""
        path = self.path_for(self.digest(spec))
        if path.exists():
            op = self._stored_reads
            self._stored_reads += 1
            for index, fault in self._by_op.get(op, []):
                rng = random.Random(f"chaos:{self.plan.seed}:store:{index}")
                if corrupt_entry_file(path, fault.kind, rng):
                    self.failures.append(
                        FailureRecord(
                            unit=op,
                            attempt=0,
                            kind="corrupt",
                            detail=(
                                f"injected {fault.kind} into entry "
                                f"{path.stem[:12]}"
                            ),
                        )
                    )
        return super().get(spec)

    @property
    def failure_records(self) -> List[FailureRecord]:
        """The injected-corruption records, in canonical order."""
        return sorted(self.failures)
