"""Deterministic, seeded fault injection across the execution stack.

The paper's robustness results (Theorem 5's crash model, the KLO
adversary's per-round rewiring) treat faults as *schedulable events* the
algorithm must survive; this package applies the same discipline to the
reproduction's own infrastructure.  A :class:`~repro.chaos.plan.FaultPlan`
-- pure data, like a :class:`~repro.sim.spec.RunSpec` -- names every
fault to inject at three layers:

* **store** (:class:`~repro.chaos.store.FaultyStore`) -- corrupt cache
  entries on the read path; the store's integrity layer must detect,
  quarantine and recompute;
* **runner** (:class:`~repro.chaos.runner.ChaosPoolRunner`) -- crash,
  hang or fail worker units; the pool's retry/restart machinery must
  absorb the loss;
* **engine** (:class:`~repro.chaos.engine_faults.PhaseFaultObserver`) --
  raise from a named phase hook mid-run.

:func:`~repro.chaos.replay.replay_plan` replays a plan against the
reproduction campaign (or any spec grid) and checks *bit-identical
convergence* against a fault-free baseline, returning the tolerated
faults as a canonical :class:`~repro.chaos.failures.FailureRecord`
stream.  ``repro chaos --plan plan.json`` is the CLI entry point;
``docs/robustness.md`` is the narrative.
"""

from repro.chaos.failures import (
    ChaosEngineFault,
    ChaosTransientError,
    FAILURE_KINDS,
    FAILURE_STREAM_FORMAT_VERSION,
    FAILURE_STREAM_KIND,
    FailureRecord,
    diff_failure_streams,
    load_failure_stream,
    render_failure_stream,
)
from repro.chaos.plan import (
    ENGINE_PHASES,
    EngineFault,
    FaultPlan,
    PlanError,
    RUNNER_FAULT_KINDS,
    RunnerFault,
    STORE_FAULT_KINDS,
    StoreFault,
    plan_digest,
)
from repro.chaos.replay import ChaosReport, RecordingRunner, replay_plan
from repro.chaos.runner import ChaosPoolRunner
from repro.chaos.store import FaultyStore, corrupt_entry_file
from repro.chaos.engine_faults import PhaseFaultObserver

__all__ = [
    "ChaosEngineFault",
    "ChaosPoolRunner",
    "ChaosReport",
    "ChaosTransientError",
    "ENGINE_PHASES",
    "EngineFault",
    "FAILURE_KINDS",
    "FAILURE_STREAM_FORMAT_VERSION",
    "FAILURE_STREAM_KIND",
    "FailureRecord",
    "FaultPlan",
    "FaultyStore",
    "PhaseFaultObserver",
    "PlanError",
    "RecordingRunner",
    "RUNNER_FAULT_KINDS",
    "RunnerFault",
    "STORE_FAULT_KINDS",
    "StoreFault",
    "corrupt_entry_file",
    "diff_failure_streams",
    "load_failure_stream",
    "plan_digest",
    "render_failure_stream",
    "replay_plan",
]
