"""Deterministic, seeded fault injection across the execution stack.

The paper's robustness results (Theorem 5's crash model, the KLO
adversary's per-round rewiring) treat faults as *schedulable events* the
algorithm must survive; this package applies the same discipline to the
reproduction's own infrastructure.  A :class:`~repro.chaos.plan.FaultPlan`
-- pure data, like a :class:`~repro.sim.spec.RunSpec` -- names every
fault to inject at three layers:

* **store** (:class:`~repro.chaos.store.FaultyStore`) -- corrupt cache
  entries on the read path; the store's integrity layer must detect,
  quarantine and recompute;
* **runner** (:class:`~repro.chaos.runner.ChaosPoolRunner`) -- crash,
  hang or fail worker units; the pool's retry/restart machinery must
  absorb the loss;
* **engine** (:class:`~repro.chaos.engine_faults.PhaseFaultObserver`) --
  raise from a named phase hook mid-run;
* **filesystem** (:class:`~repro.chaos.fs.ChaosVFS`) -- sabotage the
  store's own write path at named syscall boundaries: ``EIO`` /
  ``ENOSPC``, torn writes, lost renames, and simulated crashes, with a
  page-cache model that materializes adversarial post-crash disk
  images.

:func:`~repro.chaos.replay.replay_plan` replays a plan against the
reproduction campaign (or any spec grid) and checks *bit-identical
convergence* against a fault-free baseline, returning the tolerated
faults as a canonical :class:`~repro.chaos.failures.FailureRecord`
stream.  :func:`~repro.chaos.replay.run_crash_matrix` is the
crash-consistency half: it simulates a crash at *every* filesystem-op
boundary of the store's write, recompute and gc workloads and asserts
the recovery invariants at each.  ``repro chaos --plan plan.json`` and
``repro chaos --crash-matrix`` are the CLI entry points;
``docs/robustness.md`` is the narrative.
"""

from repro.chaos.failures import (
    ChaosEngineFault,
    ChaosTransientError,
    FAILURE_KINDS,
    FAILURE_STREAM_FORMAT_VERSION,
    FAILURE_STREAM_KIND,
    FailureRecord,
    diff_failure_streams,
    load_failure_stream,
    render_failure_stream,
)
from repro.chaos.fs import (
    CRASH_IMAGE_MODES,
    ChaosVFS,
    SimulatedCrash,
    VfsOp,
    chaos_vfs_for_plan,
)
from repro.chaos.plan import (
    ENGINE_PHASES,
    EngineFault,
    FS_FAULT_KINDS,
    FS_OPS,
    FaultPlan,
    FsFault,
    PlanError,
    RUNNER_FAULT_KINDS,
    RunnerFault,
    STORE_FAULT_KINDS,
    StoreFault,
    plan_digest,
)
from repro.chaos.replay import (
    ChaosReport,
    CrashMatrixReport,
    RecordingRunner,
    replay_plan,
    run_crash_matrix,
)
from repro.chaos.runner import ChaosPoolRunner
from repro.chaos.store import FaultyStore, corrupt_entry_file
from repro.chaos.engine_faults import PhaseFaultObserver

__all__ = [
    "ChaosEngineFault",
    "ChaosPoolRunner",
    "ChaosReport",
    "ChaosTransientError",
    "ChaosVFS",
    "CRASH_IMAGE_MODES",
    "CrashMatrixReport",
    "ENGINE_PHASES",
    "EngineFault",
    "FAILURE_KINDS",
    "FAILURE_STREAM_FORMAT_VERSION",
    "FAILURE_STREAM_KIND",
    "FailureRecord",
    "FaultPlan",
    "FaultyStore",
    "FS_FAULT_KINDS",
    "FS_OPS",
    "FsFault",
    "PhaseFaultObserver",
    "PlanError",
    "RecordingRunner",
    "RUNNER_FAULT_KINDS",
    "RunnerFault",
    "SimulatedCrash",
    "STORE_FAULT_KINDS",
    "StoreFault",
    "VfsOp",
    "chaos_vfs_for_plan",
    "corrupt_entry_file",
    "diff_failure_streams",
    "load_failure_stream",
    "plan_digest",
    "render_failure_stream",
    "replay_plan",
    "run_crash_matrix",
]
