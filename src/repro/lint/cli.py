"""The ``repro lint`` command line (also ``python -m repro.lint``).

Exit codes follow the convention of every other gate in CI: ``0`` for a
clean tree, ``1`` when findings exist, ``2`` for usage errors (unknown
rule selector, missing path) *and* for internal analysis failures -- so
a misconfigured or crashing invocation can never masquerade as a
passing gate.
"""

from __future__ import annotations

import argparse
import sys
import traceback
from typing import List, Optional

from repro.lint.engine import lint_paths
from repro.lint.reporters import (
    render_json,
    render_rule_catalogue,
    render_text,
)

#: Default scan roots per mode; whole-program modes want the package tree.
SHALLOW_DEFAULT_PATHS = ["src", "tests", "benchmarks"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared with ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src tests "
        "benchmarks; with --deep/--effects: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the schema-stable JSON report instead of text",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes or families to run "
        "(e.g. 'D' or 'D001,C'); default: all rules",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help="run the whole-program analysis (call-graph taint "
        "propagation + fork-safety) against the accepted baseline",
    )
    parser.add_argument(
        "--effects",
        action="store_true",
        help="run the whole-program effect/contract analysis (engine "
        "phase, observer hook and spec digest contracts) against its "
        "accepted baseline",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline snapshot for --deep/--effects (defaults: "
        "lint-deep-baseline.json / lint-effects-baseline.json)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="with --deep/--effects: accept the tree's current findings "
        "as the new baseline and exit 0",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="with --deep/--effects: re-parse every module instead of "
        "consulting the .lint-cache AST cache",
    )


def _whole_program_cache(args: argparse.Namespace) -> Optional[object]:
    """The CLI-default AST cache, unless ``--no-cache`` opted out."""
    if getattr(args, "no_cache", False):
        return None
    import pathlib

    from repro.lint.deep.cache import DEFAULT_CACHE_DIR, ModuleCache

    return ModuleCache(pathlib.Path(DEFAULT_CACHE_DIR))


def _run_whole_program(args: argparse.Namespace, effects: bool) -> int:
    from repro.lint.deep import (
        DEEP_DEFAULT_PATHS,
        DEFAULT_BASELINE_PATH,
        DEFAULT_EFFECTS_BASELINE_PATH,
        BaselineError,
        render_deep_summary,
        run_deep_analysis,
        run_effects_analysis,
    )

    paths = args.paths if args.paths else list(DEEP_DEFAULT_PATHS)
    default_baseline = (
        DEFAULT_EFFECTS_BASELINE_PATH if effects else DEFAULT_BASELINE_PATH
    )
    baseline = (
        args.baseline if args.baseline is not None else default_baseline
    )
    runner = run_effects_analysis if effects else run_deep_analysis
    try:
        result = runner(
            paths,
            baseline_path=baseline,
            update_baseline=args.update_baseline,
            cache=_whole_program_cache(args),
        )
    except (FileNotFoundError, BaselineError) as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return 2
    except Exception:
        # An analyzer crash is an infrastructure failure, not a clean
        # tree; exit 2 so CI distinguishes it from both outcomes.
        traceback.print_exc()
        print(
            "repro lint: internal error in whole-program analysis",
            file=sys.stderr,
        )
        return 2
    if args.json:
        print(render_json(result.report))
    else:
        print(render_text(result.report))
        print(render_deep_summary(result))
    # After --update-baseline only P001 parse errors (never baselined)
    # can remain in the report, so the exit code is honest either way.
    return 0 if result.report.ok else 1


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed arguments."""
    if args.list_rules:
        print(render_rule_catalogue())
        return 0
    effects = getattr(args, "effects", False)
    if args.deep and effects:
        print(
            "repro lint: --deep and --effects are separate passes; "
            "run them as two invocations",
            file=sys.stderr,
        )
        return 2
    if (args.deep or effects) and args.select:
        print(
            "repro lint: --select does not apply to --deep/--effects "
            "(each whole-program pass is a single analysis)",
            file=sys.stderr,
        )
        return 2
    if not (args.deep or effects) and (args.baseline or args.update_baseline):
        print(
            "repro lint: --baseline/--update-baseline require --deep "
            "or --effects",
            file=sys.stderr,
        )
        return 2
    if args.deep or effects:
        return _run_whole_program(args, effects=effects)
    select = (
        [s for s in args.select.split(",") if s.strip()]
        if args.select
        else None
    )
    paths = args.paths if args.paths else SHALLOW_DEFAULT_PATHS
    try:
        report = lint_paths(paths, select=select)
    except (FileNotFoundError, ValueError) as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return 2
    print(render_json(report) if args.json else render_text(report))
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    add_lint_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
