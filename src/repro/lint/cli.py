"""The ``repro lint`` command line (also ``python -m repro.lint``).

Exit codes follow the convention of every other gate in CI: ``0`` for a
clean tree, ``1`` when findings exist, ``2`` for usage errors (unknown
rule selector, missing path) -- so a misconfigured invocation can never
masquerade as a passing gate.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.lint.engine import lint_paths
from repro.lint.reporters import (
    render_json,
    render_rule_catalogue,
    render_text,
)


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared with ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the schema-stable JSON report instead of text",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes or families to run "
        "(e.g. 'D' or 'D001,C'); default: all rules",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed arguments."""
    if args.list_rules:
        print(render_rule_catalogue())
        return 0
    select = (
        [s for s in args.select.split(",") if s.strip()]
        if args.select
        else None
    )
    try:
        report = lint_paths(args.paths, select=select)
    except (FileNotFoundError, ValueError) as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return 2
    print(render_json(report) if args.json else render_text(report))
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    add_lint_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
