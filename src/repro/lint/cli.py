"""The ``repro lint`` command line (also ``python -m repro.lint``).

Exit codes follow the convention of every other gate in CI: ``0`` for a
clean tree, ``1`` when findings exist, ``2`` for usage errors (unknown
rule selector, missing path) -- so a misconfigured invocation can never
masquerade as a passing gate.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.lint.engine import lint_paths
from repro.lint.reporters import (
    render_json,
    render_rule_catalogue,
    render_text,
)

#: Default scan roots per mode; deep analysis wants the package tree.
SHALLOW_DEFAULT_PATHS = ["src", "tests", "benchmarks"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared with ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src tests "
        "benchmarks; with --deep: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the schema-stable JSON report instead of text",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes or families to run "
        "(e.g. 'D' or 'D001,C'); default: all rules",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help="run the whole-program analysis (call-graph taint "
        "propagation + fork-safety) against the accepted baseline",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline snapshot for --deep "
        "(default: lint-deep-baseline.json)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="with --deep: accept the tree's current findings as the "
        "new baseline and exit 0",
    )


def _run_deep(args: argparse.Namespace) -> int:
    from repro.lint.deep import (
        DEEP_DEFAULT_PATHS,
        DEFAULT_BASELINE_PATH,
        BaselineError,
        render_deep_summary,
        run_deep_analysis,
    )

    paths = args.paths if args.paths else list(DEEP_DEFAULT_PATHS)
    baseline = (
        args.baseline if args.baseline is not None else DEFAULT_BASELINE_PATH
    )
    try:
        result = run_deep_analysis(
            paths,
            baseline_path=baseline,
            update_baseline=args.update_baseline,
        )
    except (FileNotFoundError, BaselineError) as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(render_json(result.report))
    else:
        print(render_text(result.report))
        print(render_deep_summary(result))
    # After --update-baseline only P001 parse errors (never baselined)
    # can remain in the report, so the exit code is honest either way.
    return 0 if result.report.ok else 1


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed arguments."""
    if args.list_rules:
        print(render_rule_catalogue())
        return 0
    if args.deep and args.select:
        print(
            "repro lint: --select does not apply to --deep "
            "(the deep pass is a single analysis)",
            file=sys.stderr,
        )
        return 2
    if not args.deep and (args.baseline or args.update_baseline):
        print(
            "repro lint: --baseline/--update-baseline require --deep",
            file=sys.stderr,
        )
        return 2
    if args.deep:
        return _run_deep(args)
    select = (
        [s for s in args.select.split(",") if s.strip()]
        if args.select
        else None
    )
    paths = args.paths if args.paths else SHALLOW_DEFAULT_PATHS
    try:
        report = lint_paths(paths, select=select)
    except (FileNotFoundError, ValueError) as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return 2
    print(render_json(report) if args.json else render_text(report))
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    add_lint_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
