"""The ``repro lint`` command line (also ``python -m repro.lint``).

Exit codes follow the convention of every other gate in CI: ``0`` for a
clean tree, ``1`` when findings exist, ``2`` for usage errors (unknown
rule selector, missing path) *and* for internal analysis failures -- so
a misconfigured or crashing invocation can never masquerade as a
passing gate.
"""

from __future__ import annotations

import argparse
import sys
import traceback
from typing import Dict, List, Optional

from repro.lint.engine import LintReport, lint_paths
from repro.lint.reporters import (
    render_all_json,
    render_json,
    render_rule_catalogue,
    render_text,
)

#: Default scan roots per mode; whole-program modes want the package tree.
SHALLOW_DEFAULT_PATHS = ["src", "tests", "benchmarks"]

#: The whole-program tiers, in the order ``--all`` runs them.
WHOLE_PROGRAM_MODES = ("deep", "effects", "robot")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared with ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src tests "
        "benchmarks; with a whole-program tier: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the schema-stable JSON report instead of text",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes or families to run "
        "(e.g. 'D' or 'D001,C'); default: all rules",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help="run the whole-program analysis (call-graph taint "
        "propagation + fork-safety) against the accepted baseline",
    )
    parser.add_argument(
        "--effects",
        action="store_true",
        help="run the whole-program effect/contract analysis (engine "
        "phase, observer hook and spec digest contracts) against its "
        "accepted baseline",
    )
    parser.add_argument(
        "--robot-model",
        action="store_true",
        help="run the whole-program robot-model conformance analysis "
        "(hidden/unbounded persistent state, observation scope and "
        "mutation, model escape) against its accepted baseline",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="run every tier -- the shallow rules plus all three "
        "whole-program passes -- in one invocation with a merged "
        "report and a single combined exit code",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline snapshot for the selected whole-program tier "
        "(defaults: lint-deep-baseline.json / "
        "lint-effects-baseline.json / lint-robot-baseline.json)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="with a whole-program tier (or --all): accept the tree's "
        "current findings as the new baseline(s) and exit 0",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="with a whole-program tier: re-parse every module instead "
        "of consulting the .lint-cache AST cache",
    )


def _whole_program_cache(args: argparse.Namespace) -> Optional[object]:
    """The CLI-default AST cache, unless ``--no-cache`` opted out."""
    if getattr(args, "no_cache", False):
        return None
    import pathlib

    from repro.lint.deep.cache import DEFAULT_CACHE_DIR, ModuleCache

    return ModuleCache(pathlib.Path(DEFAULT_CACHE_DIR))


def _tier_runner(mode: str):
    """``(runner, default baseline path)`` for a whole-program mode."""
    from repro.lint.deep import (
        DEFAULT_BASELINE_PATH,
        DEFAULT_EFFECTS_BASELINE_PATH,
        DEFAULT_ROBOT_BASELINE_PATH,
        run_deep_analysis,
        run_effects_analysis,
        run_robot_model_analysis,
    )

    return {
        "deep": (run_deep_analysis, DEFAULT_BASELINE_PATH),
        "effects": (run_effects_analysis, DEFAULT_EFFECTS_BASELINE_PATH),
        "robot": (run_robot_model_analysis, DEFAULT_ROBOT_BASELINE_PATH),
    }[mode]


def _run_whole_program(args: argparse.Namespace, mode: str) -> int:
    from repro.lint.deep import (
        DEEP_DEFAULT_PATHS,
        BaselineError,
        render_deep_summary,
    )

    paths = args.paths if args.paths else list(DEEP_DEFAULT_PATHS)
    runner, default_baseline = _tier_runner(mode)
    baseline = (
        args.baseline if args.baseline is not None else default_baseline
    )
    try:
        result = runner(
            paths,
            baseline_path=baseline,
            update_baseline=args.update_baseline,
            cache=_whole_program_cache(args),
        )
    except (FileNotFoundError, BaselineError) as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return 2
    except Exception:
        # An analyzer crash is an infrastructure failure, not a clean
        # tree; exit 2 so CI distinguishes it from both outcomes.
        traceback.print_exc()
        print(
            "repro lint: internal error in whole-program analysis",
            file=sys.stderr,
        )
        return 2
    if args.json:
        print(render_json(result.report))
    else:
        print(render_text(result.report))
        print(render_deep_summary(result))
    # After --update-baseline only P001 parse errors (never baselined)
    # can remain in the report, so the exit code is honest either way.
    return 0 if result.report.ok else 1


def _run_all(args: argparse.Namespace) -> int:
    """Every tier in one invocation: merged report, combined exit code."""
    from repro.lint.deep import (
        DEEP_DEFAULT_PATHS,
        BaselineError,
        render_deep_summary,
    )

    shallow_paths = args.paths if args.paths else SHALLOW_DEFAULT_PATHS
    deep_paths = args.paths if args.paths else list(DEEP_DEFAULT_PATHS)
    cache = _whole_program_cache(args)
    tiers: Dict[str, LintReport] = {}
    summaries: List[str] = []
    try:
        tiers["shallow"] = lint_paths(shallow_paths)
        for mode in WHOLE_PROGRAM_MODES:
            runner, default_baseline = _tier_runner(mode)
            result = runner(
                deep_paths,
                baseline_path=default_baseline,
                update_baseline=args.update_baseline,
                cache=cache,
            )
            tiers[mode if mode != "robot" else "robot_model"] = result.report
            summaries.append(render_deep_summary(result))
    except (FileNotFoundError, BaselineError, ValueError) as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return 2
    except Exception:
        traceback.print_exc()
        print(
            "repro lint: internal error in whole-program analysis",
            file=sys.stderr,
        )
        return 2
    if args.json:
        print(render_all_json(tiers))
    else:
        for name, key in (
            ("shallow", "shallow"),
            ("deep", "deep"),
            ("effects", "effects"),
            ("robot-model", "robot_model"),
        ):
            print(f"== {name} ==")
            print(render_text(tiers[key]))
        for summary in summaries:
            print(summary)
    return 0 if all(report.ok for report in tiers.values()) else 1


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed arguments."""
    if args.list_rules:
        print(render_rule_catalogue())
        return 0
    run_all = getattr(args, "all", False)
    selected = [
        flag
        for flag in ("deep", "effects", "robot_model")
        if getattr(args, flag, False)
    ]
    if run_all and selected:
        print(
            "repro lint: --all already runs every tier; drop "
            f"--{selected[0].replace('_', '-')}",
            file=sys.stderr,
        )
        return 2
    if len(selected) > 1:
        print(
            "repro lint: --deep/--effects/--robot-model are separate "
            "passes; run them as separate invocations (or use --all)",
            file=sys.stderr,
        )
        return 2
    if (run_all or selected) and args.select:
        print(
            "repro lint: --select does not apply to whole-program "
            "passes (each is a single analysis)",
            file=sys.stderr,
        )
        return 2
    if run_all and args.baseline:
        print(
            "repro lint: --baseline names one tier's snapshot; --all "
            "uses each tier's default baseline file",
            file=sys.stderr,
        )
        return 2
    if not (run_all or selected) and (args.baseline or args.update_baseline):
        print(
            "repro lint: --baseline/--update-baseline require --deep, "
            "--effects, --robot-model or --all",
            file=sys.stderr,
        )
        return 2
    if run_all:
        return _run_all(args)
    if selected:
        mode = {"deep": "deep", "effects": "effects", "robot_model": "robot"}[
            selected[0]
        ]
        return _run_whole_program(args, mode)
    select = (
        [s for s in args.select.split(",") if s.strip()]
        if args.select
        else None
    )
    paths = args.paths if args.paths else SHALLOW_DEFAULT_PATHS
    try:
        report = lint_paths(paths, select=select)
    except (FileNotFoundError, ValueError) as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return 2
    print(render_json(report) if args.json else render_text(report))
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    add_lint_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
