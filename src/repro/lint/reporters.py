"""Rendering of lint reports: human text and schema-stable JSON.

The JSON document is a machine interface (CI annotations, dashboards)
and is versioned like every other serialized artifact in this repo:
``format_version`` bumps on any key change, keys are emitted sorted, and
findings are sorted by location, so byte-identical trees produce
byte-identical reports.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.lint.engine import LintReport
from repro.lint.rules import rule_catalogue

REPORT_FORMAT_VERSION = 1


def report_to_dict(report: LintReport) -> Dict[str, Any]:
    """The schema-stable dict form of a report (see module docstring)."""
    return {
        "kind": "reprolint_report",
        "format_version": REPORT_FORMAT_VERSION,
        "ok": report.ok,
        "files_scanned": report.files_scanned,
        "suppressed": report.suppressed,
        "counts": dict(sorted(report.counts().items())),
        "findings": [finding.to_dict() for finding in report.findings],
    }


def render_json(report: LintReport) -> str:
    """The report as canonical JSON text (sorted keys, 2-space indent)."""
    return json.dumps(report_to_dict(report), indent=2, sort_keys=True)


#: Tier order in the merged ``--all`` report; keys are schema, not
#: display names, so they stay snake_case and never change.
ALL_TIER_KEYS = ("shallow", "deep", "effects", "robot_model")


def all_report_to_dict(tiers: Dict[str, LintReport]) -> Dict[str, Any]:
    """The merged ``--all`` document: one sub-report per tier.

    ``ok`` is the conjunction over tiers, matching the combined exit
    code.  Tier sub-reports are the unchanged per-tier schema, so any
    consumer of ``reprolint_report`` can read one tier out of this
    document without new parsing code.
    """
    return {
        "kind": "reprolint_all_report",
        "format_version": REPORT_FORMAT_VERSION,
        "ok": all(report.ok for report in tiers.values()),
        "tiers": {
            key: report_to_dict(tiers[key])
            for key in ALL_TIER_KEYS
            if key in tiers
        },
    }


def render_all_json(tiers: Dict[str, LintReport]) -> str:
    """The merged report as canonical JSON text."""
    return json.dumps(all_report_to_dict(tiers), indent=2, sort_keys=True)


def render_text(report: LintReport) -> str:
    """One line per finding plus a one-line summary."""
    lines: List[str] = [finding.render() for finding in report.findings]
    if report.ok:
        summary = (
            f"reprolint: {report.files_scanned} file(s) clean"
        )
    else:
        by_code = ", ".join(
            f"{code} x{count}"
            for code, count in sorted(report.counts().items())
        )
        summary = (
            f"reprolint: {len(report.findings)} finding(s) in "
            f"{report.files_scanned} file(s) ({by_code})"
        )
    if report.suppressed:
        summary += f", {report.suppressed} suppressed"
    lines.append(summary)
    return "\n".join(lines)


#: ``(code, name, mode, summary)`` per whole-program rule.  These run
#: under ``--deep``/``--effects``/``--robot-model`` rather than the
#: shallow per-file engine, so they are listed here instead of the
#: selectable catalogue.
WHOLE_PROGRAM_RULES = (
    ("T001", "deep-taint-path", "--deep",
     "a deterministic-core function transitively reaches a "
     "nondeterminism source"),
    ("F001", "fork-unsafe-global", "--deep",
     "a runner module mutates a module-level global that forked "
     "workers snapshot"),
    ("E001", "phase-engine-mutation", "--effects",
     "a backend phase transitively mutates engine state outside its "
     "phase allowlist"),
    ("E002", "phase-payload-mutation", "--effects",
     "a backend phase mutates a payload parameter that is not a "
     "documented out-parameter"),
    ("E003", "hook-payload-mutation", "--effects",
     "an observer on_* hook transitively mutates its payload "
     "(interprocedural H001)"),
    ("E004", "phase-io", "--effects",
     "a backend phase performs I/O"),
    ("M001", "mutation-after-submit", "--effects",
     "an object captured by a submitted work unit is mutated after "
     "the submission"),
    ("S001", "digest-unstable-field", "--effects",
     "a defaulted spec field is serialized unconditionally, drifting "
     "every digest"),
    ("S002", "digest-missing-field", "--effects",
     "a spec field never reaches to_dict, so differing specs share a "
     "digest"),
    ("A001", "hidden-persistent-state", "--robot-model",
     "an algorithm hook writes an attribute that persistent_state() "
     "never emits (state the memory audit cannot see)"),
    ("A002", "unbounded-declared-state", "--robot-model",
     "a persistent_state() field has no bound in "
     "persistent_state_bounds(), so its bit cost is uncharged"),
    ("A003", "observation-scope-violation", "--robot-model",
     "a LOCAL-communication algorithm reads a global-only Observation "
     "field"),
    ("A004", "model-escape", "--robot-model",
     "decide() transitively reaches engine/graph/store internals, "
     "breaking robot anonymity"),
    ("A005", "observation-mutation", "--robot-model",
     "a decide/detects_termination hook mutates its Observation"),
    ("P001", "parse-error", "--deep/--effects/--robot-model",
     "a file under analysis does not parse (never baselined)"),
    ("B001", "stale-baseline-entry", "--deep/--effects/--robot-model",
     "an accepted baseline fingerprint is no longer produced by the "
     "tree"),
)


def render_rule_catalogue() -> str:
    """The ``--list-rules`` text: code, name and summary per rule."""
    lines = []
    for info in rule_catalogue():
        scope = ", ".join(info.scopes) if info.scopes else "all files"
        lines.append(f"{info.code}  {info.name}  [{scope}]")
        lines.append(f"      {info.summary}")
    lines.append("")
    lines.append("whole-program rules (not selectable with --select):")
    for code, name, mode, summary in WHOLE_PROGRAM_RULES:
        lines.append(f"{code}  {name}  [{mode}]")
        lines.append(f"      {summary}")
    return "\n".join(lines)
