"""Rendering of lint reports: human text and schema-stable JSON.

The JSON document is a machine interface (CI annotations, dashboards)
and is versioned like every other serialized artifact in this repo:
``format_version`` bumps on any key change, keys are emitted sorted, and
findings are sorted by location, so byte-identical trees produce
byte-identical reports.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.lint.engine import LintReport
from repro.lint.rules import rule_catalogue

REPORT_FORMAT_VERSION = 1


def report_to_dict(report: LintReport) -> Dict[str, Any]:
    """The schema-stable dict form of a report (see module docstring)."""
    return {
        "kind": "reprolint_report",
        "format_version": REPORT_FORMAT_VERSION,
        "ok": report.ok,
        "files_scanned": report.files_scanned,
        "suppressed": report.suppressed,
        "counts": dict(sorted(report.counts().items())),
        "findings": [finding.to_dict() for finding in report.findings],
    }


def render_json(report: LintReport) -> str:
    """The report as canonical JSON text (sorted keys, 2-space indent)."""
    return json.dumps(report_to_dict(report), indent=2, sort_keys=True)


def render_text(report: LintReport) -> str:
    """One line per finding plus a one-line summary."""
    lines: List[str] = [finding.render() for finding in report.findings]
    if report.ok:
        summary = (
            f"reprolint: {report.files_scanned} file(s) clean"
        )
    else:
        by_code = ", ".join(
            f"{code} x{count}"
            for code, count in sorted(report.counts().items())
        )
        summary = (
            f"reprolint: {len(report.findings)} finding(s) in "
            f"{report.files_scanned} file(s) ({by_code})"
        )
    if report.suppressed:
        summary += f", {report.suppressed} suppressed"
    lines.append(summary)
    return "\n".join(lines)


def render_rule_catalogue() -> str:
    """The ``--list-rules`` text: code, name and summary per rule."""
    lines = []
    for info in rule_catalogue():
        scope = ", ".join(info.scopes) if info.scopes else "all files"
        lines.append(f"{info.code}  {info.name}  [{scope}]")
        lines.append(f"      {info.summary}")
    return "\n".join(lines)
