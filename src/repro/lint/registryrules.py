"""R-rules: hygiene of the spec component registries.

:mod:`repro.sim.spec` resolves graphs, algorithms, byzantine policies
and activation schedules by *name*; a spec is only as reproducible as
those names are resolvable and their parameters serializable.  These
rules check registration sites statically: names must be grep-able
constants (R001), registered once (R002), and factories must accept the
calling convention the spec layer uses (R003) -- graph factories take
``(params, ctx)``, every other kind takes ``(params)``.

The module that *defines* a registry function (``def register_graph``)
is exempt from R001/R003 for calls to that function: the registry's own
decorator plumbing legitimately forwards computed names.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.findings import Finding, RuleInfo
from repro.lint.rules import ModuleContext, Rule, register_rule

#: Registry function name -> number of positional parameters the spec
#: layer calls the registered factory with.
REGISTRY_ARITY = {
    "register_graph": 2,
    "register_algorithm": 1,
    "register_byzantine": 1,
    "register_activation": 1,
    "register_scheduler": 1,
}


def _registry_call_name(context: ModuleContext, node: ast.Call) -> Optional[str]:
    """The registry function a call targets, or ``None``.

    Matches both ``register_graph(...)`` and ``spec.register_graph(...)``.
    """
    func = node.func
    if isinstance(func, ast.Name) and func.id in REGISTRY_ARITY:
        return func.id
    if isinstance(func, ast.Attribute) and func.attr in REGISTRY_ARITY:
        return func.attr
    return None


def _locally_defined_registries(tree: ast.Module) -> Set[str]:
    """Registry function names *defined* in this module (exempt callers)."""
    defined = set()
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name in REGISTRY_ARITY:
            defined.add(node.name)
    return defined


def _positional_param_range(fn: ast.AST) -> Optional[Tuple[int, int]]:
    """The ``(min, max)`` positional parameters a function/lambda accepts.

    Defaults widen the range downwards; ``None`` when the signature is
    open-ended (``*args``), which makes any calling convention fine.
    """
    if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        return None
    args = fn.args
    if args.vararg is not None:
        return None
    total = len(args.posonlyargs) + len(args.args)
    return total - len(args.defaults), total


class _RegistrationSites:
    """Shared walk: every registry call site in a module, pre-digested."""

    def __init__(self, context: ModuleContext) -> None:
        self.exempt = _locally_defined_registries(context.tree)
        #: ``(registry, call, name_node, factory_node, decorated_def)``
        self.sites: List[
            Tuple[str, ast.Call, Optional[ast.expr], Optional[ast.expr],
                  Optional[ast.FunctionDef]]
        ] = []
        #: module-level ``def``/``name = lambda`` bindings for R003 lookups
        self.local_functions: Dict[str, ast.AST] = {}
        for node in context.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.local_functions[node.name] = node
            elif isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Lambda
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.local_functions[target.id] = node.value
        decorator_calls = set()
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for decorator in node.decorator_list:
                    if not isinstance(decorator, ast.Call):
                        continue
                    registry = _registry_call_name(context, decorator)
                    if registry is None:
                        continue
                    decorator_calls.add(id(decorator))
                    name_node = (
                        decorator.args[0] if decorator.args else None
                    )
                    if isinstance(node, ast.FunctionDef):
                        self.sites.append(
                            (registry, decorator, name_node, None, node)
                        )
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call) and id(node) not in decorator_calls:
                registry = _registry_call_name(context, node)
                if registry is None:
                    continue
                name_node = node.args[0] if node.args else None
                factory = node.args[1] if len(node.args) > 1 else None
                self.sites.append((registry, node, name_node, factory, None))


@register_rule
class UnresolvableRegistryName(Rule):
    """R001: registry names must be static, grep-able constants."""

    info = RuleInfo(
        code="R001",
        name="unresolvable-registry-name",
        summary="component registered under a computed name",
        rationale=(
            "A spec references components by name; if the registered "
            "name is computed at runtime (f-string, call result), specs "
            "cannot be validated statically, the name cannot be "
            "grepped, and a rename silently orphans stored specs.  Use "
            "a string literal, or the conventional Class.name constant."
        ),
        example_bad='register_algorithm(make_name(variant), factory)',
        example_good='register_algorithm("dispersion_dynamic", factory)',
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        sites = _RegistrationSites(context)
        for registry, call, name_node, _factory, _decorated in sites.sites:
            if registry in sites.exempt:
                continue
            if name_node is None:
                continue
            if isinstance(name_node, ast.Constant) and isinstance(
                name_node.value, str
            ):
                continue
            if (
                isinstance(name_node, ast.Attribute)
                and name_node.attr == "name"
            ):
                # The Class.name convention: still a static constant.
                continue
            yield self.finding(
                context,
                name_node,
                f"{registry}() name is not a string literal or a "
                "Class.name constant; computed names are not "
                "statically resolvable",
            )


@register_rule
class DuplicateRegistration(Rule):
    """R002: a name must be registered at most once per registry."""

    info = RuleInfo(
        code="R002",
        name="duplicate-registration",
        summary="the same name registered twice in one module",
        rationale=(
            "Registries are last-writer-wins dicts; a duplicate "
            "registration silently shadows the earlier factory and "
            "changes what every stored spec under that name replays "
            "to.  Each (registry, name) pair must appear once."
        ),
        example_bad=(
            'register_graph("ring", make_ring)\n'
            'register_graph("ring", make_other_ring)'
        ),
        example_good='register_graph("ring_v2", make_other_ring)',
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        sites = _RegistrationSites(context)
        seen: Set[Tuple[str, str]] = set()
        for registry, _call, name_node, _factory, _decorated in sites.sites:
            if not (
                isinstance(name_node, ast.Constant)
                and isinstance(name_node.value, str)
            ):
                continue
            key = (registry, name_node.value)
            if key in seen:
                yield self.finding(
                    context,
                    name_node,
                    f"{registry}() name {name_node.value!r} is already "
                    "registered in this module; the later factory "
                    "silently shadows the earlier one",
                )
            seen.add(key)


@register_rule
class FactoryArityMismatch(Rule):
    """R003: factories must match the registry calling convention."""

    info = RuleInfo(
        code="R003",
        name="factory-arity-mismatch",
        summary="registered factory signature cannot be called by the spec layer",
        rationale=(
            "build_engine() calls graph factories as factory(params, "
            "ctx) and every other kind as factory(params).  A factory "
            "with the wrong arity registers fine and then raises "
            "TypeError only when the first spec referencing it runs -- "
            "checkable statically for lambdas and same-module defs."
        ),
        example_bad='register_graph("ring", lambda params: Ring(params))',
        example_good=(
            'register_graph("ring", lambda params, ctx: '
            "Ring(ctx.n, seed=ctx.seed))"
        ),
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        sites = _RegistrationSites(context)
        for registry, _call, _name, factory, decorated in sites.sites:
            if registry in sites.exempt:
                continue
            expected = REGISTRY_ARITY[registry]
            target: Optional[ast.AST] = None
            if decorated is not None:
                target = decorated
            elif isinstance(factory, ast.Lambda):
                target = factory
            elif isinstance(factory, ast.Name):
                target = sites.local_functions.get(factory.id)
            if target is None:
                continue
            accepted = _positional_param_range(target)
            if accepted is not None and not (
                accepted[0] <= expected <= accepted[1]
            ):
                label = (
                    "(params, ctx)" if expected == 2 else "(params)"
                )
                yield self.finding(
                    context,
                    factory if factory is not None else decorated,
                    f"{registry}() factory takes "
                    f"{accepted[0]}-{accepted[1]} positional "
                    f"parameter(s) but the spec layer calls it as "
                    f"factory{label}",
                )
