"""Rule base class, scope matching and the rule registry.

A rule is a :class:`Rule` subclass with a :class:`~repro.lint.findings.RuleInfo`
and a :meth:`Rule.check` that walks a parsed module and yields
:class:`~repro.lint.findings.Finding` s.  Rules declare *where they
apply* through path-scope patterns, so the same analyzer can lint the
library tree (where ``sim/spec.py`` is determinism-critical) and a test
fixture tree (where a file placed under ``<tmp>/sim/spec.py`` picks up
the same obligations).

Scope patterns come in two shapes:

* ``"robots/"`` -- a directory segment: matches any file under a
  directory of that name, at any depth;
* ``"sim/engine.py"`` -- a path suffix: matches that file wherever the
  tree is rooted.

The registry (:func:`register_rule` / :func:`all_rules`) is how the
engine discovers rules; rule modules register at import time, mirroring
the simulator's component registries in :mod:`repro.sim.spec`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Type

from repro.lint.findings import Finding, RuleInfo

#: Path scope of determinism-critical code: everything whose behaviour
#: feeds a :class:`~repro.sim.metrics.RunResult` and therefore a
#: content-addressed digest.  The run store and trace serialization are
#: included: a wall-clock or environment read there can leak into cache
#: entries or replay artifacts.
DETERMINISM_SCOPE = (
    "sim/engine.py",
    "sim/spec.py",
    "sim/algorithm.py",
    "sim/store.py",
    "sim/traceio.py",
    "sim/runner.py",
    "sim/scheduling.py",
    "robots/",
    "graph/",
    "core/",
    "baselines/",
    "adversary/",
    "chaos/",
)

#: Files inside a determinism scope that are exempt from the D rules:
#: the chaos package's injector shims *are* the nondeterminism (a
#: SIGKILL, a sleep) by design.  Exemption is deliberately surgical --
#: one file, not the package -- so the rest of :mod:`repro.chaos`
#: (plans, records, replay fingerprints) stays under the full
#: determinism obligations its seeded-replay contract requires.
DETERMINISM_EXEMPT = (
    "chaos/injectors.py",
)

#: Path scope of the digest pipeline itself: the modules whose
#: serialization choices decide what byte string gets hashed into a
#: :class:`~repro.sim.store.RunStore` key or stored under one.
CACHE_SCOPE = (
    "sim/spec.py",
    "sim/store.py",
    "sim/traceio.py",
)


def _path_matches(path: str, patterns: Sequence[str]) -> bool:
    normalized = path.replace("\\", "/")
    segments = normalized.split("/")
    for pattern in patterns:
        if pattern.endswith("/"):
            if pattern[:-1] in segments[:-1]:
                return True
        elif normalized == pattern or normalized.endswith("/" + pattern):
            return True
    return False


def path_in_scope(
    path: str, scopes: Sequence[str], exempt: Sequence[str] = ()
) -> bool:
    """Whether ``path`` falls under any of the scope patterns.

    An empty ``scopes`` means "everywhere".  ``exempt`` patterns (same
    shapes as scopes) carve files back *out* -- a path matching one is
    never in scope, even under empty-``scopes``.  ``path`` is compared
    in POSIX form, case-sensitively.
    """
    if exempt and _path_matches(path, exempt):
        return False
    if not scopes:
        return True
    return _path_matches(path, scopes)


@dataclass
class ModuleContext:
    """Everything a rule may consult about the module under analysis."""

    path: str
    tree: ast.Module
    source: str

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """The dotted form of a ``Name``/``Attribute`` chain, if it is one.

        ``time.time`` -> ``"time.time"``; ``datetime.datetime.now`` ->
        ``"datetime.datetime.now"``; anything rooted in a call or
        subscript returns ``None``.
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        return ".".join(reversed(parts))


class Rule:
    """Base class: one statically checkable invariant with a code.

    Subclasses set :attr:`info` and implement :meth:`check`.  A rule only
    runs on files matching ``info.scopes`` (empty = all files); the
    engine enforces that, so ``check`` can assume it is in scope.
    """

    info: RuleInfo

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        """Yield every violation of this rule in ``context``."""
        raise NotImplementedError

    def finding(
        self, context: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        """A :class:`Finding` for ``node`` carrying this rule's code."""
        return Finding(
            path=context.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            code=self.info.code,
            message=message,
        )


_RULES: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the registry, keyed by its code."""
    code = cls.info.code
    if code in _RULES:
        raise ValueError(f"duplicate lint rule code {code!r}")
    _RULES[code] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, ordered by code."""
    _load_rule_modules()
    return [_RULES[code]() for code in sorted(_RULES)]


def rule_catalogue() -> List[RuleInfo]:
    """The :class:`RuleInfo` of every registered rule, ordered by code."""
    _load_rule_modules()
    return [_RULES[code].info for code in sorted(_RULES)]


def select_rules(selectors: Optional[Iterable[str]]) -> List[Rule]:
    """Rules whose code starts with any selector (``None`` = all).

    Selectors are codes or code prefixes: ``["D"]`` picks the whole
    determinism family, ``["D001", "C"]`` picks one rule plus a family.
    Unknown selectors raise ``ValueError`` so typos fail loudly.
    """
    rules = all_rules()
    if selectors is None:
        return rules
    wanted = [s.strip() for s in selectors if s.strip()]
    known_codes = {rule.info.code for rule in rules}
    for selector in wanted:
        if not any(code.startswith(selector) for code in known_codes):
            raise ValueError(
                f"unknown rule selector {selector!r}; known codes: "
                f"{sorted(known_codes)}"
            )
    return [
        rule
        for rule in rules
        if any(rule.info.code.startswith(s) for s in wanted)
    ]


_RULE_MODULES_LOADED = False


def _load_rule_modules() -> None:
    """Import the rule modules once (they register on import)."""
    global _RULE_MODULES_LOADED
    if _RULE_MODULES_LOADED:
        return
    _RULE_MODULES_LOADED = True
    from repro.lint import cachesafety, determinism, hookrules, registryrules  # noqa: F401
