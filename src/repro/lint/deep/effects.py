"""Whole-program side-effect inference over the deep-analysis call graph.

Every indexed callable gets a :class:`FunctionEffects` summary answering
three questions the phase/hook/digest contracts need answered
*transitively*, not just syntactically:

* **which parameters does it mutate, and through which attribute
  path?** -- assignment / augmented-assignment / ``del`` targets whose
  root resolves to a parameter (directly or through a local alias like
  ``rr = payload`` or ``engine = self.engine``), subscript stores
  (``positions[r] = v`` mutates ``positions``), mutating method calls
  (``list.append``, ``dict.update``, ...) and numpy in-place forms
  (``arr += 1``, ``arr[mask] = 0``, ``arr.fill(0)``);
* **which module-level globals does it write?** -- stores through
  ``global`` declarations plus subscript/attribute/method mutation of
  module-level names;
* **does it perform I/O?** -- ``open``/``print``, the mutating
  ``os``/``shutil``/``subprocess`` entry points, and write-method calls.

Summaries start from a direct per-function pass (closures included: a
nested ``def``/``lambda`` mutating an enclosing function's parameter
charges the encloser too, mirroring the call graph's "defining precedes
invoking" heuristic), then propagate to a fixpoint along call edges.
Propagation binds call-site arguments to callee parameters using the
per-edge call expressions the graph records -- the receiver of a method
call binds parameter zero, ``functools.partial(f, x)`` binds ``x`` to
``f``'s first parameter, keyword arguments bind by name -- so a callee
that mutates its parameter charges the caller's *argument* at the right
attribute path (``helper(engine)`` mutating ``engine._positions`` makes
the caller a mutator of ``self.engine._positions``).  Edges without a
recorded call expression (registry dispatch, nested-def edges) propagate
only the receiver-independent effects: global writes and I/O.

Attribute paths are truncated at :data:`MAX_PATH` segments and each
summary is capped at :data:`MAX_EFFECTS` entries, which keeps the
abstract domain finite and the fixpoint terminating.  Every effect
carries a :class:`Witness` -- either the direct source location or a link
to the callee effect it was propagated from -- so the contract checker
(:mod:`~repro.lint.deep.contracts`) can render full call chains.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.lint.deep.callgraph import CallGraph, iter_own_nodes
from repro.lint.deep.modindex import FunctionInfo, ModuleInfo, _dotted
from repro.lint.hookrules import MUTATING_METHODS

#: Longest attribute path a mutation effect tracks; deeper stores are
#: truncated (over-approximating toward "mutates the prefix object").
MAX_PATH = 6

#: Per-function effect-set cap; beyond it the summary stops widening and
#: flags itself ``overflowed`` (soundness valve, never hit in this tree).
MAX_EFFECTS = 512

#: numpy in-place methods, charged like the stdlib container mutators.
NUMPY_INPLACE_METHODS = frozenset(
    {"fill", "put", "resize", "partition", "setflags", "itemset", "byteswap"}
)

MUTATOR_METHODS = frozenset(MUTATING_METHODS) | NUMPY_INPLACE_METHODS

#: Call names that perform I/O regardless of receiver.
IO_CALLS = frozenset(
    {
        "open",
        "print",
        "input",
        "os.remove",
        "os.unlink",
        "os.rename",
        "os.replace",
        "os.makedirs",
        "os.mkdir",
        "os.rmdir",
        "os.chmod",
        "os.symlink",
        "os.truncate",
        "shutil.move",
        "shutil.copy",
        "shutil.copy2",
        "shutil.copyfile",
        "shutil.copytree",
        "shutil.rmtree",
        "subprocess.run",
        "subprocess.Popen",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
    }
)

#: Method names that write through their receiver to the outside world.
IO_METHODS = frozenset(
    {"write", "writelines", "write_text", "write_bytes"}
)

#: Effect keys are tuples: ``("mut", param_index, attr_path)``,
#: ``("global", name)`` or ``("io", label)``.
EffectKey = Tuple


@dataclass(frozen=True)
class Witness:
    """Why a summary carries an effect: a source site or a callee link."""

    lineno: int
    col: int
    detail: str
    #: ``(callee qualname, callee effect key)`` when propagated; the
    #: chain renderer follows these links down to a direct site.
    via: Optional[Tuple[str, EffectKey]] = None


@dataclass
class FunctionEffects:
    """One callable's inferred side effects plus resolution context."""

    qualname: str
    #: declared parameter names (``self`` included for methods), in
    #: binding order: positional-only, positional, keyword-only,
    #: ``*args``, ``**kwargs``.
    params: Tuple[str, ...] = ()
    effects: Dict[EffectKey, Witness] = field(default_factory=dict)
    #: final local-alias map (``rr -> (param index, attr path)``), kept
    #: so propagation can resolve call arguments in caller context.
    aliases: Dict[str, Tuple[int, Tuple[str, ...]]] = field(
        default_factory=dict
    )
    #: module-level assigned names visible to this function.
    module_globals: FrozenSet[str] = frozenset()
    overflowed: bool = False

    def add(self, key: EffectKey, witness: Witness) -> bool:
        """Record ``key`` unless present/overflowed; True when added."""
        if key in self.effects:
            return False
        if len(self.effects) >= MAX_EFFECTS:
            self.overflowed = True
            return False
        self.effects[key] = witness
        return True

    def mutated_params(self) -> Iterator[Tuple[int, Tuple[str, ...]]]:
        """Every ``(param index, attr path)`` this callable mutates."""
        for key in self.effects:
            if key[0] == "mut":
                yield key[1], key[2]


def _param_names(node: ast.AST) -> Tuple[str, ...]:
    args = node.args  # type: ignore[attr-defined]
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return tuple(names)


def _peel(expr: ast.AST) -> Optional[Tuple[str, Tuple[str, ...]]]:
    """``(root name, attr path)`` of a Name/Attribute/Subscript chain.

    Subscripts contribute no path segment: an element of a container is
    tracked as the container itself (mutating ``d[k]`` mutates ``d``;
    mutating ``d[k].field`` over-approximates to ``d.field``'s family).
    """
    attrs: List[str] = []
    current = expr
    while True:
        if isinstance(current, ast.Attribute):
            attrs.append(current.attr)
            current = current.value
        elif isinstance(current, ast.Subscript):
            current = current.value
        else:
            break
    if not isinstance(current, ast.Name):
        return None
    return current.id, tuple(reversed(attrs))


def _module_level_names(module: ModuleInfo) -> FrozenSet[str]:
    names: Set[str] = set(module.registry_dicts)
    for node in module.tree.body:
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return frozenset(names)


def _ordered_nodes(root: ast.AST) -> List[ast.AST]:
    """A callable's own nodes in source order (aliases are flow-read)."""
    return sorted(
        iter_own_nodes(root),
        key=lambda n: (getattr(n, "lineno", 0), getattr(n, "col_offset", 0)),
    )


class _DirectPass:
    """One callable's syntactic effects, closures folded in."""

    def __init__(
        self, function: FunctionInfo, effects: FunctionEffects
    ) -> None:
        self.function = function
        self.effects = effects

    def run(self) -> None:
        node = self.function.node
        params = {
            name: index
            for index, name in enumerate(self.effects.params)
        }
        self._walk(node, params, self.effects.aliases, set())

    # -- scope walk ----------------------------------------------------

    def _walk(
        self,
        root: ast.AST,
        params: Dict[str, int],
        aliases: Dict[str, Tuple[int, Tuple[str, ...]]],
        declared_globals: Set[str],
    ) -> None:
        params = dict(params)
        declared_globals = set(declared_globals)
        nodes = _ordered_nodes(root)
        nested: List[ast.AST] = []
        for node in nodes:
            if isinstance(node, ast.Global):
                declared_globals.update(node.names)
        for node in nodes:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                nested.append(node)
                continue
            self._visit(node, params, aliases, declared_globals)
        # A closure mutating an enclosing parameter charges the encloser
        # (its own summary, built separately, charges it again -- the
        # over-approximation is deliberate).  The closure's own params
        # shadow the outer bindings.
        for child in nested:
            shadowed = set(_param_names(child))
            inner_params = {
                name: index
                for name, index in params.items()
                if name not in shadowed
            }
            inner_aliases = {
                name: origin
                for name, origin in aliases.items()
                if name not in shadowed
            }
            self._walk(child, inner_params, inner_aliases, declared_globals)

    # -- per-node dispatch ---------------------------------------------

    def _visit(
        self,
        node: ast.AST,
        params: Dict[str, int],
        aliases: Dict[str, Tuple[int, Tuple[str, ...]]],
        declared_globals: Set[str],
    ) -> None:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._store(target, node, params, aliases, declared_globals)
            if len(node.targets) == 1 and isinstance(
                node.targets[0], ast.Name
            ):
                self._rebind(
                    node.targets[0].id, node.value, params, aliases
                )
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._store(node.target, node, params, aliases, declared_globals)
            if isinstance(node.target, ast.Name):
                self._rebind(node.target.id, node.value, params, aliases)
        elif isinstance(node, ast.AugAssign):
            self._store(
                node.target,
                node,
                params,
                aliases,
                declared_globals,
                augmented=True,
            )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    self._store(
                        target, node, params, aliases, declared_globals
                    )
        elif isinstance(node, ast.Call):
            self._call(node, params, aliases, declared_globals)

    def _rebind(
        self,
        name: str,
        value: ast.AST,
        params: Dict[str, int],
        aliases: Dict[str, Tuple[int, Tuple[str, ...]]],
    ) -> None:
        """Track ``x = <param-rooted chain>`` aliases flow-forward."""
        if name in params:
            # Rebinding a parameter name severs it for the rest of the
            # (straight-line approximation of the) body.
            del params[name]
        peeled = _peel(value)
        origin = (
            self._origin(peeled[0], peeled[1], params, aliases)
            if peeled is not None and not isinstance(value, ast.Subscript)
            else None
        )
        if origin is not None:
            aliases[name] = origin
        else:
            aliases.pop(name, None)

    def _origin(
        self,
        root: str,
        attrs: Tuple[str, ...],
        params: Dict[str, int],
        aliases: Dict[str, Tuple[int, Tuple[str, ...]]],
    ) -> Optional[Tuple[int, Tuple[str, ...]]]:
        if root in params:
            return params[root], attrs[:MAX_PATH]
        if root in aliases:
            index, base = aliases[root]
            return index, (base + attrs)[:MAX_PATH]
        return None

    def _store(
        self,
        target: ast.AST,
        node: ast.AST,
        params: Dict[str, int],
        aliases: Dict[str, Tuple[int, Tuple[str, ...]]],
        declared_globals: Set[str],
        augmented: bool = False,
    ) -> None:
        if isinstance(target, ast.Name):
            # Plain rebinding mutates nothing -- except augmented
            # assignment, which is in-place for arrays and containers
            # (``arr += 1``), and stores through ``global``.
            if augmented and target.id in declared_globals:
                self._global_write(target.id, node, "augmented assignment")
            elif augmented:
                origin = self._origin(target.id, (), params, aliases)
                if origin is not None:
                    self._mutation(origin, node, "augmented assignment")
            return
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        peeled = _peel(target)
        if peeled is None:
            return
        root, attrs = peeled
        detail = (
            "augmented assignment"
            if augmented
            else "delete"
            if isinstance(node, ast.Delete)
            else "subscript store"
            if isinstance(target, ast.Subscript)
            else "attribute store"
        )
        origin = self._origin(root, attrs, params, aliases)
        if origin is not None:
            self._mutation(origin, node, detail)
        elif self._is_global(root, params, aliases, declared_globals):
            self._global_write(root, node, detail)

    def _call(
        self,
        node: ast.Call,
        params: Dict[str, int],
        aliases: Dict[str, Tuple[int, Tuple[str, ...]]],
        declared_globals: Set[str],
    ) -> None:
        func = node.func
        dotted = _dotted(func)
        if dotted in IO_CALLS:
            self._io(dotted, node)
            return
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in IO_METHODS:
            self._io(f".{func.attr}()", node)
        if func.attr not in MUTATOR_METHODS:
            return
        peeled = _peel(func.value)
        if peeled is None:
            return
        root, attrs = peeled
        detail = f"call to .{func.attr}()"
        origin = self._origin(root, attrs, params, aliases)
        if origin is not None:
            self._mutation(origin, node, detail)
        elif self._is_global(root, params, aliases, declared_globals):
            self._global_write(root, node, detail)

    # -- effect recording ----------------------------------------------

    def _is_global(
        self,
        root: str,
        params: Dict[str, int],
        aliases: Dict[str, Tuple[int, Tuple[str, ...]]],
        declared_globals: Set[str],
    ) -> bool:
        if root in declared_globals:
            return True
        return (
            root in self.effects.module_globals
            and root not in params
            and root not in aliases
            and root not in self._locally_bound()
        )

    def _locally_bound(self) -> Set[str]:
        cached = getattr(self, "_local_names", None)
        if cached is not None:
            return cached
        names: Set[str] = set()
        for node in ast.walk(self.function.node):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Store
            ):
                names.add(node.id)
        self._local_names = names
        return names

    def _mutation(
        self,
        origin: Tuple[int, Tuple[str, ...]],
        node: ast.AST,
        detail: str,
    ) -> None:
        index, path = origin
        self.effects.add(
            ("mut", index, path),
            Witness(
                getattr(node, "lineno", self.function.lineno),
                getattr(node, "col_offset", 0) + 1,
                detail,
            ),
        )

    def _global_write(self, name: str, node: ast.AST, detail: str) -> None:
        self.effects.add(
            ("global", f"{self.function.module.name}.{name}"),
            Witness(
                getattr(node, "lineno", self.function.lineno),
                getattr(node, "col_offset", 0) + 1,
                detail,
            ),
        )

    def _io(self, label: str, node: ast.AST) -> None:
        self.effects.add(
            ("io", label),
            Witness(
                getattr(node, "lineno", self.function.lineno),
                getattr(node, "col_offset", 0) + 1,
                f"call to {label}",
            ),
        )


def _bind_arguments(
    node: ast.Call, kind: str, callee_params: Tuple[str, ...]
) -> Dict[int, ast.AST]:
    """Map callee parameter indices to caller-side argument expressions."""
    mapping: Dict[int, ast.AST] = {}
    args = list(node.args)
    start = 0
    if kind == "partial":
        args = args[1:]
    elif kind == "method":
        if isinstance(node.func, ast.Attribute):
            mapping[0] = node.func.value
        start = 1
    elif kind == "ctor":
        start = 1  # the fresh instance binds self; nothing caller-side
    for offset, arg in enumerate(args):
        if isinstance(arg, ast.Starred):
            break
        mapping[start + offset] = arg
    for keyword in node.keywords:
        if keyword.arg is None:
            continue
        if keyword.arg in callee_params:
            mapping[callee_params.index(keyword.arg)] = keyword.value
    return mapping


def infer_effects(graph: CallGraph) -> Dict[str, FunctionEffects]:
    """Effect summaries for every indexed callable, fixpoint-propagated."""
    summaries: Dict[str, FunctionEffects] = {}
    module_globals: Dict[str, FrozenSet[str]] = {}
    for function in graph.index.functions.values():
        if not isinstance(
            function.node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
        ):
            continue
        module = function.module
        if module.name not in module_globals:
            module_globals[module.name] = _module_level_names(module)
        effects = FunctionEffects(
            qualname=function.qualname,
            params=_param_names(function.node),
            module_globals=module_globals[module.name],
        )
        _DirectPass(function, effects).run()
        summaries[function.qualname] = effects
    _propagate(graph, summaries)
    return summaries


def _propagate(
    graph: CallGraph, summaries: Dict[str, FunctionEffects]
) -> None:
    rounds = 0
    changed = True
    while changed and rounds < 64:
        changed = False
        rounds += 1
        for caller_name, callees in graph.edges.items():
            caller = summaries.get(caller_name)
            if caller is None:
                continue
            for callee_name, site in callees.items():
                if callee_name == caller_name:
                    continue
                callee = summaries.get(callee_name)
                if callee is None:
                    continue
                # Receiver-independent effects cross every edge,
                # including registry dispatch and nested-def edges.
                for key in list(callee.effects):
                    if key[0] not in ("global", "io"):
                        continue
                    if caller.add(
                        key,
                        Witness(
                            site.lineno,
                            site.col,
                            f"via {callee_name}",
                            via=(callee_name, key),
                        ),
                    ):
                        changed = True
                # Parameter mutations need an argument binding, so they
                # cross only edges with a recorded call expression.
                for call, kind in graph.call_exprs.get(
                    (caller_name, callee_name), ()
                ):
                    binding = _bind_arguments(call, kind, callee.params)
                    for index, path in list(callee.mutated_params()):
                        argument = binding.get(index)
                        if argument is None:
                            continue
                        peeled = _peel(argument)
                        if peeled is None:
                            continue
                        root, attrs = peeled
                        caller_params = {
                            name: i
                            for i, name in enumerate(caller.params)
                        }
                        origin = None
                        if root in caller_params:
                            origin = (caller_params[root], attrs)
                        elif root in caller.aliases:
                            base_index, base = caller.aliases[root]
                            origin = (base_index, base + attrs)
                        key: EffectKey
                        if origin is not None:
                            base_index, base_path = origin
                            key = (
                                "mut",
                                base_index,
                                (base_path + path)[:MAX_PATH],
                            )
                        elif root in caller.module_globals:
                            module = graph.index.functions[
                                caller_name
                            ].module
                            key = ("global", f"{module.name}.{root}")
                        else:
                            continue
                        if caller.add(
                            key,
                            Witness(
                                call.lineno,
                                call.col_offset + 1,
                                f"via {callee_name}",
                                via=(callee_name, ("mut", index, path)),
                            ),
                        ):
                            changed = True


def witness_chain(
    summaries: Dict[str, FunctionEffects],
    qualname: str,
    key: EffectKey,
) -> Tuple[List[str], Optional[Witness]]:
    """The call chain from ``qualname`` down to the direct mutation site.

    Returns ``(chain, direct)`` where ``chain`` starts at ``qualname``
    and ends at the function containing the direct effect, and
    ``direct`` is that effect's witness (None when the chain dead-ends,
    which only a malformed summary set can produce).
    """
    chain = [qualname]
    effects = summaries.get(qualname)
    witness = effects.effects.get(key) if effects is not None else None
    guard = 0
    while witness is not None and witness.via is not None and guard < 32:
        callee_name, callee_key = witness.via
        chain.append(callee_name)
        effects = summaries.get(callee_name)
        witness = (
            effects.effects.get(callee_key)
            if effects is not None
            else None
        )
        guard += 1
    return chain, witness
