"""Whole-program module indexing for the deep analysis pass.

The per-file rules in :mod:`repro.lint` see one module at a time; the
deep pass (``repro lint --deep``) needs to know, for *every* module in
the analyzed tree at once, what it defines, what it imports, and what it
re-exports -- that is the raw material the call-graph builder resolves
names against.

:func:`build_index` parses every ``*.py`` file under the given paths
exactly once and returns a :class:`ProjectIndex`:

* each module's dotted name is derived from the filesystem (walking up
  through ``__init__.py`` packages), so scanning ``src`` and scanning
  ``src/repro`` both index ``repro.sim.spec`` under the same name, and a
  synthetic fixture package under ``/tmp`` indexes the same way the real
  tree does;
* functions and methods are indexed by qualified name
  (``pkg.mod.func``, ``pkg.mod.Class.method``); lambdas get synthetic
  names (``pkg.mod.func.<lambda@LINE>``) so a registered factory lambda
  is a first-class call-graph node;
* imports (``import a.b as m``, ``from a.b import c as d``, relative
  forms) and simple module-level aliases (``helper = _impl``) are
  recorded per module, which is what lets the resolver follow
  re-exported names through package ``__init__`` modules;
* module-level names bound to empty dict displays are recorded as
  *registry candidates* -- the idiom :mod:`repro.sim.spec` uses for its
  component factories (``_GRAPH_FACTORIES = {}``).

Files that do not parse are skipped here and reported by the analysis
driver as ``P001`` findings, mirroring the shallow engine.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.lint.engine import iter_python_files

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.deep.cache import ModuleCache


@dataclass
class FunctionInfo:
    """One function, method or registered lambda in the analyzed tree."""

    qualname: str
    module: "ModuleInfo"
    node: ast.AST
    lineno: int
    class_name: Optional[str] = None

    @property
    def display(self) -> str:
        """The qualified name shown in taint-path chains."""
        return self.qualname


@dataclass
class ClassInfo:
    """One class definition plus its raw base-class names."""

    qualname: str
    module: "ModuleInfo"
    node: ast.ClassDef
    bases: Tuple[str, ...]
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """Everything the resolver may consult about one module."""

    name: str
    path: pathlib.Path
    display_path: str
    tree: ast.Module
    source: str
    #: local alias -> absolute dotted target (module or module.symbol)
    imports: Dict[str, str] = field(default_factory=dict)
    #: local name -> other local/imported dotted name (``x = y``)
    aliases: Dict[str, str] = field(default_factory=dict)
    #: local symbol path -> function (``func`` or ``Class.method``)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: local class name -> class
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level names bound to ``{}`` / ``dict()`` (registry idiom)
    registry_dicts: Set[str] = field(default_factory=set)

    @property
    def package(self) -> str:
        """The package the module's relative imports resolve against."""
        if self.path.name == "__init__.py":
            return self.name
        return self.name.rpartition(".")[0]


@dataclass
class ProjectIndex:
    """The fully indexed tree: every module, function and class."""

    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    parse_errors: List[Tuple[str, int, str]] = field(default_factory=list)

    @property
    def files_indexed(self) -> int:
        """How many modules parsed into the index."""
        return len(self.modules)


def module_name_for(path: pathlib.Path) -> str:
    """The dotted module name of ``path``, derived from the filesystem.

    Walks up through directories containing ``__init__.py`` to find the
    topmost package root, so the name is stable regardless of which
    ancestor directory the scan was rooted at.
    """
    path = path.resolve()
    parts: List[str] = []
    if path.name != "__init__.py":
        parts.append(path.stem)
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if not parts:
        parts.append(path.stem)
    return ".".join(reversed(parts))


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a ``Name``/``Attribute`` chain, else ``None``."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def _resolve_relative(package: str, level: int, module: Optional[str]) -> str:
    """The absolute module a ``from ... import`` statement targets."""
    if level == 0:
        return module or ""
    parts = package.split(".") if package else []
    if level > 1:
        parts = parts[: len(parts) - (level - 1)]
    if module:
        parts.extend(module.split("."))
    return ".".join(parts)


def _index_imports(info: ModuleInfo) -> None:
    for node in info.tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    info.imports[alias.asname] = alias.name
                else:
                    # ``import a.b`` binds ``a``; attribute access walks
                    # the rest of the dotted path.
                    root = alias.name.split(".", 1)[0]
                    info.imports[root] = root
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_relative(info.package, node.level, node.module)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.imports[local] = (
                    f"{base}.{alias.name}" if base else alias.name
                )


def _index_module_body(info: ModuleInfo, index: ProjectIndex) -> None:
    for node in info.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _add_function(info, index, node, node.name, None)
        elif isinstance(node, ast.ClassDef):
            _index_class(info, index, node)
        elif (
            isinstance(node, ast.Assign) and len(node.targets) == 1
        ) or (
            isinstance(node, ast.AnnAssign) and node.value is not None
        ):
            target = (
                node.targets[0]
                if isinstance(node, ast.Assign)
                else node.target
            )
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            assert value is not None
            if isinstance(value, ast.Dict) and not value.keys:
                info.registry_dicts.add(target.id)
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "dict"
                and not value.args
                and not value.keywords
            ):
                info.registry_dicts.add(target.id)
            else:
                dotted = _dotted(value)
                if dotted is not None and dotted != target.id:
                    info.aliases[target.id] = dotted


def _add_function(
    info: ModuleInfo,
    index: ProjectIndex,
    node: ast.AST,
    local_name: str,
    class_name: Optional[str],
) -> FunctionInfo:
    qualname = f"{info.name}.{local_name}"
    function = FunctionInfo(
        qualname=qualname,
        module=info,
        node=node,
        lineno=getattr(node, "lineno", 1),
        class_name=class_name,
    )
    info.functions[local_name] = function
    index.functions[qualname] = function
    return function


def _index_class(
    info: ModuleInfo, index: ProjectIndex, node: ast.ClassDef
) -> None:
    bases = tuple(
        dotted for dotted in (_dotted(base) for base in node.bases)
        if dotted is not None
    )
    cls = ClassInfo(
        qualname=f"{info.name}.{node.name}",
        module=info,
        node=node,
        bases=bases,
    )
    info.classes[node.name] = cls
    index.classes[cls.qualname] = cls
    for child in node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            method = _add_function(
                info, index, child, f"{node.name}.{child.name}", node.name
            )
            cls.methods[child.name] = method


def build_index(
    paths: Iterable[Union[str, pathlib.Path]],
    cache: Optional["ModuleCache"] = None,
) -> ProjectIndex:
    """Parse and index every Python file under ``paths`` once.

    With a :class:`~repro.lint.deep.cache.ModuleCache`, each module's
    AST is looked up by source content hash before parsing and stored
    after; an unchanged tree re-indexes without touching the parser.
    """
    index = ProjectIndex()
    for file_path in iter_python_files(paths):
        display = file_path.as_posix()
        source = file_path.read_text(encoding="utf-8")
        tree = cache.load(source) if cache is not None else None
        if tree is None:
            try:
                tree = ast.parse(source, filename=display)
            except SyntaxError as error:
                index.parse_errors.append(
                    (display, error.lineno or 1, error.msg or "syntax error")
                )
                continue
            if cache is not None:
                cache.store(source, tree)
        name = module_name_for(file_path)
        if name in index.modules:
            # Two files mapping to one dotted name (e.g. the same tree
            # scanned through two roots): first one wins, deduplicated.
            continue
        info = ModuleInfo(
            name=name,
            path=file_path,
            display_path=display,
            tree=tree,
            source=source,
        )
        index.modules[name] = info
        _index_imports(info)
        _index_module_body(info, index)
    return index
