"""Content-addressed disk cache for parsed module ASTs.

The deep and effects tiers re-parse the whole tree on every run; in CI
and in tight edit-lint loops almost nothing changed since the last run.
This cache keys each module's pickled AST by a hash of its *source
text* (plus a format version, the analyzer generation
:data:`ANALYZER_VERSION`, and the interpreter's minor version, since
pickled AST layouts differ across the latter two), so a cache entry can
never go stale -- an edited file, or an upgraded analyzer, simply
misses.

Entries live under ``.lint-cache/<hh>/<hash>.ast.pkl`` next to the
analyzed tree.  Writes go through a temp file + :func:`os.replace` so a
crashed run never leaves a truncated pickle; loads swallow *any*
exception and fall back to parsing, so a corrupt or cross-version entry
costs only the parse it would have cost anyway.  The directory is an
artifact, not a source of truth: it is safe to delete at any time and
belongs in ``.gitignore``.
"""

from __future__ import annotations

import ast
import hashlib
import os
import pathlib
import pickle
import sys
import tempfile
from typing import Optional

__all__ = [
    "ANALYZER_VERSION",
    "CACHE_FORMAT_VERSION",
    "DEFAULT_CACHE_DIR",
    "ModuleCache",
]

#: Bump when the cached payload's meaning changes (e.g. we start caching
#: derived per-module facts alongside the AST).
CACHE_FORMAT_VERSION = 1

#: Bump with every behavioural change to the whole-program analyzers or
#: their contract tables.  Part of the cache key, so an analyzer upgrade
#: invalidates every entry wholesale: nothing derived under the old
#: analyzer (now or in a future payload format that caches summaries)
#: can be served against the new one.
ANALYZER_VERSION = 2

#: Directory name used by the CLI (relative to the working tree).
DEFAULT_CACHE_DIR = ".lint-cache"


class ModuleCache:
    """Pickled-AST store keyed by source content hash.

    ``hits``/``misses`` counters make cache behaviour observable in
    tests and in ``--json`` tooling without any extra I/O.
    """

    def __init__(self, root: pathlib.Path) -> None:
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for(source: str) -> str:
        """Content hash for one module's source text."""
        preamble = (
            f"reprolint-cache:{CACHE_FORMAT_VERSION}"
            f":analyzer{ANALYZER_VERSION}"
            f":py{sys.version_info.major}.{sys.version_info.minor}\n"
        )
        return hashlib.sha256(
            (preamble + source).encode("utf-8")
        ).hexdigest()

    def _entry_path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.ast.pkl"

    def load(self, source: str) -> Optional[ast.Module]:
        """The cached AST for ``source``, or None on miss/corruption."""
        path = self._entry_path(self.key_for(source))
        try:
            with open(path, "rb") as handle:
                tree = pickle.load(handle)
        except Exception:
            # Missing, truncated, corrupt or cross-version entry: a
            # cache must never turn into a correctness problem, so any
            # failure at all is just a miss.
            self.misses += 1
            return None
        if not isinstance(tree, ast.Module):
            self.misses += 1
            return None
        self.hits += 1
        return tree

    def store(self, source: str, tree: ast.Module) -> None:
        """Persist ``tree`` under ``source``'s content hash."""
        path = self._entry_path(self.key_for(source))
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                mode="wb",
                dir=path.parent,
                prefix=path.name,
                suffix=".tmp",
                delete=False,
            )
            with handle:
                pickle.dump(tree, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(handle.name, path)
        except Exception:
            # Read-only tree, full disk, races -- the cache is best
            # effort; the analysis result is unaffected.
            try:
                os.unlink(handle.name)
            except Exception:
                pass
