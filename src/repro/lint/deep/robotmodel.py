"""Robot-model conformance checking: the A rule family.

The paper's results are statements about a *model* -- Theta(log k)
persistent bits per robot (Lemma 8), a strict global-vs-local
communication split (Theorems 1-2), and robots that see the world only
through their :class:`~repro.sim.observation.Observation`.  The runtime
enforces these per configuration (``audit_memory``, the engine's
comm-model fail-fast); this tier proves them over *all* code paths of
every algorithm class, the way :mod:`~repro.lint.deep.contracts` proves
the backend phase contracts.

* ``A001`` **hidden persistent state** -- an instance attribute written
  in ``decide``/``on_round_start``/``on_run_start`` (directly or through
  callee effect summaries) that survives between rounds but is never
  emitted by the class's ``persistent_state()``.  State the audit cannot
  see is state Lemma 8 cannot charge.  Exonerated: attributes the
  resolved ``persistent_state()`` reads, and round-temporary scratch --
  attributes unconditionally reassigned or ``.clear()``-ed at the top
  level of ``on_round_start()`` (in-round computation is free).
* ``A002`` **unbounded declared state** -- a field emitted by
  ``persistent_state()`` with no matching key in
  ``persistent_state_bounds()``.  The bit audit charges
  ``ceil(log2(bound+1))`` per bounded integer; a missing bound makes the
  field unchargeable.  Statically bool-valued fields are exempt (a bool
  costs one bit, no bound needed -- mirroring
  :func:`repro.robots.memory.bits_for_value`).
* ``A003`` **observation-scope violation** -- an algorithm declaring
  ``requires_communication = LOCAL`` reads a global-only
  ``Observation`` member, per the machine-readable
  :data:`repro.sim.observation.OBSERVATION_FIELD_SCOPES` table.  The
  read is followed through helpers the observation is passed to.
* ``A004`` **model escape** -- ``decide()`` transitively reaches
  engine/graph/store/adversary code: a robot reading simulator state
  outside the Observation surface breaks anonymity (node indices must
  never leak into decisions).
* ``A005`` **observation mutation** -- ``decide()`` or
  ``detects_termination()`` mutates its observation (via the effects
  engine); observations are shared, immutable-by-contract views.

Algorithm classes are found as ``RobotAlgorithm`` subclasses by base
chain, or by convention (``*Algorithm``/``*Dispersion`` naming with a
``decide`` method) so fixtures match without importing the real base.
All fingerprints are location-free: ``CODE|qualname|subject``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.deep.callgraph import (
    CallGraph,
    _Resolver,
    iter_own_nodes,
)
from repro.lint.deep.contracts import (
    _base_chain_names,
    _finding_site,
)
from repro.lint.deep.effects import (
    FunctionEffects,
    _bind_arguments,
    _peel,
)
from repro.lint.deep.modindex import ClassInfo, FunctionInfo
from repro.lint.findings import Finding
from repro.lint.rules import path_in_scope
from repro.sim.observation import OBSERVATION_FIELD_SCOPES

#: The hooks whose writes persist between rounds (A001 scope).
PERSISTENT_HOOKS: Tuple[str, ...] = (
    "decide",
    "on_round_start",
    "on_run_start",
)

#: The hooks handed an observation (A003/A005 scope).
OBSERVING_HOOKS: Tuple[str, ...] = ("decide", "detects_termination")

#: Module scopes `decide()` must never reach (A004): simulator internals
#: outside the Observation surface.  ``sim/observation.py`` and
#: ``sim/algorithm.py`` are the robot-visible surface and stay legal, as
#: does the pure packet-combinatorics layer in ``core/``.
ROBOT_FORBIDDEN_SCOPES: Tuple[str, ...] = (
    "sim/engine.py",
    "sim/backend.py",
    "sim/backend_vectorized.py",
    "sim/scheduling.py",
    "sim/hooks.py",
    "sim/traceio.py",
    "sim/spec.py",
    "sim/runner.py",
    "sim/store.py",
    "graph/",
    "store/",
    "runner/",
    "chaos/",
    "adversary/",
)


def check_robot_model(
    graph: CallGraph, summaries: Dict[str, FunctionEffects]
) -> List[Tuple[Finding, str]]:
    """Every A-rule finding (with baseline fingerprint) in the tree."""
    resolver = _Resolver(graph.index)
    results: List[Tuple[Finding, str]] = []
    seen_bounds_pairs: Set[Tuple[str, str]] = set()
    for name in sorted(graph.index.classes):
        cls = graph.index.classes[name]
        if not _is_algorithm_class(cls, resolver):
            continue
        results.extend(
            _check_hidden_state(graph, summaries, resolver, cls)
        )
        results.extend(
            _check_state_bounds(resolver, cls, seen_bounds_pairs)
        )
        results.extend(
            _check_observation_scope(graph, summaries, resolver, cls)
        )
        results.extend(_check_model_escape(graph, cls))
        results.extend(_check_observation_mutation(graph, summaries, cls))
    results.sort(key=lambda pair: (pair[0].path, pair[0].line, pair[0].code))
    return results


# ----------------------------------------------------------------------
# Class discovery
# ----------------------------------------------------------------------


def _is_algorithm_class(cls: ClassInfo, resolver: _Resolver) -> bool:
    """RobotAlgorithm subclasses, by base chain or naming convention."""
    if cls.node.name == "RobotAlgorithm":
        return False
    bases = _base_chain_names(cls, resolver)
    if "RobotAlgorithm" in bases:
        return True
    suffixes = ("Algorithm", "Dispersion")
    convention = cls.node.name.endswith(suffixes) or any(
        name.endswith(suffixes) for name in bases
    )
    return convention and resolver.resolve_method(cls, "decide") is not None


def _defining_class_name(function: FunctionInfo) -> Optional[str]:
    return function.class_name


# ----------------------------------------------------------------------
# A001: hidden persistent state
# ----------------------------------------------------------------------


def _self_reads(method: ast.AST) -> Set[str]:
    """Every ``self.<attr>`` referenced anywhere inside ``method``."""
    found: Set[str] = set()
    for node in ast.walk(method):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            found.add(node.attr)
    return found


def _round_reset_attrs(method: Optional[FunctionInfo]) -> Set[str]:
    """Attributes ``on_round_start`` unconditionally resets.

    A top-level ``self.attr = ...`` assignment or ``self.attr.clear()``
    call runs every round before any ``decide()``, so the attribute is
    round-temporary scratch -- free memory in the paper's accounting.
    Anything guarded (under ``if``/loops/``try``) does not count.
    """
    if method is None:
        return set()
    reset: Set[str] = set()
    for stmt in getattr(method.node, "body", []):
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    reset.add(target.attr)
        elif (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Attribute)
            and stmt.value.func.attr == "clear"
        ):
            peeled = _peel(stmt.value.func.value)
            if (
                peeled is not None
                and peeled[0] == "self"
                and len(peeled[1]) == 1
            ):
                reset.add(peeled[1][0])
    return reset


def _check_hidden_state(
    graph: CallGraph,
    summaries: Dict[str, FunctionEffects],
    resolver: _Resolver,
    cls: ClassInfo,
) -> Iterator[Tuple[Finding, str]]:
    state_method = resolver.resolve_method(cls, "persistent_state")
    declared = (
        _self_reads(state_method.node) if state_method is not None else set()
    )
    reset = _round_reset_attrs(
        resolver.resolve_method(cls, "on_round_start")
    )
    for hook in PERSISTENT_HOOKS:
        method = cls.methods.get(hook)
        if method is None:
            continue  # inherited hooks are checked on their definer
        effects = summaries.get(method.qualname)
        if effects is None:
            continue
        reported: Set[str] = set()
        for key in sorted(effects.effects, key=repr):
            if key[0] != "mut" or key[1] != 0 or not key[2]:
                continue
            attr = key[2][0]
            if attr in declared or attr in reset or attr in reported:
                continue
            reported.add(attr)
            path, line, col, chain = _finding_site(
                graph, summaries, method.qualname, key
            )
            yield (
                Finding(
                    path=path,
                    line=line,
                    column=col,
                    code="A001",
                    message=(
                        f"algorithm hook `{hook}` writes hidden "
                        f"persistent state `self.{attr}` that "
                        "persistent_state() never emits; the memory "
                        "audit (Lemma 8) cannot charge it -- declare "
                        "and bound it, or reset it unconditionally in "
                        f"on_round_start() -- chain: {chain}"
                    ),
                ),
                f"A001|{method.qualname}|{attr}",
            )


# ----------------------------------------------------------------------
# A002: declared state without a bound
# ----------------------------------------------------------------------


def _emitted_state_fields(method: ast.AST) -> Dict[str, ast.AST]:
    """``field name -> value expression`` a state method emits.

    Fields count where a dict literal carries a string key or a
    ``state["field"] = value`` store assigns one, anywhere in the body.
    """
    fields: Dict[str, ast.AST] = {}
    for node in ast.walk(method):
        if isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    fields[key.value] = value
        elif (
            isinstance(node, (ast.Assign, ast.AnnAssign))
            and getattr(node, "value", None) is not None
        ):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript):
                    index = target.slice
                    if isinstance(index, ast.Constant) and isinstance(
                        index.value, str
                    ):
                        fields[index.value] = node.value
    return fields


_BOOL_CALLS = frozenset({"bool", "any", "all", "isinstance"})


def _is_bool_valued(expr: ast.AST) -> bool:
    """Whether a field's value expression is statically boolean.

    Bool fields cost one bit in the runtime audit
    (:func:`repro.robots.memory.bits_for_value`) and need no declared
    bound, so A002 must not demand one.
    """
    if isinstance(expr, ast.Constant):
        return isinstance(expr.value, bool)
    if isinstance(expr, (ast.Compare, ast.BoolOp)):
        return True
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
        return True
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in _BOOL_CALLS:
            return True
        # ``d.get(key, False)``: a bool default marks a bool-valued map.
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "get"
            and len(expr.args) == 2
            and isinstance(expr.args[1], ast.Constant)
            and isinstance(expr.args[1].value, bool)
        ):
            return True
    return False


def _check_state_bounds(
    resolver: _Resolver,
    cls: ClassInfo,
    seen_pairs: Set[Tuple[str, str]],
) -> Iterator[Tuple[Finding, str]]:
    state_method = resolver.resolve_method(cls, "persistent_state")
    bounds_method = resolver.resolve_method(cls, "persistent_state_bounds")
    if state_method is None:
        return
    if _defining_class_name(state_method) == "RobotAlgorithm":
        return  # the abstract base's default pair is consistent
    bounds_qualname = (
        bounds_method.qualname if bounds_method is not None else "<none>"
    )
    pair = (state_method.qualname, bounds_qualname)
    if pair in seen_pairs:
        return  # subclasses inheriting the same pair re-derive nothing
    seen_pairs.add(pair)
    bounded = (
        set(_emitted_state_fields(bounds_method.node))
        if bounds_method is not None
        else set()
    )
    for name, value in sorted(_emitted_state_fields(state_method.node).items()):
        if name in bounded or _is_bool_valued(value):
            continue
        yield (
            Finding(
                path=state_method.module.display_path,
                line=getattr(value, "lineno", state_method.lineno),
                column=getattr(value, "col_offset", 0) + 1,
                code="A002",
                message=(
                    f"persistent field `{name}` emitted by "
                    f"`{state_method.qualname}` has no bound in "
                    "persistent_state_bounds(); the memory audit "
                    "charges ceil(log2(bound+1)) bits per field and "
                    "cannot account an unbounded one (Lemma 8)"
                ),
            ),
            f"A002|{state_method.qualname}|{name}",
        )


# ----------------------------------------------------------------------
# A003: observation-scope discipline under LOCAL communication
# ----------------------------------------------------------------------


def _declared_communication(
    cls: ClassInfo, resolver: _Resolver, seen: Optional[Set[str]] = None
) -> Optional[str]:
    """The ``requires_communication`` member name (``LOCAL``/``GLOBAL``).

    Resolved syntactically through the base chain: the class-body
    assignment's value is a dotted name whose last segment names the
    enum member, so fixtures match without importing the real enum.
    """
    seen = set() if seen is None else seen
    if cls.qualname in seen:
        return None
    seen.add(cls.qualname)
    for stmt in cls.node.body:
        targets: List[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        else:
            continue
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == "requires_communication"
                and getattr(stmt, "value", None) is not None
            ):
                peeled = _peel(stmt.value)
                if peeled is not None:
                    member = (peeled[1] or (peeled[0],))[-1]
                    return member.upper()
    for base in cls.bases:
        resolved = resolver.resolve(cls.module, base)
        if (
            resolved is not None
            and resolved[0] == "class"
            and isinstance(resolved[1], ClassInfo)
        ):
            found = _declared_communication(resolved[1], resolver, seen)
            if found is not None:
                return found
    return None


def _observation_param(effects: FunctionEffects) -> Optional[int]:
    """The observation's parameter index in a hook (first after self)."""
    return 1 if len(effects.params) >= 2 else None


def _global_field_reads(
    graph: CallGraph,
    summaries: Dict[str, FunctionEffects],
    entry: FunctionInfo,
) -> List[Tuple[str, List[str], ast.Attribute, FunctionInfo]]:
    """Global-scope ``Observation`` reads reachable from ``entry``.

    Worklist over ``(function, observation parameter)`` states: a direct
    ``obs.field`` read where the table scopes ``field`` global is a hit;
    a call forwarding the observation whole (``self._helper(obs)``)
    enqueues the callee with the bound parameter.  Straight-line local
    aliases (``view = observation``) are followed within each body.
    Returns ``(field, qualname chain, read site, containing function)``.
    """
    found: List[Tuple[str, List[str], ast.Attribute, FunctionInfo]] = []
    entry_effects = summaries.get(entry.qualname)
    if entry_effects is None:
        return found
    start = _observation_param(entry_effects)
    if start is None:
        return found
    queue: List[Tuple[FunctionInfo, int, List[str]]] = [
        (entry, start, [entry.qualname])
    ]
    visited: Set[Tuple[str, int]] = set()
    while queue:
        function, param_index, chain = queue.pop(0)
        if (function.qualname, param_index) in visited:
            continue
        visited.add((function.qualname, param_index))
        effects = summaries.get(function.qualname)
        if effects is None or param_index >= len(effects.params):
            continue
        obs_names = {effects.params[param_index]}
        nodes = sorted(
            iter_own_nodes(function.node),
            key=lambda n: (
                getattr(n, "lineno", 0),
                getattr(n, "col_offset", 0),
            ),
        )
        for node in nodes:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Name)
                and node.value.id in obs_names
            ):
                obs_names.add(node.targets[0].id)
        for node in nodes:
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in obs_names
                and OBSERVATION_FIELD_SCOPES.get(node.attr) == "global"
            ):
                found.append((node.attr, chain, node, function))
        for callee_name in sorted(graph.callees(function.qualname)):
            callee_effects = summaries.get(callee_name)
            callee_info = graph.index.functions.get(callee_name)
            if callee_effects is None or callee_info is None:
                continue
            for call, kind in graph.call_exprs.get(
                (function.qualname, callee_name), ()
            ):
                binding = _bind_arguments(call, kind, callee_effects.params)
                for index, argument in binding.items():
                    peeled = _peel(argument)
                    if (
                        peeled is not None
                        and not peeled[1]
                        and peeled[0] in obs_names
                    ):
                        queue.append(
                            (callee_info, index, chain + [callee_name])
                        )
    return found


def _check_observation_scope(
    graph: CallGraph,
    summaries: Dict[str, FunctionEffects],
    resolver: _Resolver,
    cls: ClassInfo,
) -> Iterator[Tuple[Finding, str]]:
    if _declared_communication(cls, resolver) != "LOCAL":
        return
    for hook in OBSERVING_HOOKS:
        method = resolver.resolve_method(cls, hook)
        if method is None or _defining_class_name(method) == "RobotAlgorithm":
            continue  # the abstract base's defaults are the GLOBAL model
        if hook not in cls.methods:
            # Inherited: only re-check when the definer itself is not a
            # LOCAL algorithm class (it was or will be checked there).
            definer_cls = method.module.classes.get(
                _defining_class_name(method) or ""
            )
            if (
                definer_cls is not None
                and _declared_communication(definer_cls, resolver) == "LOCAL"
            ):
                continue
        reported: Set[str] = set()
        for field, chain, node, container in _global_field_reads(
            graph, summaries, method
        ):
            if field in reported:
                continue
            reported.add(field)
            rendered = " -> ".join(chain)
            if len(chain) > 1:
                rendered += (
                    f" (reads observation.{field} at "
                    f"{container.module.display_path}:{node.lineno})"
                )
            yield (
                Finding(
                    path=method.module.display_path,
                    line=node.lineno
                    if container.qualname == method.qualname
                    else method.lineno,
                    column=node.col_offset + 1
                    if container.qualname == method.qualname
                    else 1,
                    code="A003",
                    message=(
                        f"`{cls.node.name}` declares "
                        "requires_communication = LOCAL but its "
                        f"`{hook}` reads the global-only observation "
                        f"field `{field}` "
                        "(OBSERVATION_FIELD_SCOPES); under local "
                        "communication that field carries only the "
                        "robot's own node -- chain: " + rendered
                    ),
                ),
                f"A003|{cls.qualname}.{hook}|{field}",
            )


# ----------------------------------------------------------------------
# A004: decide() escaping the Observation surface
# ----------------------------------------------------------------------


def _check_model_escape(
    graph: CallGraph, cls: ClassInfo
) -> Iterator[Tuple[Finding, str]]:
    method = cls.methods.get("decide")
    if method is None:
        return
    # BFS for shortest witness chains; parents reconstruct the path.
    parents: Dict[str, Optional[str]] = {method.qualname: None}
    queue: List[str] = [method.qualname]
    reported: Set[str] = set()
    while queue:
        current = queue.pop(0)
        for callee in sorted(graph.callees(current)):
            if callee in parents:
                continue
            parents[callee] = current
            target = graph.index.functions.get(callee)
            if target is None:
                continue
            display = target.module.display_path
            if path_in_scope(display, ROBOT_FORBIDDEN_SCOPES, ()):
                if display in reported:
                    continue
                reported.add(display)
                chain: List[str] = []
                walk: Optional[str] = callee
                while walk is not None:
                    chain.append(walk)
                    walk = parents[walk]
                chain.reverse()
                site = graph.callees(parents[callee] or method.qualname)[
                    callee
                ]
                yield (
                    Finding(
                        path=method.module.display_path,
                        line=site.lineno
                        if parents[callee] == method.qualname
                        else method.lineno,
                        column=site.col
                        if parents[callee] == method.qualname
                        else 1,
                        code="A004",
                        message=(
                            f"`{cls.node.name}.decide` transitively "
                            f"reaches simulator internals in {display}; "
                            "robots may only consult their Observation "
                            "(anonymity: node globals must never leak "
                            "into decisions) -- chain: "
                            + " -> ".join(chain)
                        ),
                    ),
                    f"A004|{method.qualname}|{display}",
                )
                continue  # report the boundary; don't walk past it
            queue.append(callee)


# ----------------------------------------------------------------------
# A005: observation mutation
# ----------------------------------------------------------------------


def _check_observation_mutation(
    graph: CallGraph,
    summaries: Dict[str, FunctionEffects],
    cls: ClassInfo,
) -> Iterator[Tuple[Finding, str]]:
    for hook in OBSERVING_HOOKS:
        method = cls.methods.get(hook)
        if method is None:
            continue
        effects = summaries.get(method.qualname)
        if effects is None:
            continue
        obs_index = _observation_param(effects)
        if obs_index is None:
            continue
        param = effects.params[obs_index]
        for key in sorted(effects.effects, key=repr):
            if key[0] != "mut" or key[1] != obs_index:
                continue
            path, line, col, chain = _finding_site(
                graph, summaries, method.qualname, key
            )
            yield (
                Finding(
                    path=path,
                    line=line,
                    column=col,
                    code="A005",
                    message=(
                        f"algorithm hook `{hook}` mutates its "
                        f"`{param}` observation; observations are "
                        "shared immutable views of the Communicate "
                        f"phase -- chain: {chain}"
                    ),
                ),
                f"A005|{method.qualname}|{param}",
            )
            break  # one finding per hook identifies the defect
