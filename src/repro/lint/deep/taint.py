"""Nondeterminism taint propagation along the call graph.

The shallow D-rules flag nondeterminism *sources* (wall-clock reads,
unseeded RNG, environment lookups) written directly inside the
deterministic core.  This pass closes the remaining gap: a helper in
any other module may contain such a source, and one innocent-looking
call from ``sim/spec.py`` is enough to leak it into a digest.

Seeds are collected per function body using the same detection logic as
the shallow rules -- and two additional ordering sources the per-file
rules deliberately leave to whole-program analysis, because they only
matter when the iteration result flows onward:

* filesystem enumeration order (``os.listdir``, ``os.scandir``,
  ``glob.glob``/``iglob``, ``Path.iterdir``/``glob``/``rglob``) unless
  the call is wrapped directly in ``sorted(...)``;
* iteration over a set display or ``set(...)``/``frozenset(...)`` call,
  whose order varies with interpreter hash randomization;
* builtin ``hash(...)``, which ``PYTHONHASHSEED`` perturbs.

A seed on a line carrying the matching shallow suppression
(``# reprolint: disable=D001`` for a wall-clock read, ``C003`` for a
builtin hash, ...) is treated as audited and does not taint -- that is
what keeps :mod:`repro.sim.store`'s three justified exemptions out of
the deep baseline.  ``disable=T001`` (or a bare ``disable``) works both
on the seed line and on the root call-site line of a reported chain.

:func:`trace_taint_paths` then runs a forward BFS from every function
defined in the deterministic core (``sim/engine.py``,
``sim/algorithm.py``, the engine backends in ``sim/backend.py`` /
``sim/backend_vectorized.py``, and the digest path in ``sim/spec.py`` /
``sim/store.py``) and reports, per (core function, seeded function)
pair, the shortest call chain connecting them.  Direct in-function
seeds (chain of length zero) are the shallow rules' business and are
not re-reported here.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.lint.deep.callgraph import CallGraph, CallSite, iter_own_nodes
from repro.lint.deep.modindex import FunctionInfo, _dotted
from repro.lint.determinism import GLOBAL_RANDOM_CALLS, WALL_CLOCK_CALLS
from repro.lint.engine import _suppressions
from repro.lint.rules import path_in_scope

#: The deterministic core: every function defined in these modules is a
#: taint root the propagator traces forward from.
CORE_PATHS: Tuple[str, ...] = (
    "sim/engine.py",
    "sim/algorithm.py",
    "sim/backend.py",
    "sim/backend_vectorized.py",
    "sim/spec.py",
    "sim/store.py",
)

#: Dotted call targets whose result order follows directory layout.
FS_ORDER_CALLS = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)

#: Path-object methods with filesystem-dependent result order.
FS_ORDER_METHODS = frozenset({"iterdir", "glob", "rglob"})

#: Seed kind -> the shallow rule code whose line suppression clears it.
#: Kinds absent here (ordering seeds) have no shallow counterpart and
#: can only be cleared with ``disable=T001``.
SEED_SHALLOW_CODE: Dict[str, str] = {
    "wall_clock": "D001",
    "unseeded_rng": "D002",
    "env_read": "D003",
    "builtin_hash": "C003",
}

TAINT_CODE = "T001"


@dataclass(frozen=True)
class Seed:
    """One nondeterminism source found inside a function body."""

    kind: str
    detail: str
    lineno: int
    col: int

    @property
    def label(self) -> str:
        """Human phrasing used in taint-path finding messages."""
        noun = {
            "wall_clock": "wall-clock read",
            "unseeded_rng": "unseeded randomness",
            "env_read": "environment read",
            "fs_order": "filesystem-order iteration",
            "set_iteration": "set-order iteration",
            "builtin_hash": "builtin hash()",
        }[self.kind]
        return f"{noun} `{self.detail}`"


@dataclass(frozen=True)
class TaintPath:
    """One shortest call chain from a core function to a seeded one."""

    chain: Tuple[str, ...]
    seed: Seed
    #: where the chain's first call appears inside the root function
    site: CallSite
    #: display path of the file holding the root function
    root_path: str
    #: display path of the file holding the seed
    seed_path: str

    @property
    def fingerprint(self) -> str:
        """Location-free identity used by the baseline snapshot."""
        return "|".join(
            (TAINT_CODE, "->".join(self.chain), self.seed.kind,
             self.seed.detail)
        )

    @property
    def message(self) -> str:
        """The full-chain finding message (format is pinned by tests)."""
        return (
            f"deterministic core reaches {self.seed.label}: "
            + " -> ".join(self.chain)
            + f"; source at {self.seed_path}:{self.seed.lineno}"
        )


def _line_suppressed(
    table: Dict[int, FrozenSet[str]], lineno: int, codes: Iterable[str]
) -> bool:
    active = table.get(lineno)
    if active is None:
        return False
    return "*" in active or any(code in active for code in codes)


def _sorted_wrapped(nodes: Iterable[ast.AST]) -> Set[int]:
    """ids of Call nodes appearing directly as a ``sorted(...)`` arg."""
    wrapped: Set[int] = set()
    for node in nodes:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sorted"
        ):
            for arg in node.args:
                if isinstance(arg, ast.Call):
                    wrapped.add(id(arg))
    return wrapped


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Set):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _call_seed(node: ast.Call) -> Optional[Tuple[str, str]]:
    """(kind, detail) when a call expression is itself a seed."""
    if isinstance(node.func, ast.Name) and node.func.id == "hash":
        return ("builtin_hash", "hash")
    dotted = _dotted(node.func)
    if dotted is None:
        return None
    if dotted in WALL_CLOCK_CALLS:
        return ("wall_clock", dotted)
    if dotted.startswith("random.") and (
        dotted.split(".", 1)[1] in GLOBAL_RANDOM_CALLS
    ):
        return ("unseeded_rng", dotted)
    if dotted == "random.Random" and not (node.args or node.keywords):
        return ("unseeded_rng", dotted)
    if dotted.startswith(("numpy.random.", "np.random.")):
        return ("unseeded_rng", dotted)
    if dotted in ("os.getenv", "os.environb.get"):
        return ("env_read", dotted)
    if dotted in FS_ORDER_CALLS:
        return ("fs_order", dotted)
    return None


def collect_seeds(function: FunctionInfo) -> List[Seed]:
    """Every nondeterminism source written directly in ``function``.

    Nested defs and lambdas are excluded -- they are their own
    call-graph nodes and collect their own seeds.
    """
    own = list(iter_own_nodes(function.node))
    sorted_wrapped = _sorted_wrapped(own)
    seeds: List[Seed] = []

    def add(kind: str, detail: str, node: ast.AST) -> None:
        seeds.append(
            Seed(
                kind=kind,
                detail=detail,
                lineno=getattr(node, "lineno", function.lineno),
                col=getattr(node, "col_offset", 0) + 1,
            )
        )

    for node in own:
        if isinstance(node, ast.Call):
            found = _call_seed(node)
            if found is not None:
                kind, detail = found
                if kind == "fs_order" and id(node) in sorted_wrapped:
                    continue
                add(kind, detail, node)
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in FS_ORDER_METHODS
                and _dotted(node.func) is None  # not glob.glob etc.
                and id(node) not in sorted_wrapped
            ):
                add("fs_order", f".{node.func.attr}", node)
        elif isinstance(node, ast.Attribute) and node.attr == "environ":
            if _dotted(node) == "os.environ":
                add("env_read", "os.environ", node)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if _is_set_expr(node.iter):
                add("set_iteration", "for-over-set", node.iter)
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for comp in node.generators:
                if _is_set_expr(comp.iter):
                    add("set_iteration", "for-over-set", comp.iter)
    return seeds


@dataclass
class TaintResult:
    """Taint paths plus bookkeeping for the report's suppression count."""

    paths: List[TaintPath]
    suppressed_seeds: int


def _suppression_tables(
    graph: CallGraph,
) -> Dict[str, Dict[int, FrozenSet[str]]]:
    return {
        name: _suppressions(module.source)
        for name, module in graph.index.modules.items()
    }


def trace_taint_paths(
    graph: CallGraph,
    core_paths: Tuple[str, ...] = CORE_PATHS,
) -> TaintResult:
    """All shortest core-to-seed call chains of length >= 1 edge."""
    tables = _suppression_tables(graph)
    suppressed_seeds = 0
    seeded: Dict[str, List[Seed]] = {}
    for qualname, function in graph.index.functions.items():
        table = tables.get(function.module.name, {})
        kept: List[Seed] = []
        for seed in collect_seeds(function):
            codes = [TAINT_CODE]
            shallow = SEED_SHALLOW_CODE.get(seed.kind)
            if shallow is not None:
                codes.append(shallow)
            if _line_suppressed(table, seed.lineno, codes):
                suppressed_seeds += 1
            else:
                kept.append(seed)
        if kept:
            seeded[qualname] = kept

    roots = [
        function
        for function in graph.index.functions.values()
        if path_in_scope(function.module.display_path, core_paths, ())
    ]
    paths: List[TaintPath] = []
    for root in sorted(roots, key=lambda f: f.qualname):
        paths.extend(_paths_from_root(graph, root, seeded))
    paths.sort(key=lambda p: (p.root_path, p.site.lineno, p.fingerprint))
    return TaintResult(paths=paths, suppressed_seeds=suppressed_seeds)


def _paths_from_root(
    graph: CallGraph,
    root: FunctionInfo,
    seeded: Dict[str, List[Seed]],
) -> List[TaintPath]:
    """BFS from ``root``; one shortest path per reachable seeded node."""
    parents: Dict[str, Optional[str]] = {root.qualname: None}
    order: List[str] = []
    queue = deque([root.qualname])
    while queue:
        current = queue.popleft()
        order.append(current)
        for callee in sorted(graph.callees(current)):
            if callee not in parents:
                parents[callee] = current
                queue.append(callee)
    paths: List[TaintPath] = []
    for qualname in order:
        if qualname == root.qualname or qualname not in seeded:
            continue
        chain: List[str] = []
        cursor: Optional[str] = qualname
        while cursor is not None:
            chain.append(cursor)
            cursor = parents[cursor]
        chain.reverse()
        site = graph.callees(chain[0]).get(chain[1])
        if site is None:  # pragma: no cover - BFS edge always recorded
            site = CallSite(root.lineno, 1)
        seed_function = graph.index.functions[qualname]
        for seed in sorted(
            seeded[qualname], key=lambda s: (s.lineno, s.col, s.detail)
        ):
            paths.append(
                TaintPath(
                    chain=tuple(chain),
                    seed=seed,
                    site=site,
                    root_path=root.module.display_path,
                    seed_path=seed_function.module.display_path,
                )
            )
    return paths
