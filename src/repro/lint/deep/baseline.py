"""The deep-analysis baseline snapshot (`lint-deep-baseline.json`).

Whole-program findings are about *drift*, not absolutes: the gate must
fail when a change introduces a new taint path, without demanding the
tree be finding-free from day one.  The baseline is the checked-in set
of accepted finding fingerprints; a deep run fails on

* **new** findings -- fingerprints present in the tree but not in the
  baseline (reported under their own codes, ``T001``/``F00x``), and
* **stale** entries -- baseline fingerprints no longer produced by the
  tree (reported as ``B001`` anchored at the baseline file), so a fixed
  path cannot silently linger as an accepted exemption.

Fingerprints are location-free (call-chain qualnames + seed identity,
never line numbers), so moving code within a file does not churn the
baseline.  The file format mirrors the JSON reporter's conventions:
``kind`` + ``format_version`` header, sorted keys, two-space indent,
trailing newline -- ``--update-baseline`` on an unchanged tree rewrites
the file byte-identically.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable, List, Set, Tuple, Union

BASELINE_KIND = "reprolint_deep_baseline"
BASELINE_FORMAT_VERSION = 1

#: Default location, resolved against the working directory (the repo
#: root in CI and normal use).
DEFAULT_BASELINE_PATH = "lint-deep-baseline.json"

#: The effects/contract tier keeps its own accepted-fingerprint file so
#: the two drift gates move independently.
DEFAULT_EFFECTS_BASELINE_PATH = "lint-effects-baseline.json"

#: The robot-model tier's accepted-fingerprint file (third drift gate).
DEFAULT_ROBOT_BASELINE_PATH = "lint-robot-baseline.json"

STALE_CODE = "B001"


class BaselineError(ValueError):
    """The baseline file exists but does not follow the schema."""


def render_baseline(fingerprints: Iterable[str]) -> str:
    """The canonical on-disk form of a baseline (sorted, deduplicated)."""
    document = {
        "kind": BASELINE_KIND,
        "format_version": BASELINE_FORMAT_VERSION,
        "entries": sorted(set(fingerprints)),
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def write_baseline(
    path: Union[str, pathlib.Path], fingerprints: Iterable[str]
) -> None:
    """Write the canonical baseline document to ``path``."""
    pathlib.Path(path).write_text(
        render_baseline(fingerprints), encoding="utf-8"
    )


def load_baseline(path: Union[str, pathlib.Path]) -> Set[str]:
    """The accepted fingerprints in ``path`` (raises on schema drift)."""
    text = pathlib.Path(path).read_text(encoding="utf-8")
    try:
        data = json.loads(text)
    except ValueError as error:
        raise BaselineError(
            f"baseline {path} does not parse as JSON: {error}"
        ) from error
    if not isinstance(data, dict) or data.get("kind") != BASELINE_KIND:
        raise BaselineError(
            f"baseline {path} is not a {BASELINE_KIND} document"
        )
    version = data.get("format_version")
    if version != BASELINE_FORMAT_VERSION:
        raise BaselineError(
            f"baseline {path} has format_version {version!r}; this "
            f"library reads version {BASELINE_FORMAT_VERSION}"
        )
    entries = data.get("entries")
    if not isinstance(entries, list) or not all(
        isinstance(entry, str) for entry in entries
    ):
        raise BaselineError(
            f"baseline {path} entries must be a list of strings"
        )
    return set(entries)


def diff_baseline(
    current: Set[str], accepted: Set[str]
) -> Tuple[List[str], List[str]]:
    """``(new, stale)`` fingerprints, each sorted for stable output."""
    return sorted(current - accepted), sorted(accepted - current)
