"""The deep-analysis driver behind ``repro lint --deep``.

Glues the subsystem together: index the tree
(:mod:`~repro.lint.deep.modindex`), build the call graph
(:mod:`~repro.lint.deep.callgraph`), trace taint paths
(:mod:`~repro.lint.deep.taint`), run the fork-safety checks
(:mod:`~repro.lint.deep.concurrency`), then reconcile everything
against the accepted baseline (:mod:`~repro.lint.deep.baseline`).

The outcome is an ordinary :class:`~repro.lint.engine.LintReport`, so
the existing text/JSON reporters and exit-code convention apply
unchanged; what the report *contains* is only the drift -- new findings
not in the baseline, plus ``B001`` entries for baseline fingerprints the
tree no longer produces.  Parse failures surface as ``P001`` exactly
like the shallow engine and are never baselined: an unparseable file
can't be proven taint-free.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.lint.deep.baseline import (
    DEFAULT_BASELINE_PATH,
    STALE_CODE,
    diff_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.deep.callgraph import CallGraph, build_call_graph
from repro.lint.deep.concurrency import check_fork_safety
from repro.lint.deep.modindex import build_index
from repro.lint.deep.taint import TAINT_CODE, trace_taint_paths
from repro.lint.engine import PARSE_ERROR_CODE, LintReport, _suppressions
from repro.lint.findings import Finding

#: Default scan roots for a deep run (whole-program analysis wants the
#: package tree, not tests/benchmarks).
DEEP_DEFAULT_PATHS: Tuple[str, ...] = ("src",)


@dataclass
class DeepResult:
    """A deep run's report plus the baseline reconciliation detail."""

    report: LintReport
    #: every fingerprint the tree currently produces
    fingerprints: Set[str] = field(default_factory=set)
    #: fingerprints reported as new (absent from the baseline)
    new: List[str] = field(default_factory=list)
    #: baseline fingerprints the tree no longer produces
    stale: List[str] = field(default_factory=list)
    #: how many findings the baseline accepted (matched, not reported)
    accepted: int = 0
    baseline_path: str = DEFAULT_BASELINE_PATH
    #: whether this run rewrote the baseline (``--update-baseline``)
    updated: bool = False
    call_graph: Optional[CallGraph] = None


def _suppressed(
    tables: Dict[str, Dict[int, FrozenSet[str]]], finding: Finding
) -> bool:
    table = tables.get(finding.path)
    if table is None:
        return False
    codes = table.get(finding.line)
    if codes is None:
        return False
    return "*" in codes or finding.code in codes


def run_deep_analysis(
    paths: Sequence[Union[str, pathlib.Path]] = DEEP_DEFAULT_PATHS,
    baseline_path: Union[str, pathlib.Path] = DEFAULT_BASELINE_PATH,
    update_baseline: bool = False,
) -> DeepResult:
    """Run the whole deep pass and reconcile it against the baseline.

    With ``update_baseline=True`` the current fingerprints are written
    to ``baseline_path`` and the report carries no drift findings (only
    ``P001`` parse errors, which can never be accepted).  Otherwise a
    missing baseline file behaves as an empty one: every fingerprint in
    the tree is new.
    """
    index = build_index(paths)
    graph = build_call_graph(index)
    tables = {
        module.display_path: _suppressions(module.source)
        for module in index.modules.values()
    }

    report = LintReport(
        files_scanned=index.files_indexed + len(index.parse_errors)
    )
    for display, lineno, message in index.parse_errors:
        report.findings.append(
            Finding(
                path=display,
                line=lineno,
                column=1,
                code=PARSE_ERROR_CODE,
                message=f"file does not parse: {message}",
            )
        )

    taint = trace_taint_paths(graph)
    report.suppressed += taint.suppressed_seeds
    candidates: List[Tuple[Finding, str]] = [
        (
            Finding(
                path=path.root_path,
                line=path.site.lineno,
                column=path.site.col,
                code=TAINT_CODE,
                message=path.message,
            ),
            path.fingerprint,
        )
        for path in taint.paths
    ]
    candidates.extend(check_fork_safety(index))

    fingerprints: Set[str] = set()
    fresh: List[Tuple[Finding, str]] = []
    for finding, fingerprint in candidates:
        if _suppressed(tables, finding):
            report.suppressed += 1
            continue
        if fingerprint in fingerprints:
            continue  # one report per accepted-or-not identity
        fingerprints.add(fingerprint)
        fresh.append((finding, fingerprint))

    result = DeepResult(
        report=report,
        fingerprints=fingerprints,
        baseline_path=str(baseline_path),
    )

    if update_baseline:
        write_baseline(baseline_path, fingerprints)
        result.updated = True
        result.accepted = len(fingerprints)
        report.findings.sort()
        result.call_graph = graph
        return result

    accepted: Set[str] = set()
    if pathlib.Path(baseline_path).exists():
        accepted = load_baseline(baseline_path)
    new, stale = diff_baseline(fingerprints, accepted)
    result.new = new
    result.stale = stale
    result.accepted = len(fingerprints & accepted)
    new_set = set(new)
    for finding, fingerprint in fresh:
        if fingerprint in new_set:
            report.findings.append(finding)
    for fingerprint in stale:
        report.findings.append(
            Finding(
                path=str(baseline_path),
                line=1,
                column=1,
                code=STALE_CODE,
                message=(
                    f"stale baseline entry no longer produced by the "
                    f"tree: {fingerprint}; re-run with "
                    "--update-baseline to drop it"
                ),
            )
        )
    report.findings.sort()
    result.call_graph = graph
    return result


def render_deep_summary(result: DeepResult) -> str:
    """A drift summary for humans (appended after the standard report).

    This is what makes the CI job failure readable: the added/removed
    fingerprints, one per line, without digging through full messages.
    """
    lines = [
        f"deep analysis: {len(result.fingerprints)} finding(s) in tree, "
        f"{result.accepted} accepted by baseline {result.baseline_path}"
    ]
    if result.updated:
        lines.append(f"baseline updated: {result.baseline_path}")
        return "\n".join(lines)
    for fingerprint in result.new:
        lines.append(f"  + new:   {fingerprint}")
    for fingerprint in result.stale:
        lines.append(f"  - stale: {fingerprint}")
    if not result.new and not result.stale:
        lines.append("  no drift against baseline")
    return "\n".join(lines)
