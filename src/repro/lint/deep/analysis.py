"""The whole-program drivers behind ``repro lint --deep``/``--effects``.

Glues the subsystem together: index the tree
(:mod:`~repro.lint.deep.modindex`), build the call graph
(:mod:`~repro.lint.deep.callgraph`), then either trace taint paths
(:mod:`~repro.lint.deep.taint`) plus the fork-safety checks
(:mod:`~repro.lint.deep.concurrency`) -- the ``--deep`` tier -- or
infer effect summaries (:mod:`~repro.lint.deep.effects`) and evaluate
the phase/hook/digest contracts (:mod:`~repro.lint.deep.contracts`) --
the ``--effects`` tier.  Both reconcile their findings against an
accepted baseline (:mod:`~repro.lint.deep.baseline`); each tier keeps
its own baseline file so their drift gates are independent.

The outcome is an ordinary :class:`~repro.lint.engine.LintReport`, so
the existing text/JSON reporters and exit-code convention apply
unchanged; what the report *contains* is only the drift -- new findings
not in the baseline, plus ``B001`` entries for baseline fingerprints the
tree no longer produces.  Parse failures surface as ``P001`` exactly
like the shallow engine and are never baselined: an unparseable file
can't be proven contract-clean.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.lint.deep.baseline import (
    DEFAULT_BASELINE_PATH,
    DEFAULT_EFFECTS_BASELINE_PATH,
    DEFAULT_ROBOT_BASELINE_PATH,
    STALE_CODE,
    diff_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.deep.cache import ModuleCache
from repro.lint.deep.callgraph import CallGraph, build_call_graph
from repro.lint.deep.concurrency import check_fork_safety
from repro.lint.deep.contracts import check_contracts
from repro.lint.deep.effects import infer_effects
from repro.lint.deep.modindex import ProjectIndex, build_index
from repro.lint.deep.robotmodel import check_robot_model
from repro.lint.deep.taint import TAINT_CODE, trace_taint_paths
from repro.lint.engine import PARSE_ERROR_CODE, LintReport, _suppressions
from repro.lint.findings import Finding

#: Default scan roots for a whole-program run (the analysis wants the
#: package tree, not tests/benchmarks).
DEEP_DEFAULT_PATHS: Tuple[str, ...] = ("src",)


@dataclass
class DeepResult:
    """A whole-program run's report plus baseline reconciliation detail."""

    report: LintReport
    #: every fingerprint the tree currently produces
    fingerprints: Set[str] = field(default_factory=set)
    #: fingerprints reported as new (absent from the baseline)
    new: List[str] = field(default_factory=list)
    #: baseline fingerprints the tree no longer produces
    stale: List[str] = field(default_factory=list)
    #: how many findings the baseline accepted (matched, not reported)
    accepted: int = 0
    baseline_path: str = DEFAULT_BASELINE_PATH
    #: whether this run rewrote the baseline (``--update-baseline``)
    updated: bool = False
    call_graph: Optional[CallGraph] = None
    #: which tier produced this result (drives the summary header)
    label: str = "deep analysis"


def _suppressed(
    tables: Dict[str, Dict[int, FrozenSet[str]]], finding: Finding
) -> bool:
    table = tables.get(finding.path)
    if table is None:
        return False
    codes = table.get(finding.line)
    if codes is None:
        return False
    return "*" in codes or finding.code in codes


def _report_for(index: ProjectIndex) -> LintReport:
    """A fresh report pre-seeded with the tree's ``P001`` parse errors."""
    report = LintReport(
        files_scanned=index.files_indexed + len(index.parse_errors)
    )
    for display, lineno, message in index.parse_errors:
        report.findings.append(
            Finding(
                path=display,
                line=lineno,
                column=1,
                code=PARSE_ERROR_CODE,
                message=f"file does not parse: {message}",
            )
        )
    return report


def _reconcile(
    result: DeepResult,
    candidates: List[Tuple[Finding, str]],
    index: ProjectIndex,
    baseline_path: Union[str, pathlib.Path],
    update_baseline: bool,
) -> DeepResult:
    """Screen candidates, then update or diff the accepted baseline."""
    report = result.report
    tables = {
        module.display_path: _suppressions(module.source)
        for module in index.modules.values()
    }
    fresh: List[Tuple[Finding, str]] = []
    for finding, fingerprint in candidates:
        if _suppressed(tables, finding):
            report.suppressed += 1
            continue
        if fingerprint in result.fingerprints:
            continue  # one report per accepted-or-not identity
        result.fingerprints.add(fingerprint)
        fresh.append((finding, fingerprint))

    if update_baseline:
        write_baseline(baseline_path, result.fingerprints)
        result.updated = True
        result.accepted = len(result.fingerprints)
        report.findings.sort()
        return result

    accepted: Set[str] = set()
    if pathlib.Path(baseline_path).exists():
        accepted = load_baseline(baseline_path)
    new, stale = diff_baseline(result.fingerprints, accepted)
    result.new = new
    result.stale = stale
    result.accepted = len(result.fingerprints & accepted)
    new_set = set(new)
    for finding, fingerprint in fresh:
        if fingerprint in new_set:
            report.findings.append(finding)
    for fingerprint in stale:
        report.findings.append(
            Finding(
                path=str(baseline_path),
                line=1,
                column=1,
                code=STALE_CODE,
                message=(
                    f"stale baseline entry no longer produced by the "
                    f"tree: {fingerprint}; re-run with "
                    "--update-baseline to drop it"
                ),
            )
        )
    report.findings.sort()
    return result


def run_deep_analysis(
    paths: Sequence[Union[str, pathlib.Path]] = DEEP_DEFAULT_PATHS,
    baseline_path: Union[str, pathlib.Path] = DEFAULT_BASELINE_PATH,
    update_baseline: bool = False,
    cache: Optional[ModuleCache] = None,
) -> DeepResult:
    """Run the taint/fork-safety pass and reconcile it with its baseline.

    With ``update_baseline=True`` the current fingerprints are written
    to ``baseline_path`` and the report carries no drift findings (only
    ``P001`` parse errors, which can never be accepted).  Otherwise a
    missing baseline file behaves as an empty one: every fingerprint in
    the tree is new.
    """
    index = build_index(paths, cache=cache)
    graph = build_call_graph(index)
    report = _report_for(index)

    taint = trace_taint_paths(graph)
    report.suppressed += taint.suppressed_seeds
    candidates: List[Tuple[Finding, str]] = [
        (
            Finding(
                path=path.root_path,
                line=path.site.lineno,
                column=path.site.col,
                code=TAINT_CODE,
                message=path.message,
            ),
            path.fingerprint,
        )
        for path in taint.paths
    ]
    candidates.extend(check_fork_safety(index))

    result = DeepResult(
        report=report,
        baseline_path=str(baseline_path),
        call_graph=graph,
        label="deep analysis",
    )
    return _reconcile(result, candidates, index, baseline_path, update_baseline)


def run_effects_analysis(
    paths: Sequence[Union[str, pathlib.Path]] = DEEP_DEFAULT_PATHS,
    baseline_path: Union[str, pathlib.Path] = DEFAULT_EFFECTS_BASELINE_PATH,
    update_baseline: bool = False,
    cache: Optional[ModuleCache] = None,
) -> DeepResult:
    """Run the effect-inference/contract pass against its own baseline.

    Same reconciliation semantics as :func:`run_deep_analysis`, but the
    candidates come from :func:`~repro.lint.deep.contracts.check_contracts`
    evaluated over :func:`~repro.lint.deep.effects.infer_effects`
    summaries, and the default baseline file is
    ``lint-effects-baseline.json`` so the two gates drift independently.
    """
    index = build_index(paths, cache=cache)
    graph = build_call_graph(index)
    report = _report_for(index)

    summaries = infer_effects(graph)
    candidates = check_contracts(graph, summaries)

    result = DeepResult(
        report=report,
        baseline_path=str(baseline_path),
        call_graph=graph,
        label="effects analysis",
    )
    return _reconcile(result, candidates, index, baseline_path, update_baseline)


def run_robot_model_analysis(
    paths: Sequence[Union[str, pathlib.Path]] = DEEP_DEFAULT_PATHS,
    baseline_path: Union[str, pathlib.Path] = DEFAULT_ROBOT_BASELINE_PATH,
    update_baseline: bool = False,
    cache: Optional[ModuleCache] = None,
) -> DeepResult:
    """Run the robot-model conformance pass against its own baseline.

    Same reconciliation semantics as :func:`run_deep_analysis`; the
    candidates come from
    :func:`~repro.lint.deep.robotmodel.check_robot_model` evaluated over
    effect summaries, and the default baseline file is
    ``lint-robot-baseline.json`` -- the third independent drift gate.
    """
    index = build_index(paths, cache=cache)
    graph = build_call_graph(index)
    report = _report_for(index)

    summaries = infer_effects(graph)
    candidates = check_robot_model(graph, summaries)

    result = DeepResult(
        report=report,
        baseline_path=str(baseline_path),
        call_graph=graph,
        label="robot-model analysis",
    )
    return _reconcile(result, candidates, index, baseline_path, update_baseline)


def render_deep_summary(result: DeepResult) -> str:
    """A drift summary for humans (appended after the standard report).

    This is what makes the CI job failure readable: the added/removed
    fingerprints, one per line, without digging through full messages.
    """
    lines = [
        f"{result.label}: {len(result.fingerprints)} finding(s) in tree, "
        f"{result.accepted} accepted by baseline {result.baseline_path}"
    ]
    if result.updated:
        lines.append(f"baseline updated: {result.baseline_path}")
        return "\n".join(lines)
    for fingerprint in result.new:
        lines.append(f"  + new:   {fingerprint}")
    for fingerprint in result.stale:
        lines.append(f"  - stale: {fingerprint}")
    if not result.new and not result.stale:
        lines.append("  no drift against baseline")
    return "\n".join(lines)
