"""Fork-safety checks for the process-pool runner modules.

The runners (:mod:`repro.sim.runner`, :mod:`repro.chaos.runner`) hand
work to ``multiprocessing`` workers.  On the default ``fork`` start
method the child inherits a snapshot of the parent's memory, which makes
three patterns quietly unsafe:

* **F001** -- a function writing a mutable module-level global after
  import.  Parent-side mutations after workers fork are invisible to
  them (and vice versa), so the "shared" state silently diverges.
* **F002** -- a file handle opened at module import time.  Both sides of
  the fork inherit the same file descriptor and offset; interleaved
  writes corrupt, interleaved reads skip.
* **F003** -- a lock held *around* atomic-rename staging
  (``os.replace`` / ``os.rename`` / ``shutil.move``).  The rename is the
  atomicity mechanism; wrapping it in a lock adds nothing in-process and
  deadlocks a child forked while the parent held the lock.

These run only inside ``repro lint --deep`` (they need no call graph,
but they share the deep pass's baseline and reporting); shallow lint
output is unchanged.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.lint.deep.modindex import ModuleInfo, ProjectIndex, _dotted
from repro.lint.findings import Finding
from repro.lint.rules import path_in_scope

#: The fork-boundary modules the F-rules apply to.
FORK_SCOPE: Tuple[str, ...] = ("sim/runner.py", "chaos/runner.py")

#: Methods that mutate a list/dict/set in place.
_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
    }
)

#: Module-level calls that open a shared file handle at import time.
_OPEN_CALLS = frozenset({"open", "io.open", "gzip.open", "bz2.open"})

#: The atomic-staging renames F003 guards.
_RENAME_CALLS = frozenset({"os.replace", "os.rename", "shutil.move"})


def _module_level_mutables(module: ModuleInfo) -> Set[str]:
    """Module-level names bound to mutable list/dict/set displays."""
    names: Set[str] = set()
    for node in module.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        mutable = isinstance(
            value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                    ast.SetComp)
        ) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("list", "dict", "set", "defaultdict")
        )
        if not mutable:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _iter_function_nodes(module: ModuleInfo) -> Iterator[ast.AST]:
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _walk_module_scope(module: ModuleInfo) -> Iterator[ast.AST]:
    """Walk code executed at import time (function bodies excluded)."""
    stack: List[ast.AST] = list(module.tree.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _check_global_writes(
    module: ModuleInfo,
) -> Iterator[Tuple[Finding, str]]:
    mutables = _module_level_mutables(module)
    for function in _iter_function_nodes(module):
        declared: Set[str] = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Global):
                declared.update(node.names)
        for node in ast.walk(function):
            name = None
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and (
                        target.id in declared
                    ):
                        name = target.id
                    elif (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in mutables
                    ):
                        name = target.value.id
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in mutables
            ):
                name = node.func.value.id
            if name is None:
                continue
            yield (
                Finding(
                    path=module.display_path,
                    line=getattr(node, "lineno", 1),
                    column=getattr(node, "col_offset", 0) + 1,
                    code="F001",
                    message=(
                        f"module-level global `{name}` mutated after "
                        "import inside a fork-boundary module; forked "
                        "workers hold a stale copy -- pass state through "
                        "work-unit payloads instead"
                    ),
                ),
                f"F001|{module.name}|{name}",
            )


def _check_import_time_handles(
    module: ModuleInfo,
) -> Iterator[Tuple[Finding, str]]:
    for node in _walk_module_scope(module):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted not in _OPEN_CALLS:
            continue
        yield (
            Finding(
                path=module.display_path,
                line=node.lineno,
                column=node.col_offset + 1,
                code="F002",
                message=(
                    f"`{dotted}(...)` at import time in a fork-boundary "
                    "module; the file descriptor (and its offset) is "
                    "shared across the fork -- open handles inside the "
                    "function that uses them"
                ),
            ),
            f"F002|{module.name}|{dotted}",
        )


def _lockish(expr: ast.AST) -> str:
    """The dotted name of a lock-like context manager, else ``''``."""
    target = expr.func if isinstance(expr, ast.Call) else expr
    dotted = _dotted(target)
    if dotted is not None and "lock" in dotted.lower():
        return dotted
    return ""


def _check_locked_renames(
    module: ModuleInfo,
) -> Iterator[Tuple[Finding, str]]:
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        lock = ""
        for item in node.items:
            lock = lock or _lockish(item.context_expr)
        if not lock:
            continue
        for inner in ast.walk(node):
            if not isinstance(inner, ast.Call):
                continue
            dotted = _dotted(inner.func)
            if dotted not in _RENAME_CALLS:
                continue
            yield (
                Finding(
                    path=module.display_path,
                    line=inner.lineno,
                    column=inner.col_offset + 1,
                    code="F003",
                    message=(
                        f"`{dotted}(...)` inside `with {lock}`; the "
                        "atomic rename is the consistency mechanism and "
                        "needs no lock -- holding one here deadlocks a "
                        "worker forked while the parent owns it"
                    ),
                ),
                f"F003|{module.name}|{dotted}",
            )


def check_fork_safety(
    index: ProjectIndex,
    scope: Tuple[str, ...] = FORK_SCOPE,
) -> List[Tuple[Finding, str]]:
    """All F-rule findings (with baseline fingerprints) in scope."""
    results: List[Tuple[Finding, str]] = []
    for module in index.modules.values():
        if not path_in_scope(module.display_path, scope, ()):
            continue
        results.extend(_check_global_writes(module))
        results.extend(_check_import_time_handles(module))
        results.extend(_check_locked_renames(module))
    results.sort(key=lambda pair: (pair[0].path, pair[0].line, pair[0].code))
    return results
