"""Whole-program deep analysis (``repro lint --deep``).

Layers, bottom to top:

* :mod:`~repro.lint.deep.modindex` -- parse every module once, index
  definitions, imports, aliases and registry dicts;
* :mod:`~repro.lint.deep.callgraph` -- resolve calls (including
  ``self.`` dispatch, re-exports and registry factories) into a
  whole-program call graph;
* :mod:`~repro.lint.deep.taint` -- seed nondeterminism sources and
  trace every call chain from the deterministic core to one;
* :mod:`~repro.lint.deep.concurrency` -- fork-safety checks on the
  runner modules;
* :mod:`~repro.lint.deep.effects` -- per-function side-effect summaries
  (parameter mutation, global writes, I/O) propagated through the call
  graph to a fixpoint;
* :mod:`~repro.lint.deep.contracts` -- the E/M/S contract rules
  evaluated over those summaries (``repro lint --effects``);
* :mod:`~repro.lint.deep.robotmodel` -- the A rule family: robot-model
  conformance of algorithm classes (``repro lint --robot-model``);
* :mod:`~repro.lint.deep.cache` -- content-addressed AST cache that
  lets repeated runs skip re-parsing unchanged modules;
* :mod:`~repro.lint.deep.baseline` -- the accepted-fingerprint snapshot
  that turns absolute findings into a drift gate;
* :mod:`~repro.lint.deep.analysis` -- the drivers the CLI calls.
"""

from repro.lint.deep.analysis import (
    DEEP_DEFAULT_PATHS,
    DeepResult,
    render_deep_summary,
    run_deep_analysis,
    run_effects_analysis,
    run_robot_model_analysis,
)
from repro.lint.deep.baseline import (
    BASELINE_FORMAT_VERSION,
    BASELINE_KIND,
    DEFAULT_BASELINE_PATH,
    DEFAULT_EFFECTS_BASELINE_PATH,
    DEFAULT_ROBOT_BASELINE_PATH,
    BaselineError,
    diff_baseline,
    load_baseline,
    render_baseline,
    write_baseline,
)
from repro.lint.deep.cache import (
    ANALYZER_VERSION,
    CACHE_FORMAT_VERSION,
    DEFAULT_CACHE_DIR,
    ModuleCache,
)
from repro.lint.deep.contracts import check_contracts
from repro.lint.deep.robotmodel import check_robot_model
from repro.lint.deep.effects import (
    FunctionEffects,
    Witness,
    infer_effects,
    witness_chain,
)
from repro.lint.deep.callgraph import CallGraph, CallSite, build_call_graph
from repro.lint.deep.modindex import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    build_index,
    module_name_for,
)
from repro.lint.deep.taint import (
    CORE_PATHS,
    Seed,
    TaintPath,
    collect_seeds,
    trace_taint_paths,
)

__all__ = [
    "ANALYZER_VERSION",
    "BASELINE_FORMAT_VERSION",
    "BASELINE_KIND",
    "BaselineError",
    "CACHE_FORMAT_VERSION",
    "CORE_PATHS",
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "DEEP_DEFAULT_PATHS",
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_EFFECTS_BASELINE_PATH",
    "DEFAULT_ROBOT_BASELINE_PATH",
    "DeepResult",
    "FunctionEffects",
    "FunctionInfo",
    "ModuleCache",
    "ModuleInfo",
    "ProjectIndex",
    "Seed",
    "TaintPath",
    "Witness",
    "build_call_graph",
    "build_index",
    "check_contracts",
    "check_robot_model",
    "collect_seeds",
    "diff_baseline",
    "infer_effects",
    "load_baseline",
    "module_name_for",
    "render_baseline",
    "render_deep_summary",
    "run_deep_analysis",
    "run_effects_analysis",
    "run_robot_model_analysis",
    "trace_taint_paths",
    "witness_chain",
    "write_baseline",
]
