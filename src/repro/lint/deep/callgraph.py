"""Import-resolving call-graph construction over a :class:`ProjectIndex`.

The graph's nodes are the indexed functions (methods, nested functions
and lambdas included -- nested callables get an edge from their encloser,
since defining one almost always precedes calling it in the same dynamic
extent).  Edges are added for every call whose target the resolver can
pin down statically:

* plain names and dotted paths, through each module's import table and
  simple aliases, including re-exports through package ``__init__``
  modules (``from pkg.impl import helper`` makes ``pkg.helper()``
  resolve to ``pkg.impl.helper``);
* ``self.method()`` / ``cls.method()`` inside a class, with method
  resolution through statically named base classes;
* ``x.method()`` where ``x`` was assigned a constructor call of a
  resolvable class earlier in the same function body (one-pass local
  type inference);
* constructor calls, which edge to the class's ``__init__`` (resolved
  through bases);
* ``functools.partial(f, ...)`` construction, which edges the builder
  to ``f`` (constructing a partial nearly always precedes invoking it
  in the same dynamic extent, mirroring the nested-def heuristic) and
  lets a partial passed to a registrar register the wrapped callable;
* **registry dispatch**: a function that registers callables into a
  module-level dict (``_FACTORIES[name] = factory``) marks that dict as
  a registry; every call site of the registrar -- including decorator
  form ``@register("name")`` -- records the registered factory, and any
  *other* function that references the dict gets edges to every
  registered member.  This is how ``repro.sim.spec.build_graph`` (which
  only ever calls ``_lookup(_GRAPH_FACTORIES, ...)(...)``) acquires
  edges to each concrete graph factory;
* **container dispatch**: a module-level tuple/list/set/dict *literal*
  of resolvable callables (``_SECTIONS = (_section_a, _section_b)``) is
  treated exactly like a populated registry -- every function that
  reads the container name gets edges to each member;
* **attribute-chain dispatch**: ``self.attr.method()`` resolves through
  per-class attribute-type inference -- any ``self.attr = ClassName(...)``
  assignment in any method of the class (including ``x or ClassName()``
  and conditional-expression forms) types the attribute, and the call
  edges to that class's method *and every indexed subclass override*.
  This is how the engine's phase loop (which only ever calls
  ``self._backend.observe(...)`` etc.) acquires edges into both the
  reference and the vectorized :class:`~repro.sim.backend.EngineBackend`
  implementations.

Unresolvable calls (stdlib, attribute chains on unknown objects) are
simply absent from the graph; the taint pass catches their
nondeterministic subset directly at the call site via seed patterns.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.lint.deep.modindex import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    _dotted,
    _resolve_relative,
)

#: Resolution results: a concrete callable, a class, or a registry dict.
_Resolved = Union[
    Tuple[str, FunctionInfo], Tuple[str, ClassInfo], Tuple[str, str], None
]


@dataclass(frozen=True)
class CallSite:
    """Where an edge's first witnessed call appears in the caller."""

    lineno: int
    col: int


@dataclass
class CallGraph:
    """Directed call edges between qualified function names."""

    index: ProjectIndex
    #: caller qualname -> callee qualname -> first witnessed call site
    edges: Dict[str, Dict[str, CallSite]] = field(default_factory=dict)
    #: registry dict qualname -> registered member qualnames
    registries: Dict[str, Set[str]] = field(default_factory=dict)
    #: (caller, callee) -> every witnessed call expression with its
    #: binding shape: ``"call"`` (positional args map to params as
    #: written), ``"method"`` (the receiver binds the callee's first
    #: parameter, positional args shift by one), ``"ctor"`` (the fresh
    #: instance binds ``self``, positional args shift by one) or
    #: ``"partial"`` (``functools.partial(f, ...)``: args after the
    #: callable map from parameter zero).  Registry-dispatch and
    #: nested-def edges have no call expression and record nothing --
    #: the effects pass then propagates only receiver-independent
    #: effects (global writes, I/O) across them.
    call_exprs: Dict[Tuple[str, str], List[Tuple[ast.Call, str]]] = field(
        default_factory=dict
    )

    def add_edge(
        self,
        caller: str,
        callee: str,
        site: CallSite,
        node: Optional[ast.Call] = None,
        kind: str = "call",
    ) -> None:
        """Record ``caller -> callee`` (first call site wins).

        When ``node`` is the witnessed :class:`ast.Call`, it is kept --
        with its argument-binding ``kind`` -- for the effects pass.
        """
        self.edges.setdefault(caller, {}).setdefault(callee, site)
        if node is not None:
            self.call_exprs.setdefault((caller, callee), []).append(
                (node, kind)
            )

    def callees(self, caller: str) -> Dict[str, CallSite]:
        """Every edge out of ``caller`` (empty dict when none)."""
        return self.edges.get(caller, {})

    @property
    def edge_count(self) -> int:
        """Total number of resolved call edges."""
        return sum(len(targets) for targets in self.edges.values())


def iter_own_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """Walk a callable's body without descending into nested callables.

    Nested ``def``/``lambda`` nodes are yielded (so the caller can index
    them as their own graph nodes) but their bodies are not traversed.
    """
    if isinstance(root, ast.Lambda):
        stack: List[ast.AST] = [root.body]
    else:
        stack = list(getattr(root, "body", []))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


class _Resolver:
    """Name resolution against a :class:`ProjectIndex`."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index

    # -- public entry points -------------------------------------------

    def resolve(self, module: ModuleInfo, dotted: str) -> _Resolved:
        """Resolve ``dotted`` as written inside ``module``."""
        return self._resolve_local(module, dotted, set())

    def resolve_absolute(self, dotted: str) -> _Resolved:
        """Resolve an already-absolute dotted path."""
        return self._resolve_absolute(dotted, set())

    def resolve_method(
        self, cls: ClassInfo, name: str
    ) -> Optional[FunctionInfo]:
        """Look ``name`` up on ``cls``, then through its bases."""
        return self._method(cls, name, set())

    def constructor(self, cls: ClassInfo) -> Optional[FunctionInfo]:
        """The ``__init__`` a constructor call lands in, if indexed."""
        return self._method(cls, "__init__", set())

    # -- internals -----------------------------------------------------

    def _method(
        self, cls: ClassInfo, name: str, seen: Set[str]
    ) -> Optional[FunctionInfo]:
        if cls.qualname in seen:
            return None
        seen.add(cls.qualname)
        if name in cls.methods:
            return cls.methods[name]
        for base in cls.bases:
            resolved = self._resolve_local(cls.module, base, set())
            if (
                resolved is not None
                and resolved[0] == "class"
                and isinstance(resolved[1], ClassInfo)
            ):
                found = self._method(resolved[1], name, seen)
                if found is not None:
                    return found
        return None

    def _resolve_local(
        self, module: ModuleInfo, dotted: str, seen: Set[str]
    ) -> _Resolved:
        key = f"{module.name}:{dotted}"
        if key in seen:
            return None
        seen.add(key)
        parts = dotted.split(".")
        head, rest = parts[0], parts[1:]
        if dotted in module.functions:
            return ("func", module.functions[dotted])
        if head in module.classes:
            cls = module.classes[head]
            if not rest:
                return ("class", cls)
            if len(rest) == 1:
                method = self.resolve_method(cls, rest[0])
                if method is not None:
                    return ("func", method)
            return None
        if head in module.registry_dicts and not rest:
            return ("registry", f"{module.name}.{head}")
        if head in module.imports:
            return self._resolve_absolute(
                ".".join([module.imports[head]] + rest), seen
            )
        if head in module.aliases:
            return self._resolve_local(
                module, ".".join([module.aliases[head]] + rest), seen
            )
        return None

    def _resolve_absolute(self, dotted: str, seen: Set[str]) -> _Resolved:
        if dotted in seen:
            return None
        seen.add(dotted)
        if dotted in self.index.functions:
            return ("func", self.index.functions[dotted])
        if dotted in self.index.classes:
            return ("class", self.index.classes[dotted])
        parts = dotted.split(".")
        # Longest module prefix wins: ``pkg.sub.mod.Class.method`` splits
        # at ``pkg.sub.mod`` even when ``pkg.sub`` is also a module.
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            module = self.index.modules.get(prefix)
            if module is None:
                continue
            rest = parts[cut:]
            return self._resolve_in_module(module, rest, seen)
        return None

    def _resolve_in_module(
        self, module: ModuleInfo, rest: List[str], seen: Set[str]
    ) -> _Resolved:
        symbol = ".".join(rest)
        if symbol in module.functions:
            return ("func", module.functions[symbol])
        head = rest[0]
        if head in module.classes:
            cls = module.classes[head]
            if len(rest) == 1:
                return ("class", cls)
            if len(rest) == 2:
                method = self.resolve_method(cls, rest[1])
                if method is not None:
                    return ("func", method)
            return None
        if head in module.registry_dicts and len(rest) == 1:
            return ("registry", f"{module.name}.{head}")
        if head in module.imports:
            # Re-exported name: follow the import out of this module.
            return self._resolve_absolute(
                ".".join([module.imports[head]] + rest[1:]), seen
            )
        if head in module.aliases:
            return self._resolve_local(
                module, ".".join([module.aliases[head]] + rest[1:]), seen
            )
        return None


def _self_attr_assignment(
    node: ast.AST,
) -> Tuple[Optional[str], Optional[ast.AST], Optional[ast.AST]]:
    """Decompose a ``self.attr = value`` statement (plain or annotated).

    Returns ``(attr, value, annotation)``; ``attr`` is None when the
    node is not a single-target attribute store on ``self``.
    """
    if isinstance(node, ast.Assign) and len(node.targets) == 1:
        target: ast.AST = node.targets[0]
        annotation: Optional[ast.AST] = None
        value: Optional[ast.AST] = node.value
    elif isinstance(node, ast.AnnAssign):
        target = node.target
        annotation = node.annotation
        value = node.value
    else:
        return None, None, None
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return target.attr, value, annotation
    return None, None, None


def _module_scope_function(module: ModuleInfo) -> FunctionInfo:
    """A synthetic module-scope caller for resolving literal expressions."""
    return FunctionInfo(
        qualname=f"{module.name}.<module>",
        module=module,
        node=module.tree,
        lineno=1,
    )


def _registrar_registries(
    function: FunctionInfo,
) -> Set[str]:
    """The registry dicts ``function`` stores into (registrar detection).

    A registrar is any function whose body performs
    ``SOME_MODULE_DICT[...] = ...`` on a module-level registry-candidate
    dict of its own module.
    """
    found: Set[str] = set()
    module = function.module
    for node in iter_own_nodes(function.node):
        if not isinstance(node, (ast.Assign, ast.AugAssign)):
            continue
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in module.registry_dicts
            ):
                found.add(f"{module.name}.{target.value.id}")
    return found


@dataclass
class _Scope:
    """What one function body's names can see beyond module scope."""

    #: nested def name -> its call-graph node
    defs: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: local variable -> inferred class (``x = ClassName(...)``)
    types: Dict[str, ClassInfo] = field(default_factory=dict)
    #: function-level import alias -> absolute dotted target
    imports: Dict[str, str] = field(default_factory=dict)


def _collect_local_imports(
    module: ModuleInfo, node: ast.AST, imports: Dict[str, str]
) -> None:
    """Record a function-level import statement into ``imports``.

    The deferred-import idiom (``from repro.analysis.figures import
    build_fig3_instance`` inside a factory) is exactly how the digest
    path reaches other packages, so these edges are load-bearing.
    """
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.asname is not None:
                imports[alias.asname] = alias.name
            else:
                root = alias.name.split(".", 1)[0]
                imports[root] = root
    elif isinstance(node, ast.ImportFrom):
        base = _resolve_relative(module.package, node.level, node.module)
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            imports[local] = f"{base}.{alias.name}" if base else alias.name


class _GraphBuilder:
    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.resolver = _Resolver(index)
        self.graph = CallGraph(index=index)
        #: registrar qualname -> registry dict qualnames it writes
        self.registrars: Dict[str, Set[str]] = {}
        #: nested-callable qualname -> imports of its enclosing scope
        self.inherited_imports: Dict[str, Dict[str, str]] = {}
        #: class qualname -> attribute -> inferred classes of the value
        self.attr_types: Dict[str, Dict[str, List[ClassInfo]]] = {}
        #: class qualname -> direct indexed subclasses (lazily built)
        self._subclass_map: Optional[Dict[str, List[ClassInfo]]] = None

    def build(self) -> CallGraph:
        self._seed_container_registries()
        self._infer_class_attr_types()
        for function in list(self.index.functions.values()):
            registries = _registrar_registries(function)
            if registries:
                self.registrars[function.qualname] = registries
        # Walk a snapshot: lambdas/nested defs discovered mid-walk append
        # themselves to the index and queue for their own walk.
        queue = list(self.index.functions.values())
        walked: Set[str] = set()
        while queue:
            function = queue.pop(0)
            if function.qualname in walked:
                continue
            walked.add(function.qualname)
            queue.extend(self._walk_function(function))
        self._apply_registry_dispatch()
        return self.graph

    # -- container dispatch --------------------------------------------

    def _seed_container_registries(self) -> None:
        """Module-level literal containers of callables become registries.

        ``_SECTIONS = (_section_a, _section_b)`` or ``BUILDERS =
        {"path": _path}`` dispatch exactly like the empty-dict registry
        idiom, just with the members known statically; marking the name
        as a registry dict lets :meth:`_apply_registry_dispatch` edge
        every reader to every member.
        """
        for module in self.index.modules.values():
            for node in module.tree.body:
                if not (
                    isinstance(node, ast.Assign) and len(node.targets) == 1
                ):
                    continue
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                elements: List[ast.AST]
                if isinstance(node.value, (ast.Tuple, ast.List, ast.Set)):
                    elements = list(node.value.elts)
                elif isinstance(node.value, ast.Dict):
                    elements = [v for v in node.value.values if v is not None]
                else:
                    continue
                members: Set[str] = set()
                for element in elements:
                    member = self._callable_qualname(
                        _module_scope_function(module), element, _Scope()
                    )
                    if member is not None:
                        members.add(member)
                if members:
                    module.registry_dicts.add(target.id)
                    self.graph.registries.setdefault(
                        f"{module.name}.{target.id}", set()
                    ).update(members)

    # -- attribute-chain dispatch --------------------------------------

    def _infer_class_attr_types(self) -> None:
        """Type ``self.attr`` from constructor assignments in any method.

        The inference is deliberately an over-approximation: every
        ``self.attr = <expr>`` whose expression contains a resolvable
        ``ClassName(...)`` call -- directly, behind ``or``/``and``, in a
        conditional expression, or through a local variable assigned a
        constructor call earlier in the same body -- contributes a
        candidate class, as does a resolvable class annotation on
        ``self.attr: "ClassName" = ...``.
        """
        for function in self.index.functions.values():
            if function.class_name is None:
                continue
            own_class = function.module.classes.get(function.class_name)
            if own_class is None:
                continue
            scope = _Scope()
            nodes = list(iter_own_nodes(function.node))
            for node in nodes:
                _collect_local_imports(function.module, node, scope.imports)
            for node in nodes:
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name) and isinstance(
                        node.value, ast.Call
                    ):
                        resolved = self._resolve_call_target(
                            function.module, node.value.func, scope, own_class
                        )
                        if resolved is not None and resolved[0] == "class":
                            assert isinstance(resolved[1], ClassInfo)
                            scope.types[target.id] = resolved[1]
            for node in nodes:
                target, value, annotation = _self_attr_assignment(node)
                if target is None:
                    continue
                found: List[ClassInfo] = []
                if value is not None:
                    found.extend(
                        self._constructed_classes(
                            function.module, value, scope, own_class
                        )
                    )
                if annotation is not None:
                    cls = self._annotation_class(
                        function.module, annotation, scope
                    )
                    if cls is not None:
                        found.append(cls)
                slot = self.attr_types.setdefault(
                    own_class.qualname, {}
                ).setdefault(target, [])
                for cls in found:
                    if all(c.qualname != cls.qualname for c in slot):
                        slot.append(cls)

    def _annotation_class(
        self, module: ModuleInfo, annotation: ast.AST, scope: "_Scope"
    ) -> Optional[ClassInfo]:
        """The indexed class an attribute annotation names, if any."""
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                annotation = ast.parse(
                    annotation.value, mode="eval"
                ).body
            except SyntaxError:
                return None
        dotted = _dotted(annotation)
        if dotted is None:
            return None
        parts = dotted.split(".")
        resolved: _Resolved = None
        if parts[0] in scope.imports:
            resolved = self.resolver.resolve_absolute(
                ".".join([scope.imports[parts[0]]] + parts[1:])
            )
        if resolved is None:
            resolved = self.resolver.resolve(module, dotted)
        if resolved is not None and resolved[0] == "class":
            assert isinstance(resolved[1], ClassInfo)
            return resolved[1]
        return None

    def _constructed_classes(
        self,
        module: ModuleInfo,
        expr: ast.AST,
        scope: "_Scope",
        own_class: Optional[ClassInfo],
    ) -> List[ClassInfo]:
        """Classes constructed anywhere in an assigned expression."""
        candidates: List[ast.AST] = [expr]
        if isinstance(expr, ast.BoolOp):
            candidates = list(expr.values)
        elif isinstance(expr, ast.IfExp):
            candidates = [expr.body, expr.orelse]
        found: List[ClassInfo] = []
        for candidate in candidates:
            if isinstance(candidate, ast.Name):
                if candidate.id in scope.types:
                    found.append(scope.types[candidate.id])
                continue
            if not isinstance(candidate, ast.Call):
                continue
            resolved = self._resolve_call_target(
                module, candidate.func, scope, own_class
            )
            if resolved is not None and resolved[0] == "class":
                assert isinstance(resolved[1], ClassInfo)
                found.append(resolved[1])
        return found

    def _attr_candidate_classes(
        self, cls: ClassInfo, attr: str, seen: Optional[Set[str]] = None
    ) -> List[ClassInfo]:
        """Inferred classes of ``self.attr`` on ``cls`` or its bases."""
        seen = set() if seen is None else seen
        if cls.qualname in seen:
            return []
        seen.add(cls.qualname)
        found = list(self.attr_types.get(cls.qualname, {}).get(attr, []))
        for base in cls.bases:
            resolved = self.resolver.resolve(cls.module, base)
            if (
                resolved is not None
                and resolved[0] == "class"
                and isinstance(resolved[1], ClassInfo)
            ):
                found.extend(
                    self._attr_candidate_classes(resolved[1], attr, seen)
                )
        return found

    def _subclasses_of(self, cls: ClassInfo) -> List[ClassInfo]:
        """Every indexed transitive subclass of ``cls``."""
        if self._subclass_map is None:
            direct: Dict[str, List[ClassInfo]] = {}
            for candidate in self.index.classes.values():
                for base in candidate.bases:
                    resolved = self.resolver.resolve(candidate.module, base)
                    if (
                        resolved is not None
                        and resolved[0] == "class"
                        and isinstance(resolved[1], ClassInfo)
                    ):
                        direct.setdefault(
                            resolved[1].qualname, []
                        ).append(candidate)
            self._subclass_map = direct
        found: List[ClassInfo] = []
        queue = list(self._subclass_map.get(cls.qualname, []))
        seen: Set[str] = set()
        while queue:
            sub = queue.pop(0)
            if sub.qualname in seen:
                continue
            seen.add(sub.qualname)
            found.append(sub)
            queue.extend(self._subclass_map.get(sub.qualname, []))
        return found

    def _attribute_dispatch_targets(
        self,
        func_expr: ast.AST,
        own_class: Optional[ClassInfo],
    ) -> List[FunctionInfo]:
        """The methods a ``self.attr.method()`` call can land in.

        Over-approximates over both the inferred attribute classes and
        their indexed subclasses, which is what lets a registry-selected
        implementation (the engine's pluggable backend) stay visible to
        the taint pass.
        """
        if own_class is None or not isinstance(func_expr, ast.Attribute):
            return []
        receiver = func_expr.value
        if not (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id in ("self", "cls")
        ):
            return []
        targets: List[FunctionInfo] = []
        for cls in self._attr_candidate_classes(own_class, receiver.attr):
            for impl in [cls, *self._subclasses_of(cls)]:
                method = self.resolver.resolve_method(impl, func_expr.attr)
                if method is not None and all(
                    method.qualname != t.qualname for t in targets
                ):
                    targets.append(method)
        return targets

    # -- per-function walk ---------------------------------------------

    def _walk_function(self, function: FunctionInfo) -> List[FunctionInfo]:
        module = function.module
        discovered: List[FunctionInfo] = []
        scope = _Scope(
            imports=dict(self.inherited_imports.pop(function.qualname, {}))
        )
        own_class = (
            module.classes.get(function.class_name)
            if function.class_name is not None
            else None
        )
        nodes = list(iter_own_nodes(function.node))
        # Imports and nested defs first, so the later call pass resolves
        # local names regardless of traversal order.
        for node in nodes:
            _collect_local_imports(module, node, scope.imports)
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested = self._nested(function, node, scope)
                scope.defs[node.name] = nested
                discovered.append(nested)
            elif isinstance(node, ast.Lambda):
                discovered.append(self._nested(function, node, scope))
        # Type inference before call handling: node order is traversal
        # order, not source order, so a method call can surface before
        # the assignment that names its receiver.
        for node in nodes:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and isinstance(
                    node.value, ast.Call
                ):
                    resolved = self._resolve_call_target(
                        module, node.value.func, scope, own_class
                    )
                    if resolved is not None and resolved[0] == "class":
                        assert isinstance(resolved[1], ClassInfo)
                        scope.types[target.id] = resolved[1]
        for node in nodes:
            if isinstance(node, ast.Call):
                self._handle_call(function, node, scope, own_class)
        self._handle_decorators(function, scope)
        return discovered

    def _nested(
        self,
        parent: FunctionInfo,
        node: ast.AST,
        scope: Optional["_Scope"] = None,
    ) -> FunctionInfo:
        if isinstance(node, ast.Lambda):
            local = f"<lambda@{node.lineno}>"
        else:
            local = getattr(node, "name", "<def>")
        qualname = f"{parent.qualname}.{local}"
        nested = FunctionInfo(
            qualname=qualname,
            module=parent.module,
            node=node,
            lineno=getattr(node, "lineno", parent.lineno),
            class_name=parent.class_name,
        )
        self.index.functions.setdefault(qualname, nested)
        if scope is not None and scope.imports:
            # Closures see the enclosing function's imports.
            self.inherited_imports.setdefault(qualname, scope.imports)
        # Defining a nested callable nearly always precedes invoking it
        # within the same dynamic extent; over-approximate with an edge.
        self.graph.add_edge(
            parent.qualname,
            qualname,
            CallSite(nested.lineno, getattr(node, "col_offset", 0) + 1),
        )
        return self.index.functions[qualname]

    # -- call handling -------------------------------------------------

    def _partial_target(
        self,
        function: FunctionInfo,
        node: ast.AST,
        scope: "_Scope",
    ) -> Optional[ast.AST]:
        """The wrapped callable of a ``functools.partial(f, ...)`` call.

        Returns the first positional argument when ``node`` is a call
        whose func resolves -- through function-level or module-level
        imports (``from functools import partial``, ``import functools``
        or any aliased form) -- to absolute ``functools.partial``;
        ``None`` otherwise.
        """
        if not isinstance(node, ast.Call) or not node.args:
            return None
        dotted = _dotted(node.func)
        if dotted is None:
            return None
        parts = dotted.split(".")
        head = parts[0]
        absolute = scope.imports.get(head) or function.module.imports.get(
            head
        )
        if absolute is None:
            return None
        if ".".join([absolute] + parts[1:]) != "functools.partial":
            return None
        return node.args[0]

    def _resolve_call_target(
        self,
        module: ModuleInfo,
        func_expr: ast.AST,
        scope: "_Scope",
        own_class: Optional[ClassInfo],
    ) -> _Resolved:
        if isinstance(func_expr, ast.Name) and func_expr.id in scope.defs:
            return ("func", scope.defs[func_expr.id])
        if isinstance(func_expr, ast.Attribute) and isinstance(
            func_expr.value, ast.Name
        ):
            root = func_expr.value.id
            if root in ("self", "cls") and own_class is not None:
                method = self.resolver.resolve_method(
                    own_class, func_expr.attr
                )
                if method is not None:
                    return ("func", method)
                return None
            if root in scope.types:
                method = self.resolver.resolve_method(
                    scope.types[root], func_expr.attr
                )
                if method is not None:
                    return ("func", method)
                return None
        dotted = _dotted(func_expr)
        if dotted is None:
            return None
        parts = dotted.split(".")
        if parts[0] in scope.imports:
            resolved = self.resolver.resolve_absolute(
                ".".join([scope.imports[parts[0]]] + parts[1:])
            )
            if resolved is not None:
                return resolved
        return self.resolver.resolve(module, dotted)

    def _handle_call(
        self,
        function: FunctionInfo,
        node: ast.Call,
        scope: "_Scope",
        own_class: Optional[ClassInfo],
    ) -> None:
        site = CallSite(node.lineno, node.col_offset + 1)
        # ``self.attr.method()``: dispatch through the inferred attribute
        # type(s), covering every indexed subclass override.
        for method in self._attribute_dispatch_targets(node.func, own_class):
            self.graph.add_edge(
                function.qualname, method.qualname, site, node, "method"
            )
        resolved = self._resolve_call_target(
            function.module, node.func, scope, own_class
        )
        # ``register(name)(fn)``: the outer call's func is itself a call
        # to a registrar; the outer argument is the registered factory.
        if isinstance(node.func, ast.Call):
            inner = self._resolve_call_target(
                function.module, node.func.func, scope, own_class
            )
            self._maybe_register(function, inner, node, scope)
        # ``functools.partial(f, ...)``: constructing the partial is, for
        # graph purposes, a (deferred) call of ``f``.
        wrapped = self._partial_target(function, node, scope)
        if wrapped is not None:
            member = self._callable_qualname(function, wrapped, scope)
            if member is not None:
                self.graph.add_edge(
                    function.qualname, member, site, node, "partial"
                )
        if resolved is None:
            return
        kind, target = resolved
        if kind == "func":
            assert isinstance(target, FunctionInfo)
            # A method reached through an attribute receiver binds that
            # receiver to its first parameter; a plain (or unbound
            # ``Class.method(obj, ...)``) call maps args positionally.
            shape = (
                "method"
                if target.class_name is not None
                and isinstance(node.func, ast.Attribute)
                else "call"
            )
            self.graph.add_edge(
                function.qualname, target.qualname, site, node, shape
            )
            self._maybe_register(function, resolved, node, scope)
        elif kind == "class":
            assert isinstance(target, ClassInfo)
            init = self.resolver.constructor(target)
            if init is not None:
                self.graph.add_edge(
                    function.qualname, init.qualname, site, node, "ctor"
                )

    def _handle_decorators(
        self, function: FunctionInfo, scope: "_Scope"
    ) -> None:
        """``@register("name")`` on a def registers the def itself."""
        for decorator in getattr(function.node, "decorator_list", []):
            if not isinstance(decorator, ast.Call):
                continue
            resolved = self._resolve_call_target(
                function.module, decorator.func, _Scope(), None
            )
            if resolved is None or resolved[0] != "func":
                continue
            assert isinstance(resolved[1], FunctionInfo)
            for registry in self.registrars.get(resolved[1].qualname, ()):
                self.graph.registries.setdefault(registry, set()).add(
                    function.qualname
                )

    def _maybe_register(
        self,
        function: FunctionInfo,
        registrar: _Resolved,
        call: ast.Call,
        scope: "_Scope",
    ) -> None:
        """If ``call`` invokes a registrar, record its callable args."""
        if registrar is None or registrar[0] != "func":
            return
        assert isinstance(registrar[1], FunctionInfo)
        registries = self.registrars.get(registrar[1].qualname)
        if not registries:
            return
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            member = self._callable_qualname(function, arg, scope)
            if member is None:
                continue
            for registry in registries:
                self.graph.registries.setdefault(registry, set()).add(
                    member
                )

    def _callable_qualname(
        self,
        function: FunctionInfo,
        node: ast.AST,
        scope: "_Scope",
    ) -> Optional[str]:
        if isinstance(node, ast.Lambda):
            return self._nested(function, node, scope).qualname
        # A partial handed to a registrar registers the wrapped callable.
        wrapped = self._partial_target(function, node, scope)
        if wrapped is not None:
            return self._callable_qualname(function, wrapped, scope)
        resolved = self._resolve_call_target(
            function.module, node, scope, None
        )
        if resolved is None:
            return None
        if resolved[0] == "func":
            assert isinstance(resolved[1], FunctionInfo)
            return resolved[1].qualname
        if resolved[0] == "class":
            assert isinstance(resolved[1], ClassInfo)
            init = self.resolver.constructor(resolved[1])
            return init.qualname if init is not None else None
        return None

    # -- registry dispatch ---------------------------------------------

    def _apply_registry_dispatch(self) -> None:
        """Edge every registry *reader* to every registered member."""
        for function in list(self.index.functions.values()):
            own = self.registrars.get(function.qualname, set())
            for registry, site in self._registry_references(function):
                if registry in own:
                    continue  # the registrar's own store, not a dispatch
                for member in sorted(
                    self.graph.registries.get(registry, set())
                ):
                    self.graph.add_edge(function.qualname, member, site)

    def _registry_references(
        self, function: FunctionInfo
    ) -> List[Tuple[str, CallSite]]:
        module = function.module
        found: Dict[str, CallSite] = {}
        for node in iter_own_nodes(function.node):
            registry: Optional[str] = None
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in module.registry_dicts
            ):
                registry = f"{module.name}.{node.id}"
            elif isinstance(node, ast.Attribute):
                dotted = _dotted(node)
                if dotted is not None:
                    resolved = self.resolver.resolve(module, dotted)
                    if resolved is not None and resolved[0] == "registry":
                        assert isinstance(resolved[1], str)
                        registry = resolved[1]
            if registry is not None:
                found.setdefault(
                    registry,
                    CallSite(
                        getattr(node, "lineno", function.lineno),
                        getattr(node, "col_offset", 0) + 1,
                    ),
                )
        return sorted(found.items())


def build_call_graph(index: ProjectIndex) -> CallGraph:
    """Build the whole-program call graph over ``index``."""
    return _GraphBuilder(index).build()
