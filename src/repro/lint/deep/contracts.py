"""Contract checking over effect summaries: the E/M/S rule families.

Where the shallow rules ask "does this function's *text* mutate
something it shouldn't", these rules ask the effects pass
(:mod:`~repro.lint.deep.effects`) whether it *transitively* does --
through local aliases, helpers, registry-dispatched factories and
``functools.partial`` wrappers alike.

**E-rules -- the engine-phase and hook contracts**

* ``E001``: a backend phase implementation mutates engine state outside
  its phase's allowlist (:data:`repro.sim.backend.PHASE_MUTABLE_ATTRS`).
  Applies to every class that subclasses ``EngineBackend`` -- by base
  chain or by the ``*Backend``-with-phase-methods convention, so future
  registered backends and test fixtures are covered without imports.
* ``E002``: a phase body mutates a payload parameter that is not a
  documented out-parameter (:data:`repro.sim.backend.PHASE_OUT_PARAMS`);
  ``observe``/``compute`` handing back a mutated observation map is the
  canonical silent-corruption bug.
* ``E003``: an observer ``on_*`` hook transitively mutates its payload
  -- the interprocedural truth behind the syntactic H001, closing its
  local-alias blind spot (``rr = payload; rr.robots.clear()``).
* ``E004``: a phase performs I/O; phase bodies are deterministic
  simulation code and must not touch the outside world.

**M-rules -- fork-boundary capture discipline**

* ``M001``: inside the runner modules, an object captured by a work
  unit (``pool.submit(fn, captured, ...)``) is mutated -- directly or
  via a summarized callee -- by a later statement of the same function.
  Forked workers hold a snapshot; the parent-side mutation silently
  diverges from what the worker computes against.  This is the gap the
  module-global F001 rule cannot see.

**S-rules -- the digest-stability contract**

* ``S001``: a defaulted spec field outside the format-v1 baseline set
  (:data:`repro.sim.spec.SPEC_BASELINE_FIELDS`) is serialized
  unconditionally in ``to_dict`` -- every pre-existing spec document and
  content digest would drift.
* ``S002``: a spec field never reaches ``to_dict`` at all, so two specs
  differing only in it share a digest (and a run-store entry).

All findings are fingerprinted location-free for the baseline gate:
``CODE|qualname|subject``.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.lint.deep.callgraph import CallGraph, _Resolver, iter_own_nodes
from repro.lint.deep.concurrency import FORK_SCOPE
from repro.lint.deep.effects import (
    MUTATOR_METHODS,
    EffectKey,
    FunctionEffects,
    _bind_arguments,
    _peel,
    witness_chain,
)
from repro.lint.deep.modindex import ClassInfo, FunctionInfo, ProjectIndex
from repro.lint.findings import Finding
from repro.lint.hookrules import _is_observer_class
from repro.lint.rules import path_in_scope
from repro.sim.backend import PHASE_MUTABLE_ATTRS, PHASE_OUT_PARAMS
from repro.sim.spec import DIGEST_EXEMPT_FIELDS, SPEC_BASELINE_FIELDS

#: The backend phase primitives the E-rules govern.
PHASE_METHODS: Tuple[str, ...] = tuple(PHASE_MUTABLE_ATTRS)

#: Modules holding spec classes whose ``to_dict`` is digest material.
SPEC_SCOPE: Tuple[str, ...] = ("sim/spec.py",)

#: Pool-submission methods whose arguments cross the fork boundary.
SUBMIT_METHODS = frozenset({"submit", "apply_async", "map_async"})


def check_contracts(
    graph: CallGraph, summaries: Dict[str, FunctionEffects]
) -> List[Tuple[Finding, str]]:
    """Every E/M/S finding (with baseline fingerprint) in the tree."""
    results: List[Tuple[Finding, str]] = []
    results.extend(_check_backend_phases(graph, summaries))
    results.extend(_check_observer_hooks(graph, summaries))
    results.extend(_check_capture_mutation(graph, summaries))
    results.extend(_check_spec_serialization(graph.index))
    results.sort(key=lambda pair: (pair[0].path, pair[0].line, pair[0].code))
    return results


# ----------------------------------------------------------------------
# E-rules: backend phases and observer hooks
# ----------------------------------------------------------------------


def _base_chain_names(
    cls: ClassInfo, resolver: _Resolver, seen: Optional[Set[str]] = None
) -> Set[str]:
    """Last-segment names of every (transitively reachable) base.

    Unresolvable bases still contribute their written name, so a fixture
    ``class MyBackend(EngineBackend)`` matches without importing the
    real base class.
    """
    seen = set() if seen is None else seen
    if cls.qualname in seen:
        return set()
    seen.add(cls.qualname)
    names: Set[str] = set()
    for base in cls.bases:
        names.add(base.rpartition(".")[2])
        resolved = resolver.resolve(cls.module, base)
        if (
            resolved is not None
            and resolved[0] == "class"
            and isinstance(resolved[1], ClassInfo)
        ):
            names |= _base_chain_names(resolved[1], resolver, seen)
    return names


def _is_backend_class(cls: ClassInfo, resolver: _Resolver) -> bool:
    bases = _base_chain_names(cls, resolver)
    if "EngineBackend" in bases or cls.node.name == "EngineBackend":
        return False if cls.node.name == "EngineBackend" else True
    convention = cls.node.name.endswith("Backend") or any(
        name.endswith("Backend") for name in bases
    )
    return convention and any(
        name in cls.methods for name in PHASE_METHODS
    )


def _engine_state_attr(path: Tuple[str, ...]) -> Optional[str]:
    """The engine attribute a ``self``-rooted mutation path touches.

    Backends reach engine state as ``self.engine.<attr>`` (the property)
    or ``self._engine.<attr>``; anything else rooted at ``self`` is
    backend-private cache and always allowed.
    """
    if not path or path[0] not in ("engine", "_engine"):
        return None
    return path[1] if len(path) > 1 else "*"


def _finding_site(
    graph: CallGraph,
    summaries: Dict[str, FunctionEffects],
    qualname: str,
    key: EffectKey,
) -> Tuple[str, int, int, str]:
    """``(path, line, col, chain text)`` for an effect of ``qualname``."""
    function = graph.index.functions[qualname]
    effects = summaries[qualname]
    witness = effects.effects[key]
    chain, direct = witness_chain(summaries, qualname, key)
    rendered = " -> ".join(chain)
    if direct is not None and len(chain) > 1:
        leaf = graph.index.functions.get(chain[-1])
        where = (
            f"{leaf.module.display_path}:{direct.lineno}"
            if leaf is not None
            else f"line {direct.lineno}"
        )
        rendered += f" ({direct.detail} at {where})"
    elif direct is not None:
        rendered += f" ({direct.detail})"
    return (
        function.module.display_path,
        witness.lineno,
        witness.col,
        rendered,
    )


def _check_backend_phases(
    graph: CallGraph, summaries: Dict[str, FunctionEffects]
) -> Iterator[Tuple[Finding, str]]:
    resolver = _Resolver(graph.index)
    for cls in graph.index.classes.values():
        if not _is_backend_class(cls, resolver):
            continue
        for phase in PHASE_METHODS:
            method = cls.methods.get(phase)
            if method is None:
                continue
            effects = summaries.get(method.qualname)
            if effects is None:
                continue
            allowed = PHASE_MUTABLE_ATTRS.get(phase, frozenset())
            out_params = PHASE_OUT_PARAMS.get(phase, frozenset())
            for key in sorted(effects.effects):
                if key[0] == "io":
                    path, line, col, chain = _finding_site(
                        graph, summaries, method.qualname, key
                    )
                    yield (
                        Finding(
                            path=path,
                            line=line,
                            column=col,
                            code="E004",
                            message=(
                                f"backend phase `{phase}` performs I/O "
                                f"({key[1]}); phase bodies are "
                                "deterministic simulation code -- chain: "
                                f"{chain}"
                            ),
                        ),
                        f"E004|{method.qualname}|{key[1]}",
                    )
                    continue
                if key[0] != "mut":
                    continue
                index, mut_path = key[1], key[2]
                if index == 0:
                    state = _engine_state_attr(mut_path)
                    if state is None or state in allowed:
                        continue
                    path, line, col, chain = _finding_site(
                        graph, summaries, method.qualname, key
                    )
                    allowed_text = (
                        ", ".join(sorted(allowed)) if allowed else "none"
                    )
                    yield (
                        Finding(
                            path=path,
                            line=line,
                            column=col,
                            code="E001",
                            message=(
                                f"backend phase `{phase}` mutates engine "
                                f"state `{state}` outside the phase "
                                f"contract (allowed: {allowed_text}) -- "
                                f"chain: {chain}"
                            ),
                        ),
                        f"E001|{method.qualname}|{state}",
                    )
                    continue
                param = (
                    effects.params[index]
                    if index < len(effects.params)
                    else f"arg{index}"
                )
                if param in out_params:
                    continue
                path, line, col, chain = _finding_site(
                    graph, summaries, method.qualname, key
                )
                yield (
                    Finding(
                        path=path,
                        line=line,
                        column=col,
                        code="E002",
                        message=(
                            f"backend phase `{phase}` mutates its "
                            f"`{param}` payload parameter; only "
                            "documented out-parameters may be written "
                            f"-- chain: {chain}"
                        ),
                    ),
                    f"E002|{method.qualname}|{param}",
                )


def _check_observer_hooks(
    graph: CallGraph, summaries: Dict[str, FunctionEffects]
) -> Iterator[Tuple[Finding, str]]:
    for cls in graph.index.classes.values():
        if not _is_observer_class(cls.node):
            continue
        for name, method in sorted(cls.methods.items()):
            if not name.startswith("on_"):
                continue
            effects = summaries.get(method.qualname)
            if effects is None:
                continue
            reported: Set[str] = set()
            for key in sorted(effects.effects):
                if key[0] != "mut" or key[1] == 0:
                    continue
                index = key[1]
                param = (
                    effects.params[index]
                    if index < len(effects.params)
                    else f"arg{index}"
                )
                if param in reported:
                    continue
                reported.add(param)
                path, line, col, chain = _finding_site(
                    graph, summaries, method.qualname, key
                )
                yield (
                    Finding(
                        path=path,
                        line=line,
                        column=col,
                        code="E003",
                        message=(
                            f"observer hook `{name}` transitively "
                            f"mutates its `{param}` payload; observers "
                            "must not mutate engine state -- chain: "
                            f"{chain}"
                        ),
                    ),
                    f"E003|{method.qualname}|{param}",
                )


# ----------------------------------------------------------------------
# M-rules: mutation after fork-boundary capture
# ----------------------------------------------------------------------


def _captured_names(call: ast.Call) -> Set[str]:
    """Bare-name arguments a submission call captures for the worker."""
    names: Set[str] = set()
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        if isinstance(arg, ast.Name):
            names.add(arg.id)
    return names


def _direct_mutation_root(node: ast.AST) -> Optional[str]:
    """The root name a statement-level node mutates in place, if any."""
    targets: List[ast.AST] = []
    if isinstance(node, ast.Assign):
        targets = [
            t
            for t in node.targets
            if isinstance(t, (ast.Attribute, ast.Subscript))
        ]
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        if isinstance(node.target, (ast.Attribute, ast.Subscript)):
            targets = [node.target]
    elif isinstance(node, ast.Delete):
        targets = [
            t
            for t in node.targets
            if isinstance(t, (ast.Attribute, ast.Subscript))
        ]
    elif (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in MUTATOR_METHODS
    ):
        targets = [node.func.value]
    for target in targets:
        peeled = _peel(target)
        if peeled is not None:
            return peeled[0]
    return None


def _check_capture_mutation(
    graph: CallGraph, summaries: Dict[str, FunctionEffects]
) -> Iterator[Tuple[Finding, str]]:
    for function in list(graph.index.functions.values()):
        module = function.module
        if not path_in_scope(module.display_path, FORK_SCOPE, ()):
            continue
        if not isinstance(
            function.node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
        ):
            continue
        nodes = sorted(
            iter_own_nodes(function.node),
            key=lambda n: (
                getattr(n, "lineno", 0),
                getattr(n, "col_offset", 0),
            ),
        )
        submits: List[Tuple[int, Set[str]]] = []
        for node in nodes:
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in SUBMIT_METHODS
            ):
                captured = _captured_names(node)
                if captured:
                    submits.append((node.lineno, captured))
        if not submits:
            continue
        yield from _mutations_after_submit(
            graph, summaries, function, nodes, submits
        )


def _mutations_after_submit(
    graph: CallGraph,
    summaries: Dict[str, FunctionEffects],
    function: FunctionInfo,
    nodes: List[ast.AST],
    submits: List[Tuple[int, Set[str]]],
) -> Iterator[Tuple[Finding, str]]:
    module = function.module
    reported: Set[str] = set()

    def live_captures(lineno: int) -> Set[str]:
        names: Set[str] = set()
        for submit_line, captured in submits:
            if lineno > submit_line:
                names |= captured
        return names

    # Direct in-place mutation of a captured name.
    for node in nodes:
        captured = live_captures(getattr(node, "lineno", 0))
        if not captured:
            continue
        root = _direct_mutation_root(node)
        if root in captured and root not in reported:
            reported.add(root)
            yield (
                Finding(
                    path=module.display_path,
                    line=node.lineno,
                    column=node.col_offset + 1,
                    code="M001",
                    message=(
                        f"`{root}` is mutated after being captured by a "
                        "submitted work unit; forked workers hold a "
                        "snapshot, so the mutation silently diverges "
                        "from what the worker computes against"
                    ),
                ),
                f"M001|{function.qualname}|{root}",
            )
    # Transitive mutation: a later call hands the captured name to a
    # callee whose summary mutates the bound parameter.
    for callee_name in sorted(graph.callees(function.qualname)):
        callee = summaries.get(callee_name)
        if callee is None:
            continue
        for call, kind in graph.call_exprs.get(
            (function.qualname, callee_name), ()
        ):
            captured = live_captures(call.lineno)
            if not captured:
                continue
            binding = _bind_arguments(call, kind, callee.params)
            for index, _path in callee.mutated_params():
                argument = binding.get(index)
                if not isinstance(argument, ast.Name):
                    continue
                root = argument.id
                if root not in captured or root in reported:
                    continue
                reported.add(root)
                chain, _direct = witness_chain(
                    summaries, callee_name, ("mut", index, _path)
                )
                rendered = " -> ".join([function.qualname] + chain)
                yield (
                    Finding(
                        path=module.display_path,
                        line=call.lineno,
                        column=call.col_offset + 1,
                        code="M001",
                        message=(
                            f"`{root}` is mutated (via {rendered}) "
                            "after being captured by a submitted work "
                            "unit; forked workers hold a snapshot, so "
                            "the mutation silently diverges from what "
                            "the worker computes against"
                        ),
                    ),
                    f"M001|{function.qualname}|{root}",
                )


# ----------------------------------------------------------------------
# S-rules: spec serialization / digest stability
# ----------------------------------------------------------------------


def _spec_fields(cls: ClassInfo) -> List[Tuple[str, bool, int]]:
    """``(name, has_default, lineno)`` per annotated dataclass field."""
    fields: List[Tuple[str, bool, int]] = []
    for stmt in cls.node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            fields.append(
                (stmt.target.id, stmt.value is not None, stmt.lineno)
            )
    return fields


def _emitted_keys(method: ast.AST) -> Tuple[Set[str], Set[str]]:
    """``(unconditional, any)`` serialized keys in a ``to_dict`` body.

    A key counts as emitted where a dict literal carries it or a
    ``data["key"] = ...`` store assigns it; "unconditional" means the
    statement sits at the method body's top level -- anything nested
    under ``if``/loops/``try`` is treated as guarded.
    """
    unconditional: Set[str] = set()
    emitted: Set[str] = set()

    def keys_in(node: ast.AST) -> Iterator[str]:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Dict):
                for key in sub.keys:
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        yield key.value
            elif isinstance(sub, ast.Subscript) and isinstance(
                sub.ctx, ast.Store
            ):
                index = sub.slice
                if isinstance(index, ast.Constant) and isinstance(
                    index.value, str
                ):
                    yield index.value

    def visit(stmt: ast.AST, conditional: bool) -> None:
        if isinstance(stmt, (ast.If, ast.For, ast.While, ast.Try)):
            for child in ast.iter_child_nodes(stmt):
                visit(child, True)
            return
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            return
        for key in keys_in(stmt):
            emitted.add(key)
            if not conditional:
                unconditional.add(key)

    for stmt in getattr(method, "body", []):
        visit(stmt, False)
    return unconditional, emitted


def _referenced_fields(method: ast.AST) -> Set[str]:
    """Every ``self.<attr>`` read anywhere inside ``to_dict``."""
    found: Set[str] = set()
    for node in ast.walk(method):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            found.add(node.attr)
    return found


def _check_spec_serialization(
    index: ProjectIndex,
) -> Iterator[Tuple[Finding, str]]:
    for cls in index.classes.values():
        if not path_in_scope(cls.module.display_path, SPEC_SCOPE, ()):
            continue
        to_dict = cls.methods.get("to_dict")
        if to_dict is None:
            continue
        fields = _spec_fields(cls)
        if not fields:
            continue
        baseline = SPEC_BASELINE_FIELDS.get(cls.node.name, frozenset())
        exempt = DIGEST_EXEMPT_FIELDS.get(cls.node.name, frozenset())
        unconditional, emitted = _emitted_keys(to_dict.node)
        referenced = _referenced_fields(to_dict.node)
        for name, has_default, lineno in fields:
            if name in exempt:
                continue
            if (
                has_default
                and name in unconditional
                and name not in baseline
            ):
                yield (
                    Finding(
                        path=cls.module.display_path,
                        line=lineno,
                        column=1,
                        code="S001",
                        message=(
                            f"spec field `{cls.node.name}.{name}` has a "
                            "default but is serialized unconditionally "
                            "in to_dict; emit it behind an `if "
                            f"self.{name} ...` guard so pre-existing "
                            "documents and content digests stay "
                            "byte-identical"
                        ),
                    ),
                    f"S001|{cls.qualname}|{name}",
                )
            if name not in emitted and name not in referenced:
                yield (
                    Finding(
                        path=cls.module.display_path,
                        line=lineno,
                        column=1,
                        code="S002",
                        message=(
                            f"spec field `{cls.node.name}.{name}` never "
                            "reaches to_dict; two specs differing only "
                            "in it would share a digest (and a run-store "
                            "entry)"
                        ),
                    ),
                    f"S002|{cls.qualname}|{name}",
                )
