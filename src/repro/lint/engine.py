"""The lint engine: file discovery, parsing, suppressions, dispatch.

:func:`lint_paths` is the whole pipeline: discover ``*.py`` files under
the given paths, parse each once, run every selected rule whose scope
matches, honor inline suppressions, and return a :class:`LintReport`
whose findings are sorted by location -- the same report object both
reporters and the CLI exit code are computed from.

Suppressions are inline comments on the offending line::

    created = time.time()  # reprolint: disable=D001 -- display only

``disable=CODE1,CODE2`` silences the listed codes on that line;
``disable`` with no codes silences everything on the line.  Suppressions
are deliberately line-scoped: there is no file- or block-level off
switch, so every exemption stays next to the code it excuses.
"""

from __future__ import annotations

import ast
import io
import pathlib
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Union

from repro.lint.findings import Finding
from repro.lint.rules import (
    ModuleContext,
    Rule,
    path_in_scope,
    select_rules,
)

#: The code attached to files that do not parse: a broken file cannot be
#: proven clean, so it is a finding, not a crash.
PARSE_ERROR_CODE = "P001"

_SUPPRESSION = re.compile(
    r"#\s*reprolint:\s*disable(?:=(?P<codes>[A-Z0-9,\s]+))?"
)

#: Marker for "every code suppressed on this line".
_ALL_CODES: FrozenSet[str] = frozenset({"*"})


@dataclass
class LintReport:
    """The outcome of one lint run: findings plus scan bookkeeping."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        """Whether the run found nothing (the gate condition)."""
        return not self.findings

    def counts(self) -> Dict[str, int]:
        """Finding count per rule code (sorted by code on render)."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return counts


def _suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> codes suppressed on that line.

    Parsed from the token stream, so suppression markers inside string
    literals do not count.
    """
    table: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION.search(token.string)
            if match is None:
                continue
            codes = match.group("codes")
            if codes is None:
                table[token.start[0]] = _ALL_CODES
            else:
                parsed = frozenset(
                    code.strip()
                    for code in codes.split(",")
                    if code.strip()
                )
                existing = table.get(token.start[0], frozenset())
                table[token.start[0]] = existing | parsed
    except (tokenize.TokenError, IndentationError):
        # The AST parse will report the real problem.
        pass
    return table


def _is_suppressed(
    finding: Finding, table: Dict[int, FrozenSet[str]]
) -> bool:
    codes = table.get(finding.line)
    if codes is None:
        return False
    return codes is _ALL_CODES or "*" in codes or finding.code in codes


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Lint one module's source text under ``path``'s scopes."""
    if rules is None:
        rules = select_rules(None)
    report = LintReport(files_scanned=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        report.findings.append(
            Finding(
                path=path,
                line=error.lineno or 1,
                column=(error.offset or 1),
                code=PARSE_ERROR_CODE,
                message=f"file does not parse: {error.msg}",
            )
        )
        return report
    table = _suppressions(source)
    context = ModuleContext(path=path, tree=tree, source=source)
    for rule in rules:
        if not path_in_scope(path, rule.info.scopes, rule.info.exempt):
            continue
        for finding in rule.check(context):
            if _is_suppressed(finding, table):
                report.suppressed += 1
            else:
                report.findings.append(finding)
    report.findings.sort()
    return report


def iter_python_files(
    paths: Iterable[Union[str, pathlib.Path]]
) -> List[pathlib.Path]:
    """Every ``*.py`` file under ``paths``, deduplicated and sorted.

    Missing paths raise ``FileNotFoundError`` -- a gate that silently
    lints nothing would pass vacuously.
    """
    seen = set()
    files: List[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_file():
            candidates = [path]
        elif path.is_dir():
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        else:
            raise FileNotFoundError(f"lint target does not exist: {path}")
        for candidate in candidates:
            key = candidate.resolve()
            if key not in seen:
                seen.add(key)
                files.append(candidate)
    return files


def lint_paths(
    paths: Iterable[Union[str, pathlib.Path]],
    *,
    select: Optional[Iterable[str]] = None,
) -> LintReport:
    """Lint every Python file under ``paths`` with the selected rules."""
    rules = select_rules(list(select) if select is not None else None)
    report = LintReport()
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        file_report = lint_source(
            source, file_path.as_posix(), rules=rules
        )
        report.findings.extend(file_report.findings)
        report.suppressed += file_report.suppressed
        report.files_scanned += 1
    report.findings.sort()
    return report
