"""C-rules: cache safety of the content-addressed digest pipeline.

:class:`~repro.sim.store.RunStore` keys results by the sha256 of a
spec's *canonical* JSON.  Two failure modes would silently corrupt that
contract: serializing digest material with a non-canonical encoder (so
equal specs hash differently, or different specs collide under
re-encoding), and formatting floats through locale- or
precision-sensitive paths (so ``1.0`` and ``1`` -- one value -- produce
two byte strings).  A third, subtler one is the builtin :func:`hash`,
which is salted per process for strings and therefore must never feed
anything persisted or compared across processes.  These rules scope to
the digest pipeline (:data:`~repro.lint.rules.CACHE_SCOPE`).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.findings import Finding, RuleInfo
from repro.lint.rules import CACHE_SCOPE, ModuleContext, Rule, register_rule

#: Format specs that render floats: a fixed/exponent/general conversion,
#: optionally preceded by width/precision (``.3f``, ``>10.2e``, ``g``).
_FLOAT_FORMAT_SPEC = re.compile(r"[#0-9,._ <>^+-]*[efgEFG%n]$")

#: printf-style float conversions inside a ``%`` format string.
_FLOAT_PERCENT = re.compile(r"%[#0-9. +-]*[efgEFG]")

#: ``str.format`` templates with a float conversion in any replacement
#: field (``{x:.3f}``, ``{0:g}``).
_FLOAT_BRACE = re.compile(r"\{[^{}]*:[^{}]*[efgEFG%n]\}")


@register_rule
class NonCanonicalJson(Rule):
    """C001: every JSON encode in the digest path must sort its keys."""

    info = RuleInfo(
        code="C001",
        name="non-canonical-json",
        summary="json.dump(s) without sort_keys=True in the digest path",
        rationale=(
            "dict iteration order is insertion order, so an unsorted "
            "encode makes the serialized bytes depend on construction "
            "history rather than content -- two equal specs could hash "
            "differently.  Every json.dump/json.dumps in the digest "
            "path must pass sort_keys=True (canonical_spec_json is the "
            "reference encoder)."
        ),
        scopes=CACHE_SCOPE,
        example_bad="json.dumps(spec.to_dict())",
        example_good="json.dumps(spec.to_dict(), sort_keys=True)",
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = context.dotted_name(node.func)
            if dotted not in ("json.dump", "json.dumps"):
                continue
            sorted_keys = False
            for keyword in node.keywords:
                if keyword.arg == "sort_keys":
                    value = keyword.value
                    sorted_keys = (
                        isinstance(value, ast.Constant)
                        and value.value is True
                    )
            if not sorted_keys:
                yield self.finding(
                    context,
                    node,
                    f"`{dotted}(...)` without sort_keys=True in the "
                    "digest path; insertion-order bytes are not "
                    "canonical",
                )


@register_rule
class FloatFormattingDrift(Rule):
    """C002: no precision-dependent float formatting in the digest path."""

    info = RuleInfo(
        code="C002",
        name="float-format-drift",
        summary="float string-formatting in the digest path",
        rationale=(
            "Formatting a float through %.3f / {:g} / f'{x:.2e}' bakes "
            "a display precision into bytes that may be hashed or "
            "stored; the same value then round-trips to a different "
            "spec.  Digest material must carry floats as JSON numbers "
            "(repr round-trip) via the canonical encoder, never as "
            "formatted text."
        ),
        scopes=CACHE_SCOPE,
        example_bad="key = f\"{persistence:.3f}\"",
        example_good="payload[\"persistence\"] = persistence  # JSON number",
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.FormattedValue):
                spec = node.format_spec
                if spec is None:
                    continue
                literal = "".join(
                    value.value
                    for value in spec.values
                    if isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                )
                if literal and _FLOAT_FORMAT_SPEC.match(literal):
                    yield self.finding(
                        context,
                        node,
                        f"float format spec `:{literal}` in the digest "
                        "path; formatted floats drift under precision "
                        "changes",
                    )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
                left = node.left
                if (
                    isinstance(left, ast.Constant)
                    and isinstance(left.value, str)
                    and _FLOAT_PERCENT.search(left.value)
                ):
                    yield self.finding(
                        context,
                        node,
                        "printf-style float conversion in the digest "
                        "path; formatted floats drift under precision "
                        "changes",
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "format"
                    and isinstance(func.value, ast.Constant)
                    and isinstance(func.value.value, str)
                    and _FLOAT_BRACE.search(func.value.value)
                ):
                    yield self.finding(
                        context,
                        node,
                        "str.format float conversion in the digest "
                        "path; formatted floats drift under precision "
                        "changes",
                    )


@register_rule
class ProcessSaltedHash(Rule):
    """C003: the builtin ``hash()`` must not feed the digest path."""

    info = RuleInfo(
        code="C003",
        name="process-salted-hash",
        summary="builtin hash() call in the digest path",
        rationale=(
            "hash() of str/bytes is salted per interpreter process "
            "(PYTHONHASHSEED), so its value cannot be persisted, "
            "compared across workers, or mixed into a digest.  Use "
            "hashlib.sha256 over canonical bytes instead."
        ),
        scopes=CACHE_SCOPE,
        example_bad="key = hash(spec.to_json())",
        example_good="key = hashlib.sha256(canonical_bytes).hexdigest()",
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                yield self.finding(
                    context,
                    node,
                    "builtin hash() is salted per process; use "
                    "hashlib.sha256 over canonical bytes",
                )
