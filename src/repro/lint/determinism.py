"""D-rules: determinism of the simulation and digest pipeline.

The paper's claims (Theorems 3-5) are deterministic: ``Dispersion_Dynamic``
terminates within a fixed round budget against *any* 1-interval connected
adversary, and the reproduction asserts those bounds on concrete runs.
That only holds if a :class:`~repro.sim.spec.RunSpec` fully determines
its :class:`~repro.sim.metrics.RunResult` -- which rules out reading the
wall clock, drawing unseeded randomness or consulting the process
environment anywhere inside the simulation and digest path.  The blessed
alternatives are the seeded-RNG idiom (``random.Random(seed)`` with a
seed derived from the spec) and the engine's round counter.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding, RuleInfo
from repro.lint.rules import (
    DETERMINISM_EXEMPT,
    DETERMINISM_SCOPE,
    ModuleContext,
    Rule,
    register_rule,
)

#: Dotted call targets that read the wall clock or calendar.  Monotonic
#: duration clocks (``time.perf_counter``, ``time.monotonic``) are *not*
#: listed: they measure elapsed time without injecting the epoch into
#: results, which is what benchmarking and retry backoff legitimately do.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.strftime",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.datetime.fromtimestamp",
        "date.today",
        "datetime.date.today",
    }
)

#: Module-level functions of :mod:`random` that draw from (or reseed) the
#: shared global RNG.  ``random.Random(seed)`` instances are the blessed
#: route and are untouched; ``random.Random()`` *without* a seed is
#: handled separately -- it seeds itself from the OS.
GLOBAL_RANDOM_CALLS = frozenset(
    {
        "seed",
        "random",
        "randint",
        "randrange",
        "randbytes",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "betavariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
    }
)


@register_rule
class WallClockRead(Rule):
    """D001: no wall-clock or calendar reads in deterministic code."""

    info = RuleInfo(
        code="D001",
        name="wall-clock-read",
        summary="wall-clock/calendar read inside the deterministic core",
        rationale=(
            "A RunSpec must fully determine its RunResult; reading the "
            "epoch clock makes re-runs diverge and poisons "
            "content-addressed cache entries.  Use the engine's round "
            "counter for logical time; time.perf_counter() is allowed "
            "for duration measurement."
        ),
        scopes=DETERMINISM_SCOPE,
        exempt=DETERMINISM_EXEMPT,
        example_bad='started = time.time()  # varies per run',
        example_good="elapsed = time.perf_counter() - t0  # duration only",
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = context.dotted_name(node.func)
            if dotted in WALL_CLOCK_CALLS:
                yield self.finding(
                    context,
                    node,
                    f"wall-clock read `{dotted}()` in deterministic code; "
                    "derive logical time from the engine's round counter "
                    "(reprolint: disable=D001 if provably "
                    "digest-irrelevant)",
                )


@register_rule
class UnseededRandomness(Rule):
    """D002: no global-RNG or unseeded randomness in deterministic code."""

    info = RuleInfo(
        code="D002",
        name="unseeded-randomness",
        summary="global or unseeded RNG inside the deterministic core",
        rationale=(
            "random.random() and friends draw from the interpreter-wide "
            "RNG whose state any import can perturb, and "
            "random.Random() with no arguments seeds itself from the "
            "OS.  Every stochastic component must draw from a "
            "random.Random(seed) derived from the spec's seed, so the "
            "same spec always replays the same run."
        ),
        scopes=DETERMINISM_SCOPE,
        exempt=DETERMINISM_EXEMPT,
        example_bad="port = random.randint(1, degree)",
        example_good="port = random.Random(spec.seed).randint(1, degree)",
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = context.dotted_name(node.func)
            if dotted is None:
                continue
            if dotted.startswith("random.") and (
                dotted.split(".", 1)[1] in GLOBAL_RANDOM_CALLS
            ):
                yield self.finding(
                    context,
                    node,
                    f"`{dotted}()` draws from the global RNG; use a "
                    "random.Random(seed) instance derived from the spec "
                    "seed",
                )
            elif dotted == "random.Random" and not (
                node.args or node.keywords
            ):
                yield self.finding(
                    context,
                    node,
                    "`random.Random()` without a seed self-seeds from "
                    "the OS; pass a seed derived from the spec",
                )
            elif dotted.startswith(("numpy.random.", "np.random.")):
                yield self.finding(
                    context,
                    node,
                    f"`{dotted}()` uses numpy's global RNG; construct "
                    "a numpy Generator from the spec seed instead",
                )


@register_rule
class EnvironmentRead(Rule):
    """D003: no environment reads in deterministic code."""

    info = RuleInfo(
        code="D003",
        name="environment-read",
        summary="process-environment read inside the deterministic core",
        rationale=(
            "os.environ differs between machines, shells and CI runs; a "
            "read inside the simulation or digest path makes results "
            "depend on state outside the spec.  Plumb configuration "
            "through RunSpec fields instead (reprolint: disable=D003 "
            "only for reads that cannot reach a digest, e.g. cache "
            "*location* discovery)."
        ),
        scopes=DETERMINISM_SCOPE,
        exempt=DETERMINISM_EXEMPT,
        example_bad='jobs = int(os.environ.get("REPRO_JOBS", "1"))',
        example_good="jobs = spec_or_cli_argument  # explicit input",
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Attribute) and node.attr == "environ":
                dotted = context.dotted_name(node)
                if dotted == "os.environ":
                    yield self.finding(
                        context,
                        node,
                        "`os.environ` read in deterministic code; pass "
                        "configuration through the spec or CLI instead",
                    )
            elif isinstance(node, ast.Call):
                dotted = context.dotted_name(node.func)
                if dotted in ("os.getenv", "os.environb.get"):
                    yield self.finding(
                        context,
                        node,
                        f"`{dotted}()` read in deterministic code; pass "
                        "configuration through the spec or CLI instead",
                    )
