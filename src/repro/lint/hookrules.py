"""H-rules: engine observers watch, they never steer.

The engine's hook contract (:class:`repro.sim.hooks.EngineObserver`)
promises that observers cannot perturb a run: every payload a hook
receives is a copy or documented read-only, and hook return values are
ignored.  An observer that mutates a payload (or relies on returning
something) breaks bit-reproducibility in the worst possible way --
results change depending on which observers happened to be attached,
which no digest accounts for.  These rules check ``on_*`` methods of
observer classes everywhere in the tree, fixtures included.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.lint.findings import Finding, RuleInfo
from repro.lint.rules import ModuleContext, Rule, register_rule

#: Method names that mutate their receiver in the stdlib containers.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "clear",
        "pop",
        "popitem",
        "remove",
        "discard",
        "setdefault",
        "sort",
        "reverse",
    }
)


def _is_observer_class(node: ast.ClassDef) -> bool:
    """Whether a class is (or subclasses) an engine observer.

    Matches a base called ``EngineObserver`` (bare or dotted) or any
    base/class whose name ends in ``Observer`` -- the repo's naming
    convention, which also lets fixtures opt in without importing the
    real base.
    """
    if node.name.endswith("Observer"):
        return True
    for base in node.bases:
        name: Optional[str] = None
        if isinstance(base, ast.Name):
            name = base.id
        elif isinstance(base, ast.Attribute):
            name = base.attr
        if name is not None and name.endswith("Observer"):
            return True
    return False


def _root_name(node: ast.AST) -> Optional[str]:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None


def _hook_methods(node: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    for item in node.body:
        if isinstance(item, ast.FunctionDef) and item.name.startswith("on_"):
            yield item


def _hook_params(method: ast.FunctionDef) -> Set[str]:
    """The method's parameter names, minus the receiver."""
    args = method.args
    names = [a.arg for a in args.posonlyargs + args.args]
    names.extend(a.arg for a in args.kwonlyargs)
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return set(names[1:]) if names else set()


@register_rule
class ObserverMutatesPayload(Rule):
    """H001: hooks must not mutate the payloads the engine hands them."""

    info = RuleInfo(
        code="H001",
        name="observer-mutates-payload",
        summary="observer hook mutates an engine-owned payload",
        rationale=(
            "Observers are instrumentation: the engine promises a run "
            "executes identically with or without them.  Assigning "
            "into, deleting from, or calling a mutating method on a "
            "hook argument (a record, snapshot, observation or "
            "position map) silently couples results to which observers "
            "are attached.  Copy the payload into observer-owned state "
            "(self.*) instead."
        ),
        example_bad=(
            "def on_round_end(self, record):\n"
            "    record.moved_robots = ()"
        ),
        example_good=(
            "def on_round_end(self, record):\n"
            "    self.moves.append(record.num_moves)"
        ),
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not (isinstance(node, ast.ClassDef) and _is_observer_class(node)):
                continue
            for method in _hook_methods(node):
                params = _hook_params(method)
                if not params:
                    continue
                yield from self._check_method(context, method, params)

    def _check_method(
        self,
        context: ModuleContext,
        method: ast.FunctionDef,
        params: Set[str],
    ) -> Iterator[Finding]:
        for node in ast.walk(method):
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    root = _root_name(target)
                    if root in params:
                        yield self.finding(
                            context,
                            node,
                            f"hook `{method.name}` writes into its "
                            f"`{root}` payload; observers must not "
                            "mutate engine state",
                        )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATING_METHODS
            ):
                root = _root_name(node.func.value)
                if root in params:
                    yield self.finding(
                        context,
                        node,
                        f"hook `{method.name}` calls mutating "
                        f"`.{node.func.attr}()` on its `{root}` "
                        "payload; observers must not mutate engine "
                        "state",
                    )


@register_rule
class ObserverReturnsValue(Rule):
    """H002: hook return values are ignored -- returning one is a bug."""

    info = RuleInfo(
        code="H002",
        name="observer-returns-value",
        summary="observer hook returns a value the engine discards",
        rationale=(
            "The engine never reads hook return values, so a `return "
            "something` inside on_* is dead code at best and, at "
            "worst, a misreading of the contract (e.g. returning a "
            "modified record expecting the engine to adopt it).  Hooks "
            "communicate only through observer-owned state."
        ),
        example_bad=(
            "def on_round_end(self, record):\n"
            "    return replace(record, num_moves=0)"
        ),
        example_good=(
            "def on_round_end(self, record):\n"
            "    self.last = record"
        ),
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not (isinstance(node, ast.ClassDef) and _is_observer_class(node)):
                continue
            for method in _hook_methods(node):
                yield from self._check_method(context, method)

    def _check_method(
        self, context: ModuleContext, method: ast.FunctionDef
    ) -> Iterator[Finding]:
        # Walk without descending into nested defs/lambdas: their
        # returns belong to them, not to the hook.
        stack = list(method.body)
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(node, ast.Return) and node.value is not None:
                if not (
                    isinstance(node.value, ast.Constant)
                    and node.value.value is None
                ):
                    yield self.finding(
                        context,
                        node,
                        f"hook `{method.name}` returns a value; the "
                        "engine ignores hook return values",
                    )
                continue
            stack.extend(ast.iter_child_nodes(node))
