"""The data model of ``repro lint``: findings and rule metadata.

A :class:`Finding` is one rule violation at one source location; a
:class:`RuleInfo` is the static description of a rule (code, scope,
rationale, examples) that the reporters, the documentation generator and
``repro lint --list-rules`` all render from.  Keeping both as frozen
dataclasses means a lint run is pure data end to end -- the same property
the simulator's :class:`~repro.sim.spec.RunSpec` layer is built on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordering is ``(path, line, column, code)`` so reports are stable
    regardless of the order rules ran in.
    """

    path: str
    line: int
    column: int
    code: str
    message: str

    def render(self) -> str:
        """The classic ``path:line:col: CODE message`` one-liner."""
        return f"{self.path}:{self.line}:{self.column}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (one entry of the ``--json`` report)."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "code": self.code,
            "message": self.message,
        }


@dataclass(frozen=True)
class RuleInfo:
    """Static metadata of one lint rule.

    ``scopes`` is the tuple of path patterns the rule applies to (a
    pattern ending in ``/`` matches a directory segment, anything else
    matches a path suffix); an empty tuple means the rule applies to
    every analyzed file.  ``exempt`` patterns (same shapes) carve
    specific files back out of the scope -- e.g. the chaos package's
    injector shims, whose whole job is the nondeterminism the D rules
    forbid.  ``example_bad`` / ``example_good`` are small snippets used
    by the docs and the rule catalogue.
    """

    code: str
    name: str
    summary: str
    rationale: str
    scopes: Tuple[str, ...] = field(default=())
    exempt: Tuple[str, ...] = field(default=())
    example_bad: str = ""
    example_good: str = ""

    @property
    def category(self) -> str:
        """The rule family letter.

        Shallow families: ``D`` (determinism), ``C`` (cache safety),
        ``R`` (reducibility), ``H`` (hook discipline).  Whole-program
        families live outside the shallow catalogue: ``T``/``F`` under
        ``--deep`` and ``E``/``M``/``S`` under ``--effects``, plus the
        shared ``P`` (parse) and ``B`` (baseline drift) codes.
        """
        return self.code[:1]
