"""``repro.lint`` -- AST-based determinism & cache-safety analyzer.

The reproduction's guarantees are deterministic claims, and the
content-addressed :class:`~repro.sim.store.RunStore` assumes a spec's
bytes fully determine a run.  ``repro lint`` machine-checks the
invariants that keep both true:

* **D-rules** -- determinism: no wall-clock reads (D001), no global or
  unseeded randomness (D002), no environment reads (D003) inside the
  simulation and digest path;
* **C-rules** -- cache safety: canonical JSON only (C001), no float
  formatting drift (C002), no process-salted ``hash()`` (C003) in the
  digest pipeline;
* **R-rules** -- registry hygiene: static component names (R001), no
  duplicate registrations (R002), factory arity matches the spec
  layer's calling convention (R003);
* **H-rules** -- observer purity: hooks never mutate engine payloads
  (H001) and never return values (H002).

``repro lint --deep`` adds the whole-program layer
(:mod:`repro.lint.deep`): an import-resolving call graph, transitive
nondeterminism taint paths from the deterministic core (T001),
fork-safety checks on the runner modules (F001-F003), and a checked-in
baseline snapshot that turns the findings into a drift gate (B001 for
stale baseline entries).  See the "Deep analysis" section of
``docs/static-analysis.md``.

Violations carry per-rule codes and can be silenced inline with
``# reprolint: disable=CODE`` on the offending line.  Run it as
``repro-dispersion lint``, ``python -m repro.lint``, or through
:func:`lint_paths` / :func:`lint_source` programmatically.  See
``docs/static-analysis.md`` for the full rule catalogue.
"""

from repro.lint.engine import (
    PARSE_ERROR_CODE,
    LintReport,
    iter_python_files,
    lint_paths,
    lint_source,
)
from repro.lint.findings import Finding, RuleInfo
from repro.lint.reporters import (
    REPORT_FORMAT_VERSION,
    render_json,
    render_rule_catalogue,
    render_text,
    report_to_dict,
)
from repro.lint.deep import (
    DeepResult,
    render_deep_summary,
    run_deep_analysis,
)
from repro.lint.rules import (
    CACHE_SCOPE,
    DETERMINISM_SCOPE,
    Rule,
    all_rules,
    path_in_scope,
    register_rule,
    rule_catalogue,
    select_rules,
)

__all__ = [
    "CACHE_SCOPE",
    "DETERMINISM_SCOPE",
    "DeepResult",
    "Finding",
    "LintReport",
    "PARSE_ERROR_CODE",
    "REPORT_FORMAT_VERSION",
    "Rule",
    "RuleInfo",
    "all_rules",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "path_in_scope",
    "register_rule",
    "render_deep_summary",
    "render_json",
    "render_rule_catalogue",
    "render_text",
    "report_to_dict",
    "rule_catalogue",
    "run_deep_analysis",
    "select_rules",
]
