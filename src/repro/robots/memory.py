"""Persistent-memory bit accounting (the currency of Lemma 8).

The paper measures memory as the number of bits a robot stores *between*
rounds; within-round scratch space is free.  Algorithms in this library
expose their per-robot persistent state as a small dict of primitive values
via ``persistent_state(robot_id)``; the functions here convert such states
into bit counts so the engine can audit the Theta(log k) bound empirically.

The encoding charged is the information-theoretic one a real robot would
use: an integer field known to lie in ``[0, B]`` costs ``ceil(log2(B + 1))``
bits, a boolean costs 1 bit, ``None`` (absent optional field) costs the
field's full width (the robot must still reserve the slot).
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Optional, Tuple


def robot_id_bits(k: int) -> int:
    """Bits needed to store a robot ID from ``[1, k]``: ``ceil(log2 k)``."""
    if k < 1:
        raise ValueError("k must be >= 1")
    return max(1, math.ceil(math.log2(k))) if k > 1 else 1


def bits_for_value(value: Any, *, bound: Optional[int] = None) -> int:
    """Bits to persist one value.

    ``bound`` is the declared maximum for integer fields (e.g. ``k`` for a
    robot ID, the maximum degree for a port).  Without a bound, the value's
    own bit length is charged -- a lower bound on any real encoding.
    """
    if value is None:
        return 0 if bound is None else max(1, math.ceil(math.log2(bound + 1)))
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        if bound is not None:
            if value > bound:
                raise ValueError(
                    f"value {value} exceeds its declared bound {bound}"
                )
            return max(1, math.ceil(math.log2(bound + 1)))
        return max(1, abs(value).bit_length() + (1 if value < 0 else 0))
    if isinstance(value, (tuple, list)):
        return sum(bits_for_value(item) for item in value)
    if isinstance(value, str):
        return 8 * len(value.encode("utf-8"))
    if isinstance(value, frozenset) or isinstance(value, set):
        return sum(bits_for_value(item) for item in value)
    raise TypeError(
        f"cannot account bits for persistent value of type {type(value)!r}; "
        "persistent state must be built from ints, bools, strings, and "
        "containers of those"
    )


def bits_for_state(
    state: Mapping[str, Any],
    *,
    bounds: Optional[Mapping[str, int]] = None,
) -> int:
    """Total persisted bits for a robot's named state fields.

    ``bounds`` optionally declares the maximum for integer fields by name.
    Field names themselves are not charged: they are part of the algorithm's
    program, not its state.
    """
    bounds = bounds or {}
    return sum(
        bits_for_value(value, bound=bounds.get(name))
        for name, value in state.items()
    )


def theoretical_memory_bound(k: int, constant: float = 4.0) -> float:
    """A reference ``constant * log2(k)`` curve for plots and assertions."""
    if k < 2:
        return constant
    return constant * math.log2(k)


def summarize_memory(per_robot_bits: Mapping[int, int]) -> Tuple[int, float]:
    """Return ``(max_bits, mean_bits)`` across robots."""
    if not per_robot_bits:
        return (0, 0.0)
    values = list(per_robot_bits.values())
    return (max(values), sum(values) / len(values))
