"""Byzantine robots: forged packets and adversarial movement (§VIII).

The paper's third future-work direction asks about *byzantine* faults.
This module implements the fault model so the question becomes executable:
a byzantine robot (i) moves arbitrarily (adversary-chosen ports) and
(ii) when it is its node's *representative* -- the smallest ID present,
hence the one that broadcasts the node's information packet -- it may
**forge** that packet.  Forgery is constrained to what a malicious sender
could actually fake: the contents of its own broadcast (its reported
co-located IDs/count, degree, and occupied-neighbor claims), never other
nodes' packets and never physics (its true position, the real edges).

Three attack policies are provided, each targeting a different load-bearing
assumption of Algorithm 4:

* :class:`HideMultiplicity` -- under-report the node's robot count as 1.
  If the adversary seats a byzantine robot as representative of the last
  multiplicity node, every honest robot sees a dispersion configuration
  and halts forever: **silent livelock**, the cleanest possible breakage.
* :class:`FakeMultiplicity` -- over-report phantom co-located robots with
  IDs beyond ``k``.  Honest robots keep "resolving" a multiplicity that
  does not exist, wasting moves and, with the phantom as smallest-ID
  multiplicity, steering every spanning-tree root to the liar.
* :class:`ScrambleNeighbors` -- report the occupied-neighbor port map
  permuted.  Sliding robots that route *through the liar's node* exit
  through wrong ports, breaking the monotone-progress invariant.

The engine applies policies in
:class:`~repro.sim.engine.SimulationEngine` via the
``byzantine_policies`` parameter; dispersion is then judged on *honest*
robots only (the natural BYZANTINEDISPERSION analog of Definition 6).

The accompanying benchmark (E7) measures the damage; the headline finding
-- a single well-placed byzantine robot defeats the algorithm -- is
exactly why the paper lists byzantine tolerance as open.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import Optional, Tuple

from repro.sim.observation import InfoPacket, NeighborInfo


def _coin(seed: int, round_index: int, purpose: str, modulus: int) -> int:
    """Deterministic adversarial 'randomness' for byzantine choices."""
    if modulus <= 0:
        return 0
    digest = hashlib.sha256(
        f"byz:{seed}:{purpose}:{round_index}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") % modulus


class ByzantinePolicy(ABC):
    """One byzantine robot's behavior: how it forges and how it moves."""

    def __init__(self, *, seed: int = 0) -> None:
        self._seed = seed

    @abstractmethod
    def forge_packet(
        self, true_packet: InfoPacket, round_index: int
    ) -> InfoPacket:
        """The packet broadcast instead of the truthful one.

        Only called when the byzantine robot is its node's representative
        (the broadcaster).  Must return a *structurally* plausible packet
        -- the representative field must stay the byzantine robot's own ID
        (identities are unforgeable in the model: IDs are the one thing
        robots can verify of each other).
        """

    def choose_move(
        self, degree: int, round_index: int
    ) -> Optional[int]:
        """The byzantine robot's own movement: a port or None (stay).

        Default: move through an adversarially pseudo-random port (a
        byzantine robot has no obligation to follow the algorithm).
        """
        if degree == 0:
            return None
        return 1 + _coin(self._seed, round_index, "move", degree)


class HideMultiplicity(ByzantinePolicy):
    """Under-report: claim to be alone on the node.

    Removes every co-located ID above the representative's own from the
    packet.  Honest robots relying on global multiplicity detection for
    termination (as Algorithm 4 does) see a dispersed configuration and
    stop making progress -- permanently, if the hidden multiplicity is the
    last one.
    """

    def forge_packet(
        self, true_packet: InfoPacket, round_index: int
    ) -> InfoPacket:
        return InfoPacket(
            representative_id=true_packet.representative_id,
            robot_ids=(true_packet.representative_id,),
            degree=true_packet.degree,
            occupied_neighbors=true_packet.occupied_neighbors,
        )

    def choose_move(self, degree: int, round_index: int) -> Optional[int]:
        """Stay put: moving away would expose the hidden robots."""
        return None


class FakeMultiplicity(ByzantinePolicy):
    """Over-report: claim phantom co-located robots.

    Two phantom-ID regimes, increasingly vicious:

    * ``impersonate=False`` (default) -- phantom IDs live *above* any real
      ID, colliding with nobody.  Honest algorithms see a permanent
      multiplicity node and keep trying to resolve it; Algorithm 4 assigns
      the phantoms to sliding paths (they are the next-smallest "robots"
      at the root), wasting those paths every round.
    * ``impersonate=True`` -- the phantoms reuse the IDs of *real* robots
      positioned elsewhere.  Honest robots then receive sliding
      instructions computed for a node they are not on: misrouted moves,
      possibly invalid ports -- the algorithm's determinism is turned
      against it.  (Whether real systems permit ID impersonation depends
      on authentication assumptions; both variants are measured.)
    """

    def __init__(
        self,
        *,
        phantoms: int = 2,
        impersonate: bool = False,
        impersonated_ids: Tuple[int, ...] = (),
        seed: int = 0,
    ) -> None:
        super().__init__(seed=seed)
        if phantoms < 1:
            raise ValueError("need at least one phantom robot")
        self._phantoms = phantoms
        self._impersonate = impersonate
        self._impersonated_ids = impersonated_ids

    def forge_packet(
        self, true_packet: InfoPacket, round_index: int
    ) -> InfoPacket:
        if self._impersonate and self._impersonated_ids:
            extras = set(self._impersonated_ids[: self._phantoms])
        else:
            base = 10_000 + 100 * true_packet.representative_id
            extras = {base + i for i in range(self._phantoms)}
        fake_ids = tuple(sorted(set(true_packet.robot_ids) | extras))
        return InfoPacket(
            representative_id=true_packet.representative_id,
            robot_ids=fake_ids,
            degree=true_packet.degree,
            occupied_neighbors=true_packet.occupied_neighbors,
        )

    def choose_move(self, degree: int, round_index: int) -> Optional[int]:
        """Stay put so the phantom multiplicity is stable."""
        return None


class ScrambleNeighbors(ByzantinePolicy):
    """Permute the reported ports of the occupied neighbors.

    Honest robots planning a sliding hop *through the liar's node* compute
    their exit port from this packet; a rotated port map sends them to the
    wrong neighbor (possibly an occupied one), voiding the disjoint-path
    analysis for that round.
    """

    def forge_packet(
        self, true_packet: InfoPacket, round_index: int
    ) -> InfoPacket:
        infos: Tuple[NeighborInfo, ...] = true_packet.occupied_neighbors
        if len(infos) < 2:
            return true_packet
        rotation = 1 + _coin(
            self._seed, round_index, "rotate", len(infos) - 1
        )
        ports = [info.port for info in infos]
        rotated_ports = ports[rotation:] + ports[:rotation]
        scrambled = tuple(
            NeighborInfo(
                port=new_port,
                representative_id=info.representative_id,
                robot_count=info.robot_count,
                robot_ids=info.robot_ids,
            )
            for info, new_port in zip(infos, rotated_ports)
        )
        scrambled = tuple(sorted(scrambled, key=lambda info: info.port))
        return InfoPacket(
            representative_id=true_packet.representative_id,
            robot_ids=true_packet.robot_ids,
            degree=true_packet.degree,
            occupied_neighbors=scrambled,
        )
