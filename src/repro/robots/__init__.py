"""Robot model: identities, persistent-memory accounting, crash faults.

Robots are the only entities with identity in the model: each carries a
unique ID in ``[1, k]`` (``ceil(log2 k)`` bits).  Nodes are anonymous and
memoryless.  A robot's *persistent* memory -- the bits it carries across
rounds -- is the resource the paper's Theta(log k) memory bound speaks
about; temporary within-round computation is explicitly free.  This package
provides the bit-accounting used to verify Lemma 8 empirically, plus crash
schedules for the Section VII fault model.
"""

from repro.robots.robot import RobotSet, validate_robot_ids
from repro.robots.memory import bits_for_value, bits_for_state, robot_id_bits
from repro.robots.faults import CrashEvent, CrashPhase, CrashSchedule
from repro.robots.byzantine import (
    ByzantinePolicy,
    FakeMultiplicity,
    HideMultiplicity,
    ScrambleNeighbors,
)

__all__ = [
    "RobotSet",
    "validate_robot_ids",
    "bits_for_value",
    "bits_for_state",
    "robot_id_bits",
    "CrashEvent",
    "CrashPhase",
    "CrashSchedule",
    "ByzantinePolicy",
    "FakeMultiplicity",
    "HideMultiplicity",
    "ScrambleNeighbors",
]
