"""Robot identities and initial placements.

The paper's robots are distinguishable agents with unique IDs in ``[1, k]``.
This module provides :class:`RobotSet`, a small helper describing a set of
robots and their initial placement on ground-truth nodes, plus placement
constructors for the configurations the paper distinguishes (rooted vs.
arbitrary initial configurations).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Mapping, Optional


def validate_robot_ids(ids: Iterable[int]) -> List[int]:
    """Check that ``ids`` are exactly ``1..k`` for some ``k``; return sorted."""
    sorted_ids = sorted(ids)
    if not sorted_ids:
        raise ValueError("robot set must be non-empty")
    k = len(sorted_ids)
    if sorted_ids != list(range(1, k + 1)):
        raise ValueError(
            f"robot IDs must be exactly 1..{k}, got {sorted_ids}"
        )
    return sorted_ids


class RobotSet:
    """``k`` robots with IDs ``1..k`` and an initial node placement.

    ``positions`` maps robot id -> ground-truth node index.  Multiple robots
    may share a node (multiplicity nodes); at least one multiplicity node
    must exist for DISPERSION to be non-trivial, but single-robot instances
    are allowed (they are trivially dispersed).
    """

    def __init__(self, positions: Mapping[int, int], n: int) -> None:
        validate_robot_ids(positions.keys())
        if len(positions) > n:
            raise ValueError(
                f"k={len(positions)} robots exceed n={n} nodes; "
                "DISPERSION requires k <= n"
            )
        for robot_id, node in positions.items():
            if not 0 <= node < n:
                raise ValueError(
                    f"robot {robot_id} placed on node {node}, out of range "
                    f"for n={n}"
                )
        self._positions: Dict[int, int] = dict(positions)
        self._n = n

    # ------------------------------------------------------------------
    # Constructors for the paper's initial configurations
    # ------------------------------------------------------------------

    @classmethod
    def rooted(cls, k: int, n: int, *, root: int = 0) -> "RobotSet":
        """All ``k`` robots on one node: the *rooted* initial configuration."""
        return cls({robot_id: root for robot_id in range(1, k + 1)}, n)

    @classmethod
    def arbitrary(
        cls,
        k: int,
        n: int,
        rng: random.Random,
        *,
        num_occupied: Optional[int] = None,
    ) -> "RobotSet":
        """A random arbitrary initial configuration.

        ``num_occupied`` controls how many distinct nodes initially hold
        robots (default: a random value in ``[1, k]``).  Every chosen node
        gets at least one robot; the remainder are spread randomly, so the
        configuration generally contains multiplicity nodes.
        """
        if not 1 <= k <= n:
            raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
        if num_occupied is None:
            num_occupied = rng.randint(1, k)
        if not 1 <= num_occupied <= k:
            raise ValueError(
                f"num_occupied must be in [1, {k}], got {num_occupied}"
            )
        nodes = rng.sample(range(n), num_occupied)
        positions: Dict[int, int] = {}
        robot_ids = list(range(1, k + 1))
        rng.shuffle(robot_ids)
        for i, robot_id in enumerate(robot_ids):
            if i < num_occupied:
                positions[robot_id] = nodes[i]
            else:
                positions[robot_id] = rng.choice(nodes)
        return cls(positions, n)

    @classmethod
    def from_node_loads(
        cls, loads: Mapping[int, int], n: int
    ) -> "RobotSet":
        """Place robots by ``{node: count}``; IDs assigned in node order."""
        positions: Dict[int, int] = {}
        next_id = 1
        for node in sorted(loads):
            count = loads[node]
            if count < 0:
                raise ValueError(f"negative robot count at node {node}")
            for _ in range(count):
                positions[next_id] = node
                next_id += 1
        return cls(positions, n)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def k(self) -> int:
        """Number of robots."""
        return len(self._positions)

    @property
    def n(self) -> int:
        """Number of graph nodes the placement refers to."""
        return self._n

    @property
    def positions(self) -> Dict[int, int]:
        """A copy of the robot -> node placement."""
        return dict(self._positions)

    def robot_ids(self) -> List[int]:
        """Sorted robot IDs (always ``1..k``)."""
        return sorted(self._positions)

    def occupied_nodes(self) -> List[int]:
        """Sorted list of initially occupied nodes."""
        return sorted(set(self._positions.values()))

    def multiplicity_nodes(self) -> List[int]:
        """Nodes initially holding two or more robots."""
        counts: Dict[int, int] = {}
        for node in self._positions.values():
            counts[node] = counts.get(node, 0) + 1
        return sorted(node for node, c in counts.items() if c >= 2)

    def is_dispersed(self) -> bool:
        """Whether the placement already has at most one robot per node."""
        return not self.multiplicity_nodes()

    def __repr__(self) -> str:
        return (
            f"RobotSet(k={self.k}, n={self._n}, "
            f"occupied={len(self.occupied_nodes())})"
        )
