"""Crash-fault schedules (Section VII of the paper).

A crashed robot "behaves as if it has vanished from the system": it stops
communicating, never moves again, and no robot can observe where it was.
The paper allows a crash at any time except mid-move (moves are
instantaneous), which at round granularity leaves two distinct crash
points:

* ``BEFORE_COMMUNICATE`` -- the robot vanishes before the round's
  Communicate phase; its information packet is never broadcast, so the
  survivors' component construction simply excludes it (possibly splitting
  a component, which the paper explicitly tolerates).
* ``AFTER_COMPUTE`` -- the robot vanishes after computing (and being
  included in everyone's packets) but before moving; other robots slide as
  planned while the crashed one silently stays put and disappears.  Its
  node may thereby become empty, which "behaves like a previously
  unoccupied empty node for round r+1".

A :class:`CrashSchedule` maps robots to their single crash event; the
simulation engine consumes it phase by phase.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple


class CrashPhase(enum.Enum):
    """Where within a round a crash strikes."""

    BEFORE_COMMUNICATE = "before_communicate"
    AFTER_COMPUTE = "after_compute"


@dataclass(frozen=True)
class CrashEvent:
    """One robot's crash: the round and intra-round phase it vanishes at."""

    robot_id: int
    round_index: int
    phase: CrashPhase

    def __post_init__(self) -> None:
        if self.round_index < 0:
            raise ValueError("crash round must be >= 0")
        if self.robot_id < 1:
            raise ValueError("robot ids start at 1")


class CrashSchedule:
    """An assignment of at most one crash event per robot.

    The schedule is the *adversary's* choice; the engine applies it
    mechanically.  The empty schedule models the fault-free setting.
    """

    def __init__(self, events: Iterable[CrashEvent] = ()) -> None:
        self._by_robot: Dict[int, CrashEvent] = {}
        for event in events:
            if event.robot_id in self._by_robot:
                raise ValueError(
                    f"robot {event.robot_id} has two crash events; "
                    "a robot crashes at most once"
                )
            self._by_robot[event.robot_id] = event

    @classmethod
    def none(cls) -> "CrashSchedule":
        """The fault-free schedule."""
        return cls()

    @classmethod
    def from_mapping(
        cls, crashes: Mapping[int, Tuple[int, CrashPhase]]
    ) -> "CrashSchedule":
        """Build from ``{robot_id: (round, phase)}``."""
        return cls(
            CrashEvent(robot_id, rnd, phase)
            for robot_id, (rnd, phase) in crashes.items()
        )

    @classmethod
    def random_schedule(
        cls,
        k: int,
        f: int,
        max_round: int,
        rng: random.Random,
        *,
        phases: Optional[List[CrashPhase]] = None,
    ) -> "CrashSchedule":
        """``f`` distinct robots crash at random rounds in ``[0, max_round]``.

        ``phases`` restricts the sampled crash phases (default: both).
        """
        if not 0 <= f <= k:
            raise ValueError(f"need 0 <= f <= k, got f={f}, k={k}")
        if max_round < 0:
            raise ValueError("max_round must be >= 0")
        phase_choices = phases or list(CrashPhase)
        victims = rng.sample(range(1, k + 1), f)
        return cls(
            CrashEvent(
                victim, rng.randint(0, max_round), rng.choice(phase_choices)
            )
            for victim in victims
        )

    # ------------------------------------------------------------------
    # Queries used by the engine
    # ------------------------------------------------------------------

    @property
    def num_faults(self) -> int:
        """Number of scheduled crashes ``f``."""
        return len(self._by_robot)

    def events(self) -> List[CrashEvent]:
        """All events, sorted by (round, phase, robot)."""
        return sorted(
            self._by_robot.values(),
            key=lambda e: (e.round_index, e.phase.value, e.robot_id),
        )

    def crashes_at(self, round_index: int, phase: CrashPhase) -> Set[int]:
        """Robots that vanish at exactly this round and phase."""
        return {
            event.robot_id
            for event in self._by_robot.values()
            if event.round_index == round_index and event.phase is phase
        }

    def event_for(self, robot_id: int) -> Optional[CrashEvent]:
        """The crash event of ``robot_id``, if any."""
        return self._by_robot.get(robot_id)

    def __len__(self) -> int:
        return len(self._by_robot)

    def __repr__(self) -> str:
        return f"CrashSchedule(f={len(self._by_robot)})"
