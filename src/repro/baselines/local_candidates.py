"""Candidate deterministic local-model algorithms for the Theorem 1 demo.

Theorem 1 says *no* deterministic algorithm solves DISPERSION on dynamic
graphs in the local communication model, even with 1-neighborhood knowledge
and unlimited memory.  A universal negative cannot be executed, so the
benchmark runs a family of natural candidate strategies -- each a
reasonable attempt a practitioner might write -- against the
:class:`~repro.adversary.local_impossibility.LocalStallAdversary` and shows
that none of them ever reaches dispersion, while each of them *does*
disperse on easy static instances (so the stall is the adversary's doing,
not trivial brokenness).

All candidates share the same settle-ish skeleton: the smallest-ID robot of
a node stays; surplus robots try to leave.  They differ in how a robot
picks its exit port from its 1-NK view, which is exactly the design axis
the impossibility argument kills: a local view cannot reveal the direction
of distant free nodes, and the adversary controls both the topology and the
port labelling.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.sim.algorithm import (
    Decision,
    MoveDecision,
    RobotAlgorithm,
    STAY,
)
from repro.sim.observation import CommunicationModel, Observation


class _LocalCandidateBase(RobotAlgorithm):
    """Shared skeleton: smallest robot holds the node, surplus robots move."""

    requires_communication = CommunicationModel.LOCAL
    requires_neighborhood_knowledge = True
    # Lower-bound candidates: the adversary argument stalls a lock-step
    # round structure, so running them semi-/asynchronously is meaningless.
    compatible_schedulers = ("fsync",)

    def decide(self, observation: Observation) -> Decision:
        packet = observation.own_packet
        if observation.robot_id == packet.robot_ids[0]:
            return self._decide_holder(observation)
        return self._decide_surplus(observation)

    def _decide_holder(self, observation: Observation) -> Decision:
        """The node's smallest robot: default is to stay settled."""
        return STAY

    def _decide_surplus(self, observation: Observation) -> Decision:
        """A surplus robot must pick a port (or stay)."""
        raise NotImplementedError

    def persistent_state(self, robot_id: int) -> Dict[str, Any]:
        return {"id": robot_id}

    def detects_termination(self, observation: Observation) -> bool:
        return False  # local model: no global detection


class LocalSmallestEmptyPort(_LocalCandidateBase):
    """Surplus robots exit through the smallest empty port; if every
    neighbor is occupied, through the smallest port overall.

    The greedy "go where it's free" strategy.  On a dynamic graph the
    adversary simply never shows the surplus robots an empty port (only the
    path frontier has one), so surplus robots shuffle among occupied nodes
    forever.
    """

    name = "local_smallest_empty_port"

    def _decide_surplus(self, observation: Observation) -> Decision:
        packet = observation.own_packet
        if packet.degree == 0:
            return STAY
        port = packet.smallest_empty_port
        return MoveDecision(port if port is not None else 1)


class LocalChainShift(_LocalCandidateBase):
    """Every robot -- including settled singles -- tries to participate in
    a sweep: a robot alone on its node moves towards an empty neighbor if
    it sees one; otherwise, if some neighbor is a multiplicity node, it
    moves *away* from the largest co-observed multiplicity through its
    smallest port not leading to that multiplicity.  Surplus robots chase
    the smallest empty port as in :class:`LocalSmallestEmptyPort`.

    This is the natural "bucket brigade" attempt at the synchronized sweep
    the Figure 1 argument is about; the adversary's mirrored port labelling
    makes the mid-path robots shift in opposite directions, so the sweep
    never completes.
    """

    name = "local_chain_shift"

    def _decide_holder(self, observation: Observation) -> Decision:
        packet = observation.own_packet
        if packet.robot_count > 1 or packet.degree == 0:
            return STAY
        empty = packet.smallest_empty_port
        if empty is not None:
            return MoveDecision(empty)
        multiplicity_ports = [
            info.port
            for info in packet.occupied_neighbors
            if info.robot_count >= 2
        ]
        if multiplicity_ports:
            avoid = set(multiplicity_ports)
            for port in range(1, packet.degree + 1):
                if port not in avoid:
                    return MoveDecision(port)
        return STAY

    def _decide_surplus(self, observation: Observation) -> Decision:
        packet = observation.own_packet
        if packet.degree == 0:
            return STAY
        port = packet.smallest_empty_port
        return MoveDecision(port if port is not None else 1)


class LocalPseudoRandomPort(_LocalCandidateBase):
    """Surplus robots pick a port by hashing (id, round) -- a deterministic
    stand-in for the "scatter randomly" instinct.  1-NK is used only to
    prefer an empty port when one is visible.

    Against the stall adversary the hash-chosen ports always land on
    occupied neighbors (only the frontier sees an empty port), so surplus
    robots mix around the path without ever increasing the occupied count
    to ``k``.
    """

    name = "local_pseudo_random_port"

    def _decide_surplus(self, observation: Observation) -> Decision:
        packet = observation.own_packet
        if packet.degree == 0:
            return STAY
        empty = packet.smallest_empty_port
        if empty is not None:
            return MoveDecision(empty)
        mix = hash((observation.robot_id * 2654435761) ^ observation.round_index)
        return MoveDecision(1 + (mix % packet.degree))


LOCAL_CANDIDATES = (
    LocalSmallestEmptyPort,
    LocalChainShift,
    LocalPseudoRandomPort,
)
"""The candidate classes the Theorem 1 benchmark sweeps."""
