"""Randomized dispersion with a single persistent bit (related work).

The paper's related-work section cites Molla & Moses Jr. (TAMC 2019),
"Dispersion of mobile robots: The power of randomness", where randomization
buys memory below the deterministic Omega(log k) bound.  This module
implements a representative algorithm in that spirit:

* the only *persistent* state is the settled bit -- one bit per robot;
* robots never persist (or compare) their IDs; within a round, co-located
  unsettled robots hold a *lottery*: each draws a value, and a robot
  settles iff its draw is the strict minimum among the co-located
  unsettled robots and no settled robot is present (local communication
  makes the draws exchangeable; a tie means nobody settles that round --
  with real randomness ties have probability ~0, and re-draws happen next
  round anyway);
* unsettled robots otherwise walk through a random port.

Randomness is derandomized into a hash of ``(seed, robot id, round)`` so
runs are reproducible; the robot's ID serves purely as the entropy channel
a physical robot would get from its own coin flips, and never influences
decisions in any other way.

Against the deterministic lower bound this is the trade the related work
studies: Theta(log k) deterministic bits vs O(1) persistent bits plus
random coins and only probabilistic round guarantees.  The test suite
measures both: 1 persistent bit, and geometric-ish completion times that
degrade gracefully with k.

Note the Theorem 2 caveat: determinized randomness is still deterministic,
so the clique-rewiring adversary (which may simulate the coin stream)
stalls this algorithm too when 1-NK is absent -- randomization does not
circumvent the paper's impossibility, only the memory bound.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Mapping

from repro.sim.algorithm import (
    Decision,
    MoveDecision,
    RobotAlgorithm,
    STAY,
)
from repro.sim.observation import CommunicationModel, Observation


def _draw(seed: int, robot_id: int, round_index: int, purpose: str) -> int:
    """A 64-bit derandomized coin for one robot, round, and purpose."""
    digest = hashlib.sha256(
        f"{seed}:{purpose}:{robot_id}:{round_index}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


class RandomizedAnonymousDispersion(RobotAlgorithm):
    """One-persistent-bit randomized dispersion (lottery + random walk)."""

    name = "randomized_anonymous_dispersion"
    requires_communication = CommunicationModel.LOCAL
    requires_neighborhood_knowledge = False

    def __init__(self, *, seed: int = 0) -> None:
        self._seed = seed
        self._settled: Dict[int, bool] = {}

    def on_run_start(self, k: int, n: int) -> None:
        for robot_id in range(1, k + 1):
            self._settled[robot_id] = False

    def decide(self, observation: Observation) -> Decision:
        robot_id = observation.robot_id
        packet = observation.own_packet
        here = packet.robot_ids

        if self._settled[robot_id]:
            return STAY

        unsettled_here = [r for r in here if not self._settled[r]]
        settled_here = [r for r in here if self._settled[r]]

        if not settled_here:
            # The lottery: strict minimum draw settles.  Draws are
            # exchangeable among co-located robots (local communication).
            draws = {
                r: _draw(self._seed, r, observation.round_index, "lottery")
                for r in unsettled_here
            }
            my_draw = draws[robot_id]
            if all(
                my_draw < other
                for r, other in draws.items()
                if r != robot_id
            ):
                self._settled[robot_id] = True
                return STAY

        if packet.degree == 0:
            return STAY
        port = 1 + _draw(
            self._seed, robot_id, observation.round_index, "walk"
        ) % packet.degree
        return MoveDecision(port)

    def persistent_state(self, robot_id: int) -> Dict[str, Any]:
        # The whole point: one bit.  No ID is persisted -- the ID appears
        # only as the simulator's entropy channel inside decide().
        return {"settled": self._settled.get(robot_id, False)}

    def persistent_state_bounds(self, k: int, n: int) -> Mapping[str, int]:
        return {}

    def detects_termination(self, observation: Observation) -> bool:
        return False
