"""Candidate global-communication algorithms *without* 1-NK (Theorem 2 demo).

Theorem 2 says no deterministic algorithm solves DISPERSION on dynamic
graphs with global communication but without 1-neighborhood knowledge.
Global communication lets every robot see every occupied node's packet
(who is where-by-representative, multiplicities, degrees) -- but no packet
reveals *which ports lead to empty nodes*, and that is fatal: the
:class:`~repro.adversary.global_impossibility.CliqueRewiringAdversary`
reroutes exactly the ports nobody uses towards the empty region.

Like the local candidates, these are natural strategies a practitioner
might try; the benchmark shows each is stalled indefinitely by the
adversary while dispersing fine on easy static instances.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.sim.algorithm import (
    Decision,
    MoveDecision,
    RobotAlgorithm,
    STAY,
)
from repro.sim.observation import CommunicationModel, Observation


class _GlobalNo1NKBase(RobotAlgorithm):
    """Shared skeleton: smallest robot of a node anchors it, surplus move."""

    requires_communication = CommunicationModel.GLOBAL
    requires_neighborhood_knowledge = False
    # Lower-bound candidates: the adversary argument stalls a lock-step
    # round structure, so running them semi-/asynchronously is meaningless.
    compatible_schedulers = ("fsync",)

    def decide(self, observation: Observation) -> Decision:
        packet = observation.own_packet
        if not observation.sees_multiplicity:
            return STAY  # dispersion reached (globally visible)
        if observation.robot_id == packet.robot_ids[0]:
            return STAY
        if packet.degree == 0:
            return STAY
        return self._pick_port(observation)

    def _pick_port(self, observation: Observation) -> Decision:
        raise NotImplementedError

    def persistent_state(self, robot_id: int) -> Dict[str, Any]:
        return {"id": robot_id}


class BlindRankSpread(_GlobalNo1NKBase):
    """Surplus robots fan out by co-location rank: the ``i``-th surplus
    robot of a node exits through port ``1 + (i - 1) mod degree``.

    On a static star this disperses a rooted group in one round (each
    surplus robot takes a distinct port).  Against the adversary, the
    ranks -- and hence the ports -- are fully predictable, so the rewired
    edge is always one no rank selects.
    """

    name = "blind_rank_spread"

    def _pick_port(self, observation: Observation) -> Decision:
        packet = observation.own_packet
        rank = packet.robot_ids.index(observation.robot_id)  # >= 1 (surplus)
        return MoveDecision(1 + (rank - 1) % packet.degree)


class BlindRotor(_GlobalNo1NKBase):
    """Surplus robots sweep ports with a monotone per-robot counter
    (a robot-side rotor-router): in step ``t`` of its life a surplus robot
    exits through port ``1 + t mod degree``.

    Each robot persists the counter (O(log n) bits, stored modulo 2^16).
    On a static graph the rotor eventually pushes a surplus robot across
    every incident edge; on the adversary's graph the rotor's next port is
    known in advance, so the rewired edge is always one the rotor is *not*
    about to take.
    """

    name = "blind_rotor"

    _COUNTER_MOD = 1 << 16

    def __init__(self) -> None:
        self._counter: Dict[int, int] = {}

    def on_run_start(self, k: int, n: int) -> None:
        for robot_id in range(1, k + 1):
            self._counter[robot_id] = 0

    def _pick_port(self, observation: Observation) -> Decision:
        robot_id = observation.robot_id
        degree = observation.own_packet.degree
        counter = self._counter.get(robot_id, 0)
        port = 1 + counter % degree
        self._counter[robot_id] = (counter + 1) % self._COUNTER_MOD
        return MoveDecision(port)

    def persistent_state(self, robot_id: int) -> Dict[str, Any]:
        return {"id": robot_id, "counter": self._counter.get(robot_id, 0)}

    def persistent_state_bounds(self, k: int, n: int) -> Mapping[str, int]:
        return {"id": k, "counter": self._COUNTER_MOD - 1}


class BlindIdSpread(_GlobalNo1NKBase):
    """Surplus robots hash (id, round) into a port -- derandomized
    scattering.  Deterministic, so the adversary simulates it exactly and
    the hashed ports always land inside the clique."""

    name = "blind_id_spread"

    def _pick_port(self, observation: Observation) -> Decision:
        degree = observation.own_packet.degree
        mix = hash(
            (observation.robot_id * 0x9E3779B1) ^ (observation.round_index * 0x85EBCA77)
        )
        return MoveDecision(1 + (mix % degree))


GLOBAL_NO1NK_CANDIDATES = (
    BlindRankSpread,
    BlindRotor,
    BlindIdSpread,
)
"""The candidate classes the Theorem 2 benchmark sweeps."""
