"""Baseline and candidate algorithms.

Two roles:

* **Literature baselines** for the contrast experiments: a DFS-based
  dispersion algorithm in the style of the static-graph prior work
  (Augustine & Moses Jr. 2018; Kshemkalyani & Ali 2019) and a randomized
  walk-based dispersion.  They disperse on static graphs but degrade or
  fail under adversarial dynamism, which is exactly the gap the paper's
  algorithm closes.
* **Candidate algorithm families** for the impossibility demonstrations:
  plausible deterministic local-model algorithms (Theorem 1) and
  global-model algorithms without 1-neighborhood knowledge (Theorem 2),
  which the adversaries of :mod:`repro.adversary` stall indefinitely.
"""

from repro.baselines.dfs_local import DfsDispersionLocal
from repro.baselines.random_walk import RandomWalkDispersion
from repro.baselines.randomized_anonymous import RandomizedAnonymousDispersion
from repro.baselines.ring_walk import RingWalkDispersion
from repro.baselines.local_candidates import (
    LOCAL_CANDIDATES,
    LocalChainShift,
    LocalSmallestEmptyPort,
    LocalPseudoRandomPort,
)
from repro.baselines.global_candidates import (
    GLOBAL_NO1NK_CANDIDATES,
    BlindIdSpread,
    BlindRankSpread,
    BlindRotor,
)

__all__ = [
    "DfsDispersionLocal",
    "RandomWalkDispersion",
    "RandomizedAnonymousDispersion",
    "RingWalkDispersion",
    "LOCAL_CANDIDATES",
    "LocalChainShift",
    "LocalSmallestEmptyPort",
    "LocalPseudoRandomPort",
    "GLOBAL_NO1NK_CANDIDATES",
    "BlindIdSpread",
    "BlindRankSpread",
    "BlindRotor",
]
