"""DFS-based dispersion in the local model (static-graph baseline).

This is the style of algorithm the prior static-graph work builds on
(Augustine & Moses Jr., ICDCN 2018; Kshemkalyani & Ali, ICDCN 2019): robots
travel as groups performing a depth-first search; at every unsettled node
the smallest-ID unsettled robot *settles* and thereafter acts as the node's
memory (nodes themselves are memoryless), storing the DFS parent port and a
rotor over the remaining ports.  The travelling group asks the settled
robot (local communication -- they are co-located) for the next port to
explore, backtracking through the parent port when the rotor is exhausted.

Per-robot persistent memory: the settled flag, the parent port, and the
rotor position -- O(log Delta) bits on top of the ID, matching the
literature's local-model costs.

On a *static* graph this disperses any ``k <= n`` robots (groups that meet
merge under the smallest ID present).  On a *dynamic* graph it breaks down,
because port numbers and edges carry no meaning across rounds -- the stored
parent port of a settled robot may point anywhere tomorrow.  That failure
is the paper's motivation and our contrast benchmark: the same workload
that DFS handles statically defeats it under churn, while
``Dispersion_Dynamic`` still finishes in O(k) rounds (using the stronger
global + 1-NK model, which the impossibility results show is necessary).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.sim.algorithm import (
    Decision,
    MoveDecision,
    RobotAlgorithm,
    STAY,
)
from repro.sim.observation import CommunicationModel, Observation


class DfsDispersionLocal(RobotAlgorithm):
    """Group DFS dispersion for static graphs, local communication model."""

    name = "dfs_dispersion_local"
    requires_communication = CommunicationModel.LOCAL
    requires_neighborhood_knowledge = False

    def __init__(self) -> None:
        # Per-robot persistent state (audited by the engine):
        self._settled: Dict[int, bool] = {}
        self._parent_port: Dict[int, Optional[int]] = {}
        self._rotor: Dict[int, int] = {}
        # Within-round coordination: the settled robot of a node announces
        # the port the group should take; co-located robots read it (local
        # communication makes this free).  Cleared every round.
        self._announced_port: Dict[int, int] = {}

    def on_run_start(self, k: int, n: int) -> None:
        for robot_id in range(1, k + 1):
            self._settled[robot_id] = False
            self._parent_port[robot_id] = None
            self._rotor[robot_id] = 0

    def on_round_start(self, round_index: int) -> None:
        self._announced_port.clear()

    # ------------------------------------------------------------------

    def decide(self, observation: Observation) -> Decision:
        robot_id = observation.robot_id
        packet = observation.own_packet
        here = packet.robot_ids

        if self._settled[robot_id]:
            return STAY

        settled_here = [r for r in here if self._settled[r]]
        unsettled_here = [r for r in here if not self._settled[r]]

        if not settled_here:
            # Unsettled node: the smallest unsettled robot settles and
            # becomes the node's memory; its parent port is the port the
            # group entered through (None at the starting node).
            if robot_id == unsettled_here[0]:
                self._settled[robot_id] = True
                self._parent_port[robot_id] = observation.entry_port
                self._rotor[robot_id] = 0
                # Announce the group's next port on behalf of this node.
                port = self._advance_rotor(robot_id, packet.degree)
                self._announced_port[robot_id] = port
                return STAY
            leader = unsettled_here[0]
            port = self._announced_for(leader, packet.degree)
            return MoveDecision(port) if port is not None else STAY

        # Node already has a settled robot: it (the smallest settled one)
        # tells the group where to go next.
        memory_robot = settled_here[0]
        port = self._announced_for(memory_robot, packet.degree)
        return MoveDecision(port) if port is not None else STAY

    # ------------------------------------------------------------------

    def _announced_for(self, memory_robot: int, degree: int) -> Optional[int]:
        """The port the node's memory robot directs the group through.

        Computed once per node per round (first asker triggers it); all
        co-located robots then read the same announcement.
        """
        if memory_robot not in self._announced_port:
            port = self._advance_rotor(memory_robot, degree)
            self._announced_port[memory_robot] = port
        port = self._announced_port[memory_robot]
        return port if port and port <= degree else None

    def _advance_rotor(self, memory_robot: int, degree: int) -> int:
        """Next unexplored port of the node; parent port when exhausted.

        The rotor walks ports ``1..degree`` skipping the parent port; when
        every other port has been handed out, the group is sent back
        through the parent (DFS backtrack).  At the DFS root (no parent)
        the rotor wraps around, re-exploring -- on a static graph this only
        happens after the whole component is explored, i.e. after
        dispersion already completed for ``k <= n``.
        """
        parent = self._parent_port[memory_robot]
        while self._rotor[memory_robot] < degree:
            self._rotor[memory_robot] += 1
            candidate = self._rotor[memory_robot]
            if candidate != parent:
                return candidate
        if parent is not None:
            return parent
        self._rotor[memory_robot] = 0  # root wrap-around
        return 1 if degree >= 1 else 0

    # ------------------------------------------------------------------
    # Memory audit
    # ------------------------------------------------------------------

    def persistent_state(self, robot_id: int) -> Dict[str, Any]:
        return {
            "id": robot_id,
            "settled": self._settled.get(robot_id, False),
            "parent_port": self._parent_port.get(robot_id),
            "rotor": self._rotor.get(robot_id, 0),
        }

    def persistent_state_bounds(self, k: int, n: int) -> Mapping[str, int]:
        # Ports are bounded by the maximum degree, itself at most n - 1.
        return {"id": k, "parent_port": n, "rotor": n}

    def detects_termination(self, observation: Observation) -> bool:
        # Local communication: a robot only sees its own node; it cannot
        # detect global dispersion.  (The engine's ground-truth stop ends
        # the run; results flag that robots did not self-detect.)
        return False
