"""Randomized walk-based dispersion (in the spirit of Molla & Moses Jr. 2019).

The simplest memory-light dispersion strategy: at any node, the smallest-ID
robot present settles (if no robot has settled there before); every other
robot keeps walking through a pseudo-random port each round.  Randomness is
derandomized into a hash of ``(seed, robot id, round)`` so runs are
reproducible and the algorithm stays formally deterministic for the
engine's purposes, while behaving statistically like a lazy random walk.

Unlike the DFS baseline this survives dynamic graphs -- a random walk needs
no cross-round port meaning -- but its completion time on adversarial or
even benign dynamic graphs is far worse than the paper algorithm's O(k)
(and on the Theorem 3 star-star adversary it still cannot beat one new node
per round, while wasting many more moves).  It serves as the "what you can
do without the paper's machinery" baseline.

Persistent state per robot: ID + settled bit = O(log k) bits.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Mapping

from repro.sim.algorithm import (
    Decision,
    MoveDecision,
    RobotAlgorithm,
    STAY,
)
from repro.sim.observation import CommunicationModel, Observation


def _pseudo_random_port(seed: int, robot_id: int, round_index: int, degree: int) -> int:
    """Deterministic 'random' port in ``1..degree``."""
    digest = hashlib.sha256(
        f"{seed}:{robot_id}:{round_index}".encode()
    ).digest()
    return 1 + int.from_bytes(digest[:8], "big") % degree


class RandomWalkDispersion(RobotAlgorithm):
    """Settle-the-smallest, walk-the-rest dispersion."""

    name = "random_walk_dispersion"
    requires_communication = CommunicationModel.LOCAL
    requires_neighborhood_knowledge = False

    def __init__(self, *, seed: int = 0, lazy: bool = False) -> None:
        self._seed = seed
        self._lazy = lazy
        self._settled: Dict[int, bool] = {}

    def on_run_start(self, k: int, n: int) -> None:
        for robot_id in range(1, k + 1):
            self._settled[robot_id] = False

    def decide(self, observation: Observation) -> Decision:
        robot_id = observation.robot_id
        packet = observation.own_packet
        here = packet.robot_ids

        if self._settled[robot_id]:
            return STAY

        settled_here = [r for r in here if self._settled[r]]
        unsettled_here = [r for r in here if not self._settled[r]]

        if not settled_here and robot_id == unsettled_here[0]:
            # Claim this node: smallest unsettled robot settles, provided
            # nobody settled here already (co-located robots exchange their
            # settled bits -- local communication).
            self._settled[robot_id] = True
            return STAY

        if packet.degree == 0:
            return STAY
        if self._lazy:
            # A lazy walk flips a derandomized coin to move at all.
            gate = _pseudo_random_port(
                self._seed + 1_000_003, robot_id, observation.round_index, 2
            )
            if gate == 1:
                return STAY
        port = _pseudo_random_port(
            self._seed, robot_id, observation.round_index, packet.degree
        )
        return MoveDecision(port)

    def persistent_state(self, robot_id: int) -> Dict[str, Any]:
        return {"id": robot_id, "settled": self._settled.get(robot_id, False)}

    def persistent_state_bounds(self, k: int, n: int) -> Mapping[str, int]:
        return {"id": k}

    def detects_termination(self, observation: Observation) -> bool:
        return False
