"""Direction-persistent dispersion on dynamic rings (local model).

The related work the paper cites for dynamic graphs -- Agarwalla et al.,
"Deterministic dispersion of mobile robots in dynamic rings" (ICDCN 2018)
-- has no public artifact; this module implements a *representative*
local-model ring strategy in its spirit (documented as our own design, not
a reproduction of their algorithm):

* the smallest unsettled robot on an unsettled node settles and never
  moves again (settled robots are the anchor of the local model);
* every other robot walks with **direction persistence**: on a degree-2
  node it exits through the port it did not enter by (continuing straight
  regardless of how the round relabels ports); on a degree-1 node (the
  dynamic ring's missing edge is incident) it is *blocked* and re-enters
  through the only port, which on a ring amounts to reversing;
* at round 0 (no entry port yet) surplus robots split by co-location
  rank parity, half walking each way.

On a static or randomly-faulting ring this disperses k <= n robots; the
point of the accompanying benchmark is the contrast visible on rings:

* against the *blocking* adversary of
  :class:`repro.graph.rings.RingDynamicGraph` the walker is severely
  slowed or stalled (the adversary keeps removing the edge the leading
  walker wants), while
* the paper's global + 1-NK algorithm runs on the same dynamic rings
  within its usual ``k - 1`` bound, untouched by the blocking -- global
  information is exactly what rings were missing.

Persistent state: id, settled bit (entry ports are supplied by the model
itself -- the paper grants a moving robot knowledge of its entry port).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.sim.algorithm import (
    Decision,
    MoveDecision,
    RobotAlgorithm,
    STAY,
)
from repro.sim.observation import CommunicationModel, Observation


class RingWalkDispersion(RobotAlgorithm):
    """Settle-or-keep-walking dispersion specialized to ring topologies."""

    name = "ring_walk_dispersion"
    requires_communication = CommunicationModel.LOCAL
    requires_neighborhood_knowledge = False

    def __init__(self) -> None:
        self._settled: Dict[int, bool] = {}

    def on_run_start(self, k: int, n: int) -> None:
        for robot_id in range(1, k + 1):
            self._settled[robot_id] = False

    def decide(self, observation: Observation) -> Decision:
        robot_id = observation.robot_id
        packet = observation.own_packet
        here = packet.robot_ids

        if self._settled[robot_id]:
            return STAY

        settled_here = [r for r in here if self._settled[r]]
        unsettled_here = [r for r in here if not self._settled[r]]

        if not settled_here and robot_id == unsettled_here[0]:
            self._settled[robot_id] = True
            return STAY

        if packet.degree == 0:
            return STAY
        if packet.degree == 1:
            # the missing ring edge is incident: blocked; bounce back
            return MoveDecision(1)

        entry = observation.entry_port
        if entry is not None and 1 <= entry <= packet.degree:
            # continue straight: the port we did not enter through
            return MoveDecision(1 if entry != 1 else 2)
        # no direction yet: split by co-location rank parity
        rank = unsettled_here.index(robot_id)
        return MoveDecision(1 + rank % 2)

    def persistent_state(self, robot_id: int) -> Dict[str, Any]:
        return {"id": robot_id, "settled": self._settled.get(robot_id, False)}

    def persistent_state_bounds(self, k: int, n: int) -> Mapping[str, int]:
        return {"id": k}

    def detects_termination(self, observation: Observation) -> bool:
        return False
