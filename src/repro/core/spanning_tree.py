"""Algorithm 2 -- ``ComponentSpanningTree``: deterministic DFS tree.

Given a connected component with at least one multiplicity node, every
robot builds the same spanning tree (Lemma 2): the root is the smallest-ID
multiplicity node, and the tree is grown by a DFS that pushes each node's
unexplored neighbors onto a stack in *decreasing* port order (so the
smallest port is explored first), connecting every node to the node from
which it was first discovered.

A component without a multiplicity node is already dispersed and gets no
tree (the paper's Algorithm 2 simply does not run there);
:func:`build_spanning_tree` returns ``None`` in that case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.components import ComponentGraph


@dataclass
class SpanningTree:
    """The spanning tree ``ST_r^phi`` of one component.

    Nodes are representative IDs (unique; Observation 3).  ``parent`` maps
    every non-root node to the node it was discovered from; ``children``
    lists each node's children in discovery order.
    """

    root: int
    parent: Dict[int, Optional[int]]
    children: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def nodes(self) -> List[int]:
        """All tree nodes, sorted by representative ID."""
        return sorted(self.parent)

    @property
    def size(self) -> int:
        """Number of nodes (equals the component size: the tree spans)."""
        return len(self.parent)

    def __contains__(self, rep: int) -> bool:
        return rep in self.parent

    def edges(self) -> List[Tuple[int, int]]:
        """Tree edges as ``(parent, child)`` pairs, sorted by child."""
        return sorted(
            (parent, child)
            for child, parent in self.parent.items()
            if parent is not None
        )

    def root_path(self, rep: int) -> List[int]:
        """``RootPath_r^phi(rep)``: node sequence from the root to ``rep``.

        The unique tree path; returns ``[root]`` when ``rep`` is the root.
        """
        if rep not in self.parent:
            raise KeyError(f"{rep} is not a tree node")
        path = [rep]
        current = rep
        while self.parent[current] is not None:
            current = self.parent[current]  # type: ignore[assignment]
            path.append(current)
        path.reverse()
        if path[0] != self.root:
            raise AssertionError("root path did not reach the root")
        return path

    def depth(self, rep: int) -> int:
        """Tree depth of ``rep`` (root is 0)."""
        return len(self.root_path(rep)) - 1

    def is_valid_tree(self) -> bool:
        """Structural self-check: connected, acyclic, parent/child match."""
        if self.parent.get(self.root, "missing") is not None:
            return False
        seen = set()
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node in seen:
                return False
            seen.add(node)
            for child in self.children.get(node, []):
                if self.parent.get(child) != node:
                    return False
                stack.append(child)
        return seen == set(self.parent)


def choose_root(component: ComponentGraph) -> Optional[int]:
    """The tree root: smallest-ID multiplicity node, or None if dispersed."""
    multiplicities = component.multiplicity_representatives()
    return multiplicities[0] if multiplicities else None


def build_spanning_tree(component: ComponentGraph) -> Optional[SpanningTree]:
    """Algorithm 2: the deterministic DFS spanning tree of ``component``.

    Returns ``None`` when the component has no multiplicity node (it is
    already a dispersion configuration and needs no tree).
    """
    root = choose_root(component)
    if root is None:
        return None

    parent: Dict[int, Optional[int]] = {root: None}
    children: Dict[int, List[int]] = {root: []}

    # Paper: push the root's neighbors in decreasing port order so the
    # smallest port sits on top of the stack and is explored first.
    stack: List[Tuple[int, int]] = []  # (node, discovered_from)

    def push_neighbors(node: int) -> None:
        by_port = component.neighbors_by_port(node)
        for port in sorted(by_port, reverse=True):
            neighbor = by_port[port]
            if neighbor not in parent:
                stack.append((neighbor, node))

    push_neighbors(root)
    while stack:
        node, discovered_from = stack.pop()
        if node in parent:
            continue  # discovered through an earlier (smaller-port) edge
        parent[node] = discovered_from
        children[node] = []
        children[discovered_from].append(node)
        push_neighbors(node)

    if set(parent) != set(component.representatives):
        raise AssertionError(
            "spanning tree does not span its component; the component "
            "graph is not connected"
        )
    return SpanningTree(root=root, parent=parent, children=children)


def build_spanning_tree_bfs(
    component: ComponentGraph,
) -> Optional[SpanningTree]:
    """The paper's parenthetical alternative: a BFS spanning tree.

    Section V notes "(a breadth-first search, BFS, approach can also be
    used)" -- any deterministic construction shared by all robots
    preserves Lemmas 2 and 4.  This variant explores level by level,
    visiting each node's neighbors in increasing port order; the ablation
    benchmark runs the full algorithm on BFS trees to confirm the
    guarantees are construction-agnostic.
    """
    root = choose_root(component)
    if root is None:
        return None

    parent: Dict[int, Optional[int]] = {root: None}
    children: Dict[int, List[int]] = {root: []}
    frontier: List[int] = [root]
    while frontier:
        next_frontier: List[int] = []
        for node in frontier:
            by_port = component.neighbors_by_port(node)
            for port in sorted(by_port):
                neighbor = by_port[port]
                if neighbor not in parent:
                    parent[neighbor] = node
                    children[neighbor] = []
                    children[node].append(neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier

    if set(parent) != set(component.representatives):
        raise AssertionError(
            "BFS spanning tree does not span its component"
        )
    return SpanningTree(root=root, parent=parent, children=children)
