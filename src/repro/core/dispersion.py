"""Algorithm 4 -- ``Dispersion_Dynamic``: the O(k)-round dispersion algorithm.

Every round, every robot:

1. broadcasts its node's information packet and receives all others
   (global communication; packets built by the engine's Communicate phase);
2. reconstructs its connected component (Algorithm 1), the component's
   spanning tree rooted at the smallest-ID multiplicity node (Algorithm 2),
   and the disjoint root-path set (Algorithm 3);
3. truncates the path set to ``count(v_root) - 1`` paths (increasing
   leaf-ID order) so the root is never vacated;
4. applies the sliding rule: if the robot is the designated mover of a path
   hop it exits through the corresponding port, otherwise it stays.

All of this happens in temporary memory; the only state persisted across
rounds is the robot's ID, so the memory bound is Theta(log k) bits
(Lemma 8).  Termination is detected locally: with global communication the
absence of any multiplicity packet is visible to everyone.

Two execution modes:

* ``faithful=False`` (default): since every robot of a round receives the
  identical packet set and the computation is deterministic (Lemmas 1, 2
  and 4), the algorithm computes the full round's move map once and lets
  each robot look its own move up.  Semantically identical, linearly
  faster.
* ``faithful=True``: every robot independently recomputes its component's
  structures from its own observation, exactly as the paper states it.
  The test suite runs both modes and asserts they produce identical runs.

The same object handles the crash-fault setting of Section VII: crashes
only change *which* packets exist (the engine drops crashed robots), and
the construction is already a pure function of the received packets.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.components import (
    ComponentGraph,
    build_component,
    partition_into_components,
)
from repro.core.disjoint_paths import compute_disjoint_paths
from repro.core.sliding import compute_sliding_moves, truncate_paths
from repro.core.spanning_tree import build_spanning_tree
from repro.sim.algorithm import (
    Decision,
    MoveDecision,
    RobotAlgorithm,
    STAY,
)
from repro.sim.observation import CommunicationModel, InfoPacket, Observation


def component_moves(component: ComponentGraph) -> Dict[int, int]:
    """The ``{robot_id: exit_port}`` map of one component for one round.

    Empty when the component has no multiplicity node (nothing to do).
    This is the complete per-round Compute phase of Algorithm 4 for the
    robots of the component.
    """
    tree = build_spanning_tree(component)
    if tree is None:
        return {}
    paths = compute_disjoint_paths(tree, component)
    root_count = component.node(tree.root).robot_count
    paths = truncate_paths(paths, root_count)
    return compute_sliding_moves(component, tree, paths)


class DispersionDynamic(RobotAlgorithm):
    """The paper's main algorithm as an engine-runnable robot program."""

    name = "dispersion_dynamic"
    requires_communication = CommunicationModel.GLOBAL
    requires_neighborhood_knowledge = True

    def __init__(self, *, faithful: bool = False) -> None:
        self._faithful = faithful
        self._round_moves: Optional[Dict[int, int]] = None
        self._round_index: Optional[int] = None

    def component_moves(self, component: ComponentGraph) -> Dict[int, int]:
        """Per-component Compute phase; overridable by ablation variants
        (see :mod:`repro.analysis.ablation`)."""
        return component_moves(component)

    def on_round_start(self, round_index: int) -> None:
        # Temporary (within-round) memory: cleared every round, never
        # counted against the robots (the paper's model makes in-round
        # computation free).
        self._round_moves = None
        self._round_index = round_index

    def decide(self, observation: Observation) -> Decision:
        if not observation.sees_multiplicity:
            return STAY  # dispersion configuration reached

        if self._faithful:
            moves = self._moves_for_own_component(observation)
        else:
            moves = self._moves_for_round(observation.packets)

        port = moves.get(observation.robot_id)
        return MoveDecision(port) if port is not None else STAY

    # ------------------------------------------------------------------
    # Faithful mode: per-robot recomputation (paper's literal statement)
    # ------------------------------------------------------------------

    def _moves_for_own_component(
        self, observation: Observation
    ) -> Dict[int, int]:
        component = build_component(
            observation.packets, observation.own_packet.representative_id
        )
        return self.component_moves(component)

    # ------------------------------------------------------------------
    # Fast mode: one computation per round (identical by Lemmas 1/2/4)
    # ------------------------------------------------------------------

    def _moves_for_round(
        self, packets: Tuple[InfoPacket, ...]
    ) -> Dict[int, int]:
        if self._round_moves is None:
            moves: Dict[int, int] = {}
            for component in partition_into_components(packets):
                moves.update(self.component_moves(component))
            self._round_moves = moves
        return self._round_moves
