"""The sliding rule: turning selected root paths into robot moves.

Given a component, its spanning tree, and the selected (truncated) disjoint
paths, sliding moves exactly one robot along every hop of every path:

* one robot leaves the root towards the path's second node (or, for the
  trivial single-node path, straight through the root's smallest empty
  port);
* at every interior path node one robot moves to the next path node;
* the robot at the leaf steps onto the leaf's smallest-port empty neighbor.

The paper leaves the choice of *which* co-located robot moves unspecified
(any deterministic rule works since all robots share the same global
information); we fix it as follows and document it as part of the
reproduction's protocol:

* at the root, the robots are sorted ascending; the smallest stays (the
  root must never be vacated -- Lemma 7), and the ``i``-th selected path is
  assigned the ``(i+1)``-st smallest robot;
* at any other path node the *largest*-ID robot moves, so the smallest ID
  -- the node's representative -- stays put and node identities remain
  stable within the round.

Because paths are node-disjoint outside the root, every robot is asked to
move at most once; the output is a conflict-free ``{robot_id: port}`` map.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.components import ComponentGraph
from repro.core.disjoint_paths import RootPath
from repro.core.spanning_tree import SpanningTree


class SlidingError(AssertionError):
    """Sliding preconditions violated (a bug, not a legal model state)."""


def truncate_paths(
    paths: List[RootPath], root_count: int
) -> List[RootPath]:
    """Algorithm 4's cap: keep at most ``count(v_root) - 1`` paths.

    ``paths`` must already be in increasing leaf-ID order (as produced by
    Algorithm 3); the paper keeps the first ``count - 1`` in that order so
    the root is never emptied.
    """
    if root_count < 1:
        raise SlidingError("the root holds at least one robot by definition")
    return paths[: max(0, root_count - 1)]


def compute_sliding_moves(
    component: ComponentGraph,
    tree: SpanningTree,
    paths: List[RootPath],
) -> Dict[int, int]:
    """The round's ``{robot_id: exit_port}`` map for one component.

    ``paths`` is the truncated disjoint path set.  Robots absent from the
    map stay put.
    """
    root_info = component.node(tree.root)
    if len(paths) > root_info.robot_count - 1:
        raise SlidingError(
            f"{len(paths)} paths but only {root_info.robot_count} robots "
            "at the root; truncate_paths() was skipped"
        )

    moves: Dict[int, int] = {}
    root_robots = sorted(root_info.robot_ids)
    # root_robots[0] stays forever; movers are assigned in ID order to
    # paths in leaf-ID order.
    for index, path in enumerate(paths):
        root_mover = root_robots[index + 1]
        if path.is_trivial:
            port = root_info.smallest_empty_port
            if port is None:
                raise SlidingError(
                    "trivial path selected but the root has no empty "
                    "neighbor"
                )
            _record(moves, root_mover, port)
            continue

        _record(
            moves,
            root_mover,
            component.port_between(path.nodes[0], path.nodes[1]),
        )
        for position in range(1, len(path.nodes)):
            node = path.nodes[position]
            info = component.node(node)
            mover = max(info.robot_ids)
            if position < len(path.nodes) - 1:
                port = component.port_between(node, path.nodes[position + 1])
            else:
                port = info.smallest_empty_port
                if port is None:
                    raise SlidingError(
                        f"leaf {node} selected but has no empty neighbor"
                    )
            _record(moves, mover, port)

    return moves


def _record(moves: Dict[int, int], robot_id: int, port: int) -> None:
    if robot_id in moves:
        raise SlidingError(
            f"robot {robot_id} asked to move twice; paths are not disjoint"
        )
    moves[robot_id] = port
