"""Algorithm 1 -- ``ConnectedComponent``: component construction from packets.

Every occupied node of the round graph ``G_r`` is identified by the smallest
robot ID positioned on it (its *representative*; Observation 1 of the
paper).  From the received information packets a robot reconstructs the
connected component ``CG_r^phi`` of occupied nodes containing its own node:
nodes keyed by representative ID, edges annotated with the port numbers at
both endpoints.

The construction follows the paper's Algorithm 1 exactly: starting from the
robot's own node, repeatedly take the smallest-ID unprocessed node, add its
occupied neighbors (known from its packet), and stop when no node of the
partial component has an occupied neighbor outside it.  Because occupied
components are maximal and packets are consistent, the result is the same
for every robot of the component (Lemma 1), which
:func:`build_component` preserves by being a deterministic pure function of
the packet set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.sim.observation import InfoPacket


class ComponentConstructionError(ValueError):
    """The packet set is inconsistent (impossible in a correct run)."""


@dataclass(frozen=True)
class ComponentNodeInfo:
    """What the component records about one of its (occupied) nodes."""

    representative_id: int
    robot_ids: Tuple[int, ...]
    degree: int
    """Degree of the underlying graph node in ``G_r``."""

    occupied_ports: Tuple[int, ...]
    """Ports of this node leading to occupied neighbors."""

    @property
    def robot_count(self) -> int:
        """Multiplicity of the node."""
        return len(self.robot_ids)

    @property
    def is_multiplicity(self) -> bool:
        """Whether two or more robots sit here."""
        return len(self.robot_ids) >= 2

    @property
    def empty_degree(self) -> int:
        """Number of ports leading to *empty* neighbors in ``G_r``."""
        return self.degree - len(self.occupied_ports)

    @property
    def has_empty_neighbor(self) -> bool:
        """Whether at least one neighbor in ``G_r`` holds no robot."""
        return self.empty_degree > 0

    @property
    def smallest_empty_port(self) -> Optional[int]:
        """Smallest port towards an empty neighbor (the sliding target)."""
        occupied = set(self.occupied_ports)
        for port in range(1, self.degree + 1):
            if port not in occupied:
                return port
        return None


class ComponentGraph:
    """A connected component ``CG_r^phi`` of the occupied subgraph.

    Nodes are representative IDs; ``adjacency[u][port] = v`` records that
    the node represented by ``u`` reaches the node represented by ``v``
    through ``port``.  Both directions are stored, so the port of the
    reverse direction is ``port_between(v, u)``.
    """

    def __init__(
        self,
        nodes: Mapping[int, ComponentNodeInfo],
        adjacency: Mapping[int, Mapping[int, int]],
    ) -> None:
        self._nodes: Dict[int, ComponentNodeInfo] = dict(nodes)
        self._adjacency: Dict[int, Dict[int, int]] = {
            rep: dict(ports) for rep, ports in adjacency.items()
        }
        for rep in self._nodes:
            self._adjacency.setdefault(rep, {})
        self._reverse: Dict[int, Dict[int, int]] = {
            rep: {nbr: port for port, nbr in ports.items()}
            for rep, ports in self._adjacency.items()
        }

    # -- queries --------------------------------------------------------

    @property
    def representatives(self) -> List[int]:
        """Sorted representative IDs of the component's nodes."""
        return sorted(self._nodes)

    @property
    def size(self) -> int:
        """Number of occupied nodes in the component."""
        return len(self._nodes)

    def node(self, rep: int) -> ComponentNodeInfo:
        """Info record of the node represented by ``rep``."""
        return self._nodes[rep]

    def __contains__(self, rep: int) -> bool:
        return rep in self._nodes

    def neighbors(self, rep: int) -> List[int]:
        """Occupied neighbors of ``rep`` within the component, sorted."""
        return sorted(self._adjacency[rep].values())

    def neighbors_by_port(self, rep: int) -> Dict[int, int]:
        """``{port: neighbor_rep}`` map of ``rep`` (occupied edges only)."""
        return dict(self._adjacency[rep])

    def port_between(self, u_rep: int, v_rep: int) -> int:
        """Port at ``u_rep``'s node leading to ``v_rep``'s node."""
        try:
            return self._reverse[u_rep][v_rep]
        except KeyError:
            raise ComponentConstructionError(
                f"no component edge from {u_rep} to {v_rep}"
            ) from None

    def edges(self) -> List[Tuple[int, int]]:
        """Component edges as sorted ``(min_rep, max_rep)`` pairs."""
        seen = set()
        for u, ports in self._adjacency.items():
            for v in ports.values():
                seen.add((min(u, v), max(u, v)))
        return sorted(seen)

    def multiplicity_representatives(self) -> List[int]:
        """Representatives of multiplicity nodes, sorted ascending."""
        return sorted(
            rep for rep, info in self._nodes.items() if info.is_multiplicity
        )

    @property
    def has_multiplicity(self) -> bool:
        """Whether any node of the component holds >= 2 robots."""
        return any(info.is_multiplicity for info in self._nodes.values())

    def total_robots(self) -> int:
        """Robots positioned on this component's nodes."""
        return sum(info.robot_count for info in self._nodes.values())

    def robot_ids(self) -> List[int]:
        """All robot IDs present in the component, sorted."""
        ids: List[int] = []
        for info in self._nodes.values():
            ids.extend(info.robot_ids)
        return sorted(ids)

    def __repr__(self) -> str:
        return (
            f"ComponentGraph(nodes={self.size}, "
            f"robots={self.total_robots()})"
        )


def _packet_index(packets: Iterable[InfoPacket]) -> Dict[int, InfoPacket]:
    index: Dict[int, InfoPacket] = {}
    for packet in packets:
        if packet.representative_id in index:
            raise ComponentConstructionError(
                f"two packets claim representative {packet.representative_id}"
            )
        index[packet.representative_id] = packet
    return index


def _node_info(packet: InfoPacket) -> ComponentNodeInfo:
    return ComponentNodeInfo(
        representative_id=packet.representative_id,
        robot_ids=packet.robot_ids,
        degree=packet.degree,
        occupied_ports=packet.occupied_ports,
    )


def build_component(
    packets: Iterable[InfoPacket],
    own_representative: int,
    *,
    processing_trace: Optional[List[int]] = None,
) -> ComponentGraph:
    """Algorithm 1: build the component containing ``own_representative``.

    ``packets`` is the set of information packets the robot received (all
    occupied nodes' packets under global communication).  Processing order
    follows the paper: the smallest-ID to-be-processed node first.  The
    loop ends when every reachable node's occupied neighbors are already in
    the component -- the paper's two termination conditions (all packets
    consumed / no occupied neighbor leads outside) collapse to BFS
    exhaustion.

    ``processing_trace``, if supplied, receives the representative IDs in
    the exact order the loop processed them (used by the pseudocode
    faithfulness tests; the resulting component is order-independent).
    """
    index = _packet_index(packets)
    if own_representative not in index:
        raise ComponentConstructionError(
            f"no packet from representative {own_representative}"
        )

    nodes: Dict[int, ComponentNodeInfo] = {}
    adjacency: Dict[int, Dict[int, int]] = {}
    to_process: Set[int] = {own_representative}
    processed: Set[int] = set()

    while to_process:
        rep = min(to_process)  # paper: smallest-ID node first
        to_process.discard(rep)
        processed.add(rep)
        if processing_trace is not None:
            processing_trace.append(rep)
        packet = index.get(rep)
        if packet is None:
            raise ComponentConstructionError(
                f"component references representative {rep} but no packet "
                "from it was received; packets are inconsistent"
            )
        nodes[rep] = _node_info(packet)
        ports: Dict[int, int] = {}
        for info in packet.occupied_neighbors:
            ports[info.port] = info.representative_id
            if (
                info.representative_id not in processed
                and info.representative_id not in to_process
            ):
                to_process.add(info.representative_id)
        adjacency[rep] = ports

    _check_symmetry(nodes, adjacency)
    return ComponentGraph(nodes, adjacency)


def _check_symmetry(
    nodes: Mapping[int, ComponentNodeInfo],
    adjacency: Mapping[int, Mapping[int, int]],
) -> None:
    for u, ports in adjacency.items():
        for port, v in ports.items():
            if v not in nodes:
                raise ComponentConstructionError(
                    f"edge {u}->{v} leaves the component"
                )
            if u not in adjacency[v].values():
                raise ComponentConstructionError(
                    f"edge {u}->{v} has no reverse direction; packets are "
                    "inconsistent"
                )


def partition_into_components(
    packets: Iterable[InfoPacket],
) -> List[ComponentGraph]:
    """All components ``CG_r = {CG_r^1, ..., CG_r^beta}`` of the round.

    Runs Algorithm 1 from each not-yet-covered representative (smallest
    first), which is exactly how the full component graph decomposes.
    Returned sorted by smallest representative.
    """
    index = _packet_index(packets)
    remaining = set(index)
    components: List[ComponentGraph] = []
    while remaining:
        seed = min(remaining)
        component = build_component(index.values(), seed)
        members = set(component.representatives)
        if not members <= remaining:
            raise ComponentConstructionError(
                "components overlap; packets are inconsistent"
            )
        remaining -= members
        components.append(component)
    components.sort(key=lambda c: c.representatives[0])
    return components
