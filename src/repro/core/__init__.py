"""The paper's contribution: Algorithms 1-4 for DISPERSION on dynamic graphs.

* :mod:`repro.core.components` -- Algorithm 1, ``ConnectedComponent``:
  every robot assembles the connected component of occupied nodes it
  belongs to from the round's information packets.
* :mod:`repro.core.spanning_tree` -- Algorithm 2,
  ``ComponentSpanningTree``: a deterministic DFS spanning tree rooted at
  the smallest-ID multiplicity node.
* :mod:`repro.core.disjoint_paths` -- Algorithm 3, ``DisjointPaths``:
  a greedy maximal set of node/edge-disjoint root-to-leaf paths.
* :mod:`repro.core.sliding` -- the sliding rule: which robot moves where
  along each selected path.
* :mod:`repro.core.dispersion` -- Algorithm 4, ``Dispersion_Dynamic``: the
  O(k)-round, Theta(log k)-bit algorithm (fault-free and crash-tolerant).

All of these are *pure* functions of the packet set, mirroring the paper's
structure: everything is recomputed from scratch each round inside
temporary memory, so the only persistent robot state is its ID.
"""

from repro.core.components import (
    ComponentGraph,
    ComponentNodeInfo,
    build_component,
    partition_into_components,
)
from repro.core.spanning_tree import (
    SpanningTree,
    build_spanning_tree,
    build_spanning_tree_bfs,
)
from repro.core.disjoint_paths import RootPath, compute_disjoint_paths
from repro.core.sliding import compute_sliding_moves
from repro.core.dispersion import DispersionDynamic

__all__ = [
    "ComponentGraph",
    "ComponentNodeInfo",
    "build_component",
    "partition_into_components",
    "SpanningTree",
    "build_spanning_tree",
    "build_spanning_tree_bfs",
    "RootPath",
    "compute_disjoint_paths",
    "compute_sliding_moves",
    "DispersionDynamic",
]
