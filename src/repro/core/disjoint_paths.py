"""Algorithm 3 -- ``DisjointPaths``: greedy disjoint root-path selection.

The *leaf node set* of a spanning tree contains every tree node with at
least one empty neighbor in ``G_r`` (a place a robot could newly settle).
Processing leaf candidates in increasing representative-ID order, a root
path is kept iff it shares no node and no edge with the paths already kept
-- except the root itself, which every root path necessarily contains
(Definition 5 excludes the root from the disjointness requirement).

The root itself belongs to the leaf node set when it has an empty neighbor;
its root path is the trivial single-node path.  This matters: in a rooted
initial configuration the whole component is one multiplicity node, and the
trivial path is what lets a robot step off it.

Lemma 3 guarantees the returned set is non-empty whenever the component has
a multiplicity node and ``k <= n``; Lemma 4 guarantees all robots of the
component compute the same set, which holds here by determinism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from repro.core.components import ComponentGraph
from repro.core.spanning_tree import SpanningTree


@dataclass(frozen=True)
class RootPath:
    """One selected path ``(root, ..., leaf)`` along spanning-tree edges.

    ``nodes`` are representative IDs; ``nodes[0]`` is the tree root and
    ``nodes[-1]`` the leaf (they coincide for the trivial path).
    """

    nodes: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a root path has at least one node")
        if len(set(self.nodes)) != len(self.nodes):
            raise ValueError("a root path cannot repeat nodes")

    @property
    def root(self) -> int:
        """First node: the spanning-tree root (a multiplicity node)."""
        return self.nodes[0]

    @property
    def leaf(self) -> int:
        """Last node: has an empty neighbor in ``G_r``."""
        return self.nodes[-1]

    @property
    def is_trivial(self) -> bool:
        """Whether the path is just the root itself."""
        return len(self.nodes) == 1

    @property
    def interior_and_leaf(self) -> Tuple[int, ...]:
        """All nodes except the root (the part subject to disjointness)."""
        return self.nodes[1:]

    def edges(self) -> List[Tuple[int, int]]:
        """Path edges as unordered sorted pairs."""
        return [
            (min(a, b), max(a, b))
            for a, b in zip(self.nodes, self.nodes[1:])
        ]

    def __len__(self) -> int:
        return len(self.nodes)


def leaf_node_set(
    tree: SpanningTree, component: ComponentGraph
) -> List[int]:
    """``LeafNodeSet(ST_r^phi)``: tree nodes with an empty ``G_r`` neighbor.

    Sorted ascending by representative ID (the paper's processing order).
    Note "leaf" refers to having an empty graph neighbor, not to being a
    leaf of the tree.
    """
    return sorted(
        rep for rep in tree.nodes if component.node(rep).has_empty_neighbor
    )


def compute_disjoint_paths(
    tree: SpanningTree, component: ComponentGraph
) -> List[RootPath]:
    """Algorithm 3: greedily select disjoint root paths.

    Candidates are processed in increasing leaf-ID order; a candidate is
    kept iff its non-root nodes and its edges avoid everything already
    kept.  The result is therefore already ordered by increasing leaf ID,
    which is the order Algorithm 4's truncation step needs.
    """
    used_nodes: Set[int] = set()
    used_edges: Set[Tuple[int, int]] = set()
    selected: List[RootPath] = []

    for leaf in leaf_node_set(tree, component):
        path = RootPath(tuple(tree.root_path(leaf)))
        if any(node in used_nodes for node in path.interior_and_leaf):
            continue
        if any(edge in used_edges for edge in path.edges()):
            continue
        used_nodes.update(path.interior_and_leaf)
        used_edges.update(path.edges())
        selected.append(path)

    return selected


def check_pairwise_disjoint(paths: List[RootPath]) -> bool:
    """Verify Definition 5 on a path set (used by tests and assertions)."""
    seen_nodes: Set[int] = set()
    seen_edges: Set[Tuple[int, int]] = set()
    for path in paths:
        for node in path.interior_and_leaf:
            if node in seen_nodes:
                return False
            seen_nodes.add(node)
        for edge in path.edges():
            if edge in seen_edges:
                return False
            seen_edges.add(edge)
    return True
