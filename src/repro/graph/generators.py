"""Generators for the graph families used in tests, examples and benchmarks.

Every generator returns a :class:`~repro.graph.snapshot.GraphSnapshot`.
Pass ``rng`` to randomize the port labelling (the anonymous-graph model puts
no constraint on how a node numbers its ports); omit it for a deterministic
canonical labelling.

The random families (``random_tree``, ``random_connected_graph``) are the
stock workloads of the benchmark harness; the structured families (paths,
stars, grids, cliques...) appear in the paper's constructions: Figure 1 uses
a path glued to an arbitrary connected subgraph, Figure 2 uses two stars
joined at their centers, and Theorem 2 uses a clique of occupied nodes glued
to a connected graph of empty nodes.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.graph.snapshot import GraphSnapshot

EdgeList = List[Tuple[int, int]]


def _snapshot(
    n: int, edges: Iterable[Tuple[int, int]], rng: Optional[random.Random]
) -> GraphSnapshot:
    return GraphSnapshot.from_edges(n, edges, rng=rng)


def path_graph(n: int, *, rng: Optional[random.Random] = None) -> GraphSnapshot:
    """A path on ``n`` nodes: ``0 - 1 - ... - n-1``."""
    if n < 1:
        raise ValueError("path needs n >= 1")
    return _snapshot(n, [(i, i + 1) for i in range(n - 1)], rng)


def cycle_graph(n: int, *, rng: Optional[random.Random] = None) -> GraphSnapshot:
    """A cycle (ring) on ``n >= 3`` nodes."""
    if n < 3:
        raise ValueError("cycle needs n >= 3")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return _snapshot(n, edges, rng)


def star_graph(
    n: int, *, center: int = 0, rng: Optional[random.Random] = None
) -> GraphSnapshot:
    """A star on ``n`` nodes with the given center node."""
    if n < 1:
        raise ValueError("star needs n >= 1")
    if not 0 <= center < n:
        raise ValueError(f"center {center} out of range")
    edges = [(center, v) for v in range(n) if v != center]
    return _snapshot(n, edges, rng)


def complete_graph(n: int, *, rng: Optional[random.Random] = None) -> GraphSnapshot:
    """The clique ``K_n``."""
    if n < 1:
        raise ValueError("clique needs n >= 1")
    edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    return _snapshot(n, edges, rng)


def grid_graph(
    rows: int, cols: int, *, rng: Optional[random.Random] = None
) -> GraphSnapshot:
    """A ``rows x cols`` grid; node ``(r, c)`` has index ``r * cols + c``."""
    if rows < 1 or cols < 1:
        raise ValueError("grid needs rows, cols >= 1")
    edges: EdgeList = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return _snapshot(rows * cols, edges, rng)


def torus_graph(
    rows: int, cols: int, *, rng: Optional[random.Random] = None
) -> GraphSnapshot:
    """A ``rows x cols`` torus (grid with wraparound); needs both dims >= 3."""
    if rows < 3 or cols < 3:
        raise ValueError("torus needs rows, cols >= 3")
    edges = set()
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            right = r * cols + (c + 1) % cols
            down = ((r + 1) % rows) * cols + c
            edges.add((min(v, right), max(v, right)))
            edges.add((min(v, down), max(v, down)))
    return _snapshot(rows * cols, sorted(edges), rng)


def hypercube_graph(
    dimension: int, *, rng: Optional[random.Random] = None
) -> GraphSnapshot:
    """The ``dimension``-dimensional hypercube on ``2**dimension`` nodes."""
    if dimension < 1:
        raise ValueError("hypercube needs dimension >= 1")
    n = 1 << dimension
    edges = [
        (v, v ^ (1 << bit)) for v in range(n) for bit in range(dimension)
        if v < v ^ (1 << bit)
    ]
    return _snapshot(n, edges, rng)


def lollipop_graph(
    clique_size: int, path_length: int, *, rng: Optional[random.Random] = None
) -> GraphSnapshot:
    """A clique on ``clique_size`` nodes with a path of ``path_length`` nodes
    attached to clique node 0 (a classic hard case for walk-based methods)."""
    if clique_size < 1 or path_length < 0:
        raise ValueError("lollipop needs clique_size >= 1, path_length >= 0")
    edges = [
        (u, v) for u in range(clique_size) for v in range(u + 1, clique_size)
    ]
    prev = 0
    for i in range(path_length):
        node = clique_size + i
        edges.append((prev, node))
        prev = node
    return _snapshot(clique_size + path_length, edges, rng)


def barbell_graph(
    clique_size: int, bridge_length: int, *, rng: Optional[random.Random] = None
) -> GraphSnapshot:
    """Two cliques of ``clique_size`` nodes joined by a path of
    ``bridge_length`` intermediate nodes."""
    if clique_size < 1 or bridge_length < 0:
        raise ValueError("barbell needs clique_size >= 1, bridge_length >= 0")
    n = 2 * clique_size + bridge_length
    edges = [
        (u, v) for u in range(clique_size) for v in range(u + 1, clique_size)
    ]
    offset = clique_size + bridge_length
    edges += [
        (offset + u, offset + v)
        for u in range(clique_size)
        for v in range(u + 1, clique_size)
    ]
    chain = [0] + [clique_size + i for i in range(bridge_length)] + [offset]
    edges += [(chain[i], chain[i + 1]) for i in range(len(chain) - 1)]
    return _snapshot(n, edges, rng)


def random_tree(n: int, rng: random.Random) -> GraphSnapshot:
    """A uniformly random labelled tree (random Prüfer-like attachment)."""
    if n < 1:
        raise ValueError("tree needs n >= 1")
    edges: EdgeList = []
    for v in range(1, n):
        edges.append((rng.randrange(v), v))
    return _snapshot(n, edges, rng)


def random_connected_graph(
    n: int, extra_edges: int, rng: random.Random
) -> GraphSnapshot:
    """A random connected graph: random spanning tree plus ``extra_edges``
    distinct random non-tree edges (fewer if the graph saturates)."""
    if n < 1:
        raise ValueError("graph needs n >= 1")
    edge_set = set()
    order = list(range(n))
    rng.shuffle(order)
    for i in range(1, n):
        u = order[rng.randrange(i)]
        v = order[i]
        edge_set.add((min(u, v), max(u, v)))
    max_edges = n * (n - 1) // 2
    budget = min(extra_edges, max_edges - len(edge_set))
    attempts = 0
    while budget > 0 and attempts < 50 * (budget + 1):
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in edge_set:
            continue
        edge_set.add(key)
        budget -= 1
    return _snapshot(n, sorted(edge_set), rng)


def random_regularish_graph(
    n: int, target_degree: int, rng: random.Random
) -> GraphSnapshot:
    """A connected graph where nodes aim for ``target_degree`` neighbors.

    Built as a spanning cycle plus random chords; degrees concentrate near
    the target without the cost of exact regular-graph sampling.
    """
    if n < 3:
        raise ValueError("needs n >= 3")
    if target_degree < 2:
        raise ValueError("target_degree must be >= 2")
    edge_set = {(i, (i + 1) % n) for i in range(n)}
    edge_set = {(min(u, v), max(u, v)) for u, v in edge_set}
    degree = [2] * n
    wanted = max(0, (target_degree - 2) * n // 2)
    attempts = 0
    while wanted > 0 and attempts < 100 * n:
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v or degree[u] >= target_degree or degree[v] >= target_degree:
            continue
        key = (min(u, v), max(u, v))
        if key in edge_set:
            continue
        edge_set.add(key)
        degree[u] += 1
        degree[v] += 1
        wanted -= 1
    return _snapshot(n, sorted(edge_set), rng)


def two_stars_graph(
    center_a: int,
    leaves_a: Sequence[int],
    center_b: int,
    leaves_b: Sequence[int],
    n: int,
    *,
    rng: Optional[random.Random] = None,
) -> GraphSnapshot:
    """Two stars joined by the edge between their centers (Figure 2).

    This is the single-round topology of the Theorem 3 lower-bound
    adversary: star ``T_A`` over the occupied nodes and star ``T_B`` over
    the empty nodes, connected center-to-center; diameter 3.
    """
    nodes = {center_a, center_b, *leaves_a, *leaves_b}
    if len(nodes) != n or nodes != set(range(n)):
        raise ValueError("stars must partition exactly the nodes 0..n-1")
    edges = [(center_a, leaf) for leaf in leaves_a]
    edges += [(center_b, leaf) for leaf in leaves_b]
    edges.append((center_a, center_b))
    return _snapshot(n, edges, rng)


FAMILY_BUILDERS = {
    "path": lambda n, rng: path_graph(n, rng=rng),
    "cycle": lambda n, rng: cycle_graph(max(n, 3), rng=rng),
    "star": lambda n, rng: star_graph(n, rng=rng),
    "complete": lambda n, rng: complete_graph(n, rng=rng),
    "random_tree": random_tree,
    "random_sparse": lambda n, rng: random_connected_graph(n, n // 2, rng),
    "random_dense": lambda n, rng: random_connected_graph(n, 2 * n, rng),
}
"""Name -> builder map used by sweeps and the CLI; each takes ``(n, rng)``."""


def build_family(name: str, n: int, rng: random.Random) -> GraphSnapshot:
    """Build a named graph family instance (see :data:`FAMILY_BUILDERS`)."""
    try:
        builder = FAMILY_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown family {name!r}; known: {sorted(FAMILY_BUILDERS)}"
        ) from None
    return builder(n, rng)


def wheel_graph(n: int, *, rng: Optional[random.Random] = None) -> GraphSnapshot:
    """A wheel: node 0 is the hub of a cycle over nodes ``1..n-1``
    (needs ``n >= 4``)."""
    if n < 4:
        raise ValueError("wheel needs n >= 4")
    rim = list(range(1, n))
    edges = [(0, v) for v in rim]
    edges += [(rim[i], rim[(i + 1) % len(rim)]) for i in range(len(rim))]
    return _snapshot(n, sorted({(min(u, v), max(u, v)) for u, v in edges}), rng)


def complete_bipartite_graph(
    a: int, b: int, *, rng: Optional[random.Random] = None
) -> GraphSnapshot:
    """``K_{a,b}``: nodes ``0..a-1`` on one side, ``a..a+b-1`` on the other."""
    if a < 1 or b < 1:
        raise ValueError("both sides need at least one node")
    edges = [(u, a + v) for u in range(a) for v in range(b)]
    return _snapshot(a + b, edges, rng)


def binary_tree_graph(
    n: int, *, rng: Optional[random.Random] = None
) -> GraphSnapshot:
    """A complete-ish binary tree on ``n`` nodes (heap-index layout)."""
    if n < 1:
        raise ValueError("tree needs n >= 1")
    edges = [((v - 1) // 2, v) for v in range(1, n)]
    return _snapshot(n, edges, rng)


def caterpillar_graph(
    spine: int, legs_per_node: int, *, rng: Optional[random.Random] = None
) -> GraphSnapshot:
    """A caterpillar: a spine path with ``legs_per_node`` pendant leaves
    hanging from every spine node."""
    if spine < 1 or legs_per_node < 0:
        raise ValueError("caterpillar needs spine >= 1, legs >= 0")
    edges = [(i, i + 1) for i in range(spine - 1)]
    next_node = spine
    for spine_node in range(spine):
        for _ in range(legs_per_node):
            edges.append((spine_node, next_node))
            next_node += 1
    return _snapshot(next_node, edges, rng)


def broom_graph(
    handle: int, bristles: int, *, rng: Optional[random.Random] = None
) -> GraphSnapshot:
    """A broom: a path of ``handle`` nodes with ``bristles`` leaves
    attached to its last node -- long narrow access to a wide frontier."""
    if handle < 1 or bristles < 0:
        raise ValueError("broom needs handle >= 1, bristles >= 0")
    edges = [(i, i + 1) for i in range(handle - 1)]
    edges += [(handle - 1, handle + i) for i in range(bristles)]
    return _snapshot(handle + bristles, edges, rng)
