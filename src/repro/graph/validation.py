"""Structural validation of graph snapshots and dynamic processes.

The simulator enforces the 1-interval connected model of the paper: every
snapshot an adversary emits must be connected, simple, and properly
port-labelled.  :func:`validate_snapshot` raises
:class:`GraphValidationError` with a precise message on any violation so a
buggy adversary fails loudly instead of silently producing unsound runs.
"""

from __future__ import annotations

from typing import Optional

from repro.graph.snapshot import GraphSnapshot


class GraphValidationError(ValueError):
    """A snapshot violates the dynamic-graph model's constraints."""


def is_connected(snapshot: GraphSnapshot) -> bool:
    """Whether ``snapshot`` is connected; thin alias used across the package."""
    return snapshot.is_connected()


def validate_snapshot(
    snapshot: GraphSnapshot,
    *,
    expected_n: Optional[int] = None,
    require_connected: bool = True,
    round_index: Optional[int] = None,
) -> None:
    """Validate one round's snapshot against the model constraints.

    Checks performed:

    * the vertex set has the expected (fixed) size -- the 1-interval model
      allows edge churn only, never node churn;
    * the graph is connected (unless ``require_connected`` is False);
    * port labels are structurally sound (this is established at snapshot
      construction; re-checked cheaply here via degree bounds).

    Raises :class:`GraphValidationError` with the offending round index in
    the message when a check fails.
    """
    where = "" if round_index is None else f" at round {round_index}"
    if expected_n is not None and snapshot.n != expected_n:
        raise GraphValidationError(
            f"node set changed{where}: expected n={expected_n}, "
            f"got n={snapshot.n}; the 1-interval model fixes the vertex set"
        )
    if require_connected and not snapshot.is_connected():
        raise GraphValidationError(
            f"snapshot{where} is disconnected; the 1-interval connected "
            "model requires every G_r to be connected"
        )
    for v in snapshot.nodes():
        degree = snapshot.degree(v)
        if degree > snapshot.n - 1:
            raise GraphValidationError(
                f"node {v}{where} has degree {degree} > n-1; "
                "parallel edges or self-loops present"
            )


def validate_prefix(dynamic_graph, rounds: int, *, expected_n: int) -> None:
    """Validate the first ``rounds`` snapshots of a dynamic graph process.

    Useful in tests for scripted or generated dynamics.  The process is
    queried with an empty occupancy history (non-adaptive view).
    """
    for r in range(rounds):
        snapshot = dynamic_graph.snapshot(r)
        validate_snapshot(snapshot, expected_n=expected_n, round_index=r)
