"""Graph substrate: port-labelled anonymous snapshots and dynamic processes.

The paper's setting is an ``n``-node anonymous dynamic graph: nodes carry no
identifiers, but each node ``v`` labels its incident edges with distinct
*ports* ``1..degree(v)``.  The dynamic graph is a sequence of such snapshots
``G_0, G_1, ...`` produced by an adversary that may rewire edges every round
as long as each snapshot stays connected (the 1-interval connected model of
Kuhn, Lynch and Oshman).

This subpackage provides:

* :class:`~repro.graph.snapshot.GraphSnapshot` -- an immutable port-labelled
  snapshot (the graph of one round),
* :mod:`~repro.graph.generators` -- families of graphs used by the tests,
  examples, and benchmarks,
* :mod:`~repro.graph.dynamic` -- dynamic-graph processes (static, scripted,
  random churn, T-interval connected churn),
* :mod:`~repro.graph.validation` -- structural validation helpers.
"""

from repro.graph.snapshot import GraphSnapshot, PortLabeledEdge
from repro.graph.dynamic import (
    DynamicGraph,
    StaticDynamicGraph,
    SequenceDynamicGraph,
    RandomChurnDynamicGraph,
    RecordingDynamicGraph,
    TIntervalChurnDynamicGraph,
    FunctionalDynamicGraph,
)
from repro.graph.rings import RingDynamicGraph, ring_edges
from repro.graph.validation import (
    GraphValidationError,
    validate_snapshot,
    is_connected,
)

__all__ = [
    "GraphSnapshot",
    "PortLabeledEdge",
    "DynamicGraph",
    "StaticDynamicGraph",
    "SequenceDynamicGraph",
    "RandomChurnDynamicGraph",
    "RecordingDynamicGraph",
    "TIntervalChurnDynamicGraph",
    "FunctionalDynamicGraph",
    "RingDynamicGraph",
    "ring_edges",
    "GraphValidationError",
    "validate_snapshot",
    "is_connected",
]
