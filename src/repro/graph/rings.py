"""Dynamic rings: the related-work setting of Agarwalla et al. (ICDCN'18).

The only prior work on DISPERSION in dynamic graphs studied *dynamic
rings*: the footprint is a fixed cycle ``C_n``, and each round's graph is
the cycle with **at most one edge missing** (removing more would
disconnect it, violating 1-interval connectivity).  This module provides
that process in three flavors:

* ``mode="static"`` -- the full ring every round (sanity control);
* ``mode="random"`` -- with probability ``removal_probability`` a
  uniformly random ring edge is absent this round;
* ``mode="blocking"`` -- an *adaptive* adversary that removes the ring
  edge a probed algorithm is about to cross, if it can find one used by
  exactly the robots it wants to block (the standard adversary for
  dynamic-ring lower bounds, cf. [27] in the paper).  The probe works like
  the other adversaries in :mod:`repro.adversary`: the candidate algorithm
  is deep-copied and simulated on the full-ring graph, then an edge that
  some unsettled robot would cross is removed.  Because only one edge can
  be missing per round, the adversary targets the *smallest-ID moving
  robot* -- enough to demonstrate how dynamism frustrates walk-style ring
  strategies while the paper's global-model algorithm is unaffected.

Unlike the arbitrary dynamic graphs elsewhere in this library, the ring's
port labels are **stable across rounds**: each node keeps a fixed (seeded,
per-node, possibly flipped) orientation -- port 1 one way around the ring,
port 2 the other -- except at a missing edge's endpoints, whose degree
drops to 1 and whose single remaining edge becomes port 1 for that round.
This matches the standard dynamic-ring literature (the *footprint* is
fixed; only edge presence changes) and is exactly what makes
direction-persistent walking meaningful; with fully re-randomized labels a
ring walker could not even hold a direction, collapsing into the general
Theorem 1 impossibility.
"""

from __future__ import annotations

import copy
import random
from typing import Dict, List, Optional, Tuple

from repro.graph.dynamic import DynamicGraph, RoundContext
from repro.graph.snapshot import GraphSnapshot


def ring_edges(n: int) -> List[Tuple[int, int]]:
    """The edge list of the cycle ``C_n`` (n >= 3)."""
    if n < 3:
        raise ValueError("a ring needs n >= 3")
    return [(i, (i + 1) % n) for i in range(n)]


class RingDynamicGraph(DynamicGraph):
    """A 1-interval connected dynamic ring (cycle minus at most one edge)."""

    def __init__(
        self,
        n: int,
        *,
        mode: str = "random",
        removal_probability: float = 0.8,
        seed: int = 0,
        algorithm=None,
        communication=None,
        neighborhood_knowledge: bool = True,
    ) -> None:
        super().__init__(n)
        if n < 3:
            raise ValueError("a ring needs n >= 3")
        if mode not in ("static", "random", "blocking"):
            raise ValueError(f"unknown ring mode {mode!r}")
        if not 0.0 <= removal_probability <= 1.0:
            raise ValueError("removal_probability must be in [0, 1]")
        if mode == "blocking" and algorithm is None:
            raise ValueError("blocking mode needs the algorithm to probe")
        self._mode = mode
        self._removal_probability = removal_probability
        self._seed = seed
        self._algorithm = algorithm
        self._communication = communication
        self._neighborhood_knowledge = neighborhood_knowledge
        self._cache: Dict[int, GraphSnapshot] = {}
        # Fixed per-node orientation (stable across rounds): flipped[v]
        # swaps which way around the ring node v's port 1 points.
        orientation_rng = random.Random(f"{seed}:orientation")
        self._flipped: List[bool] = [
            orientation_rng.random() < 0.5 for _ in range(n)
        ]
        self.removed_edges: List[Optional[Tuple[int, int]]] = []
        """Per-round log of the removed edge (None = full ring)."""

    @property
    def is_adaptive(self) -> bool:
        return self._mode == "blocking"

    @property
    def mode(self) -> str:
        """The configured dynamism mode."""
        return self._mode

    # ------------------------------------------------------------------

    def _build(
        self, removed: Optional[Tuple[int, int]]
    ) -> GraphSnapshot:
        removed_set = (
            {removed[0], removed[1]} if removed is not None else set()
        )
        port_maps: List[Dict[int, int]] = []
        for v in range(self._n):
            clockwise = (v + 1) % self._n
            counter = (v - 1) % self._n
            neighbors = [clockwise, counter]
            if self._flipped[v]:
                neighbors.reverse()
            present = [
                nbr
                for nbr in neighbors
                if not ({v, nbr} == removed_set)
            ]
            port_maps.append(
                {port: nbr for port, nbr in enumerate(present, 1)}
            )
        return GraphSnapshot.from_port_maps(self._n, port_maps)

    def _pick_random_removal(
        self, rng: random.Random
    ) -> Optional[Tuple[int, int]]:
        if rng.random() >= self._removal_probability:
            return None
        return ring_edges(self._n)[rng.randrange(self._n)]

    def _pick_blocking_removal(
        self,
        round_index: int,
        context: RoundContext,
        rng: random.Random,
    ) -> Optional[Tuple[int, int]]:
        """Simulate the probed algorithm on the full ring; remove the edge
        the smallest moving robot would cross."""
        from repro.sim.algorithm import MoveDecision
        from repro.sim.observation import (
            CommunicationModel,
            build_observations,
        )

        full_ring = self._build(None)
        probe = copy.deepcopy(self._algorithm)
        communication = self._communication or CommunicationModel.LOCAL
        observations = build_observations(
            full_ring,
            context.positions,
            round_index,
            communication=communication,
            neighborhood_knowledge=self._neighborhood_knowledge,
        )
        probe.on_round_start(round_index)
        for robot_id in sorted(context.positions):
            decision = probe.decide(observations[robot_id])
            if isinstance(decision, MoveDecision):
                node = context.positions[robot_id]
                if decision.port <= full_ring.degree(node):
                    neighbor = full_ring.neighbor_via(node, decision.port)
                    return (node, neighbor)
        return self._pick_random_removal(rng)

    def snapshot(
        self, round_index: int, context: Optional[RoundContext] = None
    ) -> GraphSnapshot:
        if round_index in self._cache:
            return self._cache[round_index]
        rng = random.Random(f"{self._seed}:ring:{round_index}")
        if self._mode == "static":
            removed = None
        elif self._mode == "random" or context is None:
            removed = self._pick_random_removal(rng)
        else:
            removed = self._pick_blocking_removal(round_index, context, rng)
        snapshot = self._build(removed)
        self._cache[round_index] = snapshot
        while len(self.removed_edges) <= round_index:
            self.removed_edges.append(None)
        self.removed_edges[round_index] = removed
        return snapshot
