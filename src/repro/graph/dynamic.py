"""Dynamic-graph processes: the sequence ``G_0, G_1, ...`` of one run.

The paper models the environment as a worst-case adaptive adversary that,
knowing the algorithm and the full state through round ``r - 1``, picks the
edge set of round ``r`` subject only to connectivity (1-interval connected
model).  We capture this as the :class:`DynamicGraph` interface: the engine
asks the process for the snapshot of each round and hands it a
:class:`RoundContext` carrying exactly the information the paper's adversary
is entitled to (ground-truth robot positions and history).  Oblivious
processes (static graphs, scripted sequences, random churn) ignore the
context; the worst-case adversaries in :mod:`repro.adversary` use it.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.graph.snapshot import GraphSnapshot
from repro.graph.generators import random_tree


@dataclass
class RoundContext:
    """Ground-truth state the adversary may inspect before choosing ``G_r``.

    Matches the paper's adversary model: it knows the (deterministic)
    algorithm and all states until round ``r - 1``, i.e. the configuration
    at the *start* of round ``r``.
    """

    round_index: int
    positions: Dict[int, int] = field(default_factory=dict)
    """Alive robot id -> ground-truth node index."""

    ever_occupied: FrozenSet[int] = frozenset()
    """Nodes that have held a robot at any point so far."""

    @property
    def occupied_counts(self) -> Dict[int, int]:
        """Node -> number of alive robots currently on it."""
        counts: Dict[int, int] = {}
        for node in self.positions.values():
            counts[node] = counts.get(node, 0) + 1
        return counts

    @property
    def occupied_nodes(self) -> Set[int]:
        """Nodes currently holding at least one alive robot."""
        return set(self.positions.values())


class DynamicGraph(ABC):
    """A (possibly adaptive) source of per-round graph snapshots."""

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"dynamic graph needs n >= 1, got {n}")
        self._n = n

    @property
    def n(self) -> int:
        """The fixed number of nodes of every snapshot."""
        return self._n

    @abstractmethod
    def snapshot(
        self, round_index: int, context: Optional[RoundContext] = None
    ) -> GraphSnapshot:
        """Return ``G_{round_index}``.

        Implementations must be *stable*: calling twice with the same round
        index (and context for the same run) returns an equal snapshot, so
        the engine and analysis code can re-query freely.
        """

    @property
    def is_adaptive(self) -> bool:
        """Whether this process inspects the :class:`RoundContext`."""
        return False


class StaticDynamicGraph(DynamicGraph):
    """The degenerate dynamic graph that never changes.

    Dispersion on a static graph is the classical setting of the prior work
    ([2, 22-25] in the paper); the algorithm must of course also work here.
    """

    def __init__(self, snapshot: GraphSnapshot) -> None:
        super().__init__(snapshot.n)
        self._snapshot = snapshot

    def snapshot(
        self, round_index: int, context: Optional[RoundContext] = None
    ) -> GraphSnapshot:
        return self._snapshot


class SequenceDynamicGraph(DynamicGraph):
    """A scripted sequence of snapshots; used heavily by tests.

    After the script is exhausted the behavior is controlled by ``tail``:
    ``"hold"`` repeats the final snapshot, ``"cycle"`` restarts the script.
    """

    def __init__(
        self, snapshots: Sequence[GraphSnapshot], *, tail: str = "hold"
    ) -> None:
        if not snapshots:
            raise ValueError("sequence needs at least one snapshot")
        n = snapshots[0].n
        for i, snap in enumerate(snapshots):
            if snap.n != n:
                raise ValueError(
                    f"snapshot {i} has n={snap.n}, expected {n}: the model "
                    "fixes the vertex set"
                )
        if tail not in ("hold", "cycle"):
            raise ValueError(f"tail must be 'hold' or 'cycle', got {tail!r}")
        super().__init__(n)
        self._snapshots = tuple(snapshots)
        self._tail = tail

    def snapshot(
        self, round_index: int, context: Optional[RoundContext] = None
    ) -> GraphSnapshot:
        if round_index < 0:
            raise ValueError("round_index must be >= 0")
        if round_index < len(self._snapshots):
            return self._snapshots[round_index]
        if self._tail == "hold":
            return self._snapshots[-1]
        return self._snapshots[round_index % len(self._snapshots)]


class RandomChurnDynamicGraph(DynamicGraph):
    """Oblivious random churn: a fresh random connected graph every round.

    Each round's graph is a random spanning tree plus ``extra_edges`` random
    chords, with optional edge persistence: every non-tree edge of the
    previous round survives independently with probability
    ``persistence``.  Port labels are re-randomized every round (the model
    gives them no cross-round meaning).  Snapshots are cached so repeated
    queries for a round agree.
    """

    def __init__(
        self,
        n: int,
        *,
        extra_edges: int = 0,
        persistence: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__(n)
        if extra_edges < 0:
            raise ValueError("extra_edges must be >= 0")
        if not 0.0 <= persistence <= 1.0:
            raise ValueError("persistence must be in [0, 1]")
        self._extra_edges = extra_edges
        self._persistence = persistence
        self._seed = seed
        self._cache: List[GraphSnapshot] = []

    def _generate_next(self, rng: random.Random) -> GraphSnapshot:
        n = self._n
        edge_set: Set[Tuple[int, int]] = set()
        order = list(range(n))
        rng.shuffle(order)
        for i in range(1, n):
            u, v = order[rng.randrange(i)], order[i]
            edge_set.add((min(u, v), max(u, v)))
        if self._persistence > 0.0 and self._cache:
            for edge in self._cache[-1].edges():
                key = (edge.u, edge.v)
                if key not in edge_set and rng.random() < self._persistence:
                    edge_set.add(key)
        max_edges = n * (n - 1) // 2
        budget = min(self._extra_edges, max_edges - len(edge_set))
        attempts = 0
        while budget > 0 and attempts < 50 * (budget + 1):
            attempts += 1
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            key = (min(u, v), max(u, v))
            if key in edge_set:
                continue
            edge_set.add(key)
            budget -= 1
        return GraphSnapshot.from_edges(n, sorted(edge_set), rng=rng)

    def snapshot(
        self, round_index: int, context: Optional[RoundContext] = None
    ) -> GraphSnapshot:
        if round_index < 0:
            raise ValueError("round_index must be >= 0")
        while len(self._cache) <= round_index:
            rng = random.Random(f"{self._seed}:churn:{len(self._cache)}")
            self._cache.append(self._generate_next(rng))
        return self._cache[round_index]


class TIntervalChurnDynamicGraph(DynamicGraph):
    """Random churn that is T-interval connected (paper §VIII future work).

    Rounds are grouped into blocks of length ``T``.  The snapshot of round
    ``r`` always contains the random spanning trees of both its own block
    and the next block, plus fresh random chords.  Any window of ``T``
    consecutive rounds spans at most two adjacent blocks ``j, j+1`` and
    every snapshot in the window contains the tree of block ``j+1``, so the
    window's intersection graph is connected: the process is T-interval
    connected by construction.  With ``T = 1`` this degenerates to ordinary
    1-interval churn.
    """

    def __init__(
        self, n: int, *, interval: int, extra_edges: int = 0, seed: int = 0
    ) -> None:
        super().__init__(n)
        if interval < 1:
            raise ValueError("interval T must be >= 1")
        if extra_edges < 0:
            raise ValueError("extra_edges must be >= 0")
        self._interval = interval
        self._extra_edges = extra_edges
        self._seed = seed
        self._cache: Dict[int, GraphSnapshot] = {}
        self._block_trees: Dict[int, FrozenSet[Tuple[int, int]]] = {}

    @property
    def interval(self) -> int:
        """The connectivity interval T."""
        return self._interval

    def _block_tree(self, block: int) -> FrozenSet[Tuple[int, int]]:
        if block not in self._block_trees:
            rng = random.Random(f"{self._seed}:tree:{block}")
            tree = random_tree(self._n, rng)
            self._block_trees[block] = frozenset(
                (e.u, e.v) for e in tree.edges()
            )
        return self._block_trees[block]

    def snapshot(
        self, round_index: int, context: Optional[RoundContext] = None
    ) -> GraphSnapshot:
        if round_index < 0:
            raise ValueError("round_index must be >= 0")
        if round_index not in self._cache:
            block = round_index // self._interval
            edge_set = set(self._block_tree(block))
            edge_set |= self._block_tree(block + 1)
            rng = random.Random(f"{self._seed}:round:{round_index}")
            max_edges = self._n * (self._n - 1) // 2
            budget = min(self._extra_edges, max_edges - len(edge_set))
            attempts = 0
            while budget > 0 and attempts < 50 * (budget + 1):
                attempts += 1
                u, v = rng.randrange(self._n), rng.randrange(self._n)
                if u == v:
                    continue
                key = (min(u, v), max(u, v))
                if key in edge_set:
                    continue
                edge_set.add(key)
                budget -= 1
            self._cache[round_index] = GraphSnapshot.from_edges(
                self._n, sorted(edge_set), rng=rng
            )
        return self._cache[round_index]

    def stable_subgraph_edges(
        self, start_round: int
    ) -> FrozenSet[Tuple[int, int]]:
        """Edges guaranteed present in rounds ``start_round..start_round+T-1``.

        Every round in the window ``[start_round, start_round + T - 1]``
        contains the spanning tree of block ``start_round // T + 1``: rounds
        still in block ``j = start_round // T`` carry the trees of blocks
        ``j`` and ``j + 1``, and rounds that spilled into block ``j + 1``
        carry the trees of blocks ``j + 1`` and ``j + 2``.  Exposed for
        tests of the T-interval property.
        """
        return self._block_tree(start_round // self._interval + 1)


class FunctionalDynamicGraph(DynamicGraph):
    """Adapter turning a callable ``(round, context) -> snapshot`` into a
    dynamic graph; the building block for custom adversaries in tests."""

    def __init__(
        self,
        n: int,
        build: Callable[[int, Optional[RoundContext]], GraphSnapshot],
        *,
        adaptive: bool = True,
    ) -> None:
        super().__init__(n)
        self._build = build
        self._adaptive = adaptive
        self._cache: Dict[int, GraphSnapshot] = {}

    @property
    def is_adaptive(self) -> bool:
        return self._adaptive

    def snapshot(
        self, round_index: int, context: Optional[RoundContext] = None
    ) -> GraphSnapshot:
        if round_index not in self._cache:
            snap = self._build(round_index, context)
            if snap.n != self._n:
                raise ValueError(
                    f"builder returned n={snap.n}, expected {self._n}"
                )
            self._cache[round_index] = snap
        return self._cache[round_index]


class RecordingDynamicGraph(DynamicGraph):
    """Wrap any dynamic process and record every snapshot it emits.

    Adaptive adversaries depend on the run's live configuration, so they
    cannot be frozen into a script *before* a run -- but they can be
    recorded *during* one.  Wrap the adversary, run the engine, then call
    :meth:`to_script` to obtain a plain
    :class:`SequenceDynamicGraph` that replays the exact graphs the
    adversary produced; together with
    :func:`repro.sim.traceio.replay_and_verify` this makes even
    worst-case-adversary runs serializable and independently re-checkable.
    """

    def __init__(self, inner: DynamicGraph) -> None:
        super().__init__(inner.n)
        self._inner = inner
        self._recorded: Dict[int, GraphSnapshot] = {}

    @property
    def is_adaptive(self) -> bool:
        return self._inner.is_adaptive

    def snapshot(
        self, round_index: int, context: Optional[RoundContext] = None
    ) -> GraphSnapshot:
        snapshot = self._inner.snapshot(round_index, context)
        self._recorded[round_index] = snapshot
        return snapshot

    @property
    def recorded_rounds(self) -> int:
        """Number of contiguous rounds recorded from round 0."""
        count = 0
        while count in self._recorded:
            count += 1
        return count

    def to_script(self, *, tail: str = "hold") -> SequenceDynamicGraph:
        """The recorded prefix as a replayable scripted sequence."""
        rounds = self.recorded_rounds
        if rounds == 0:
            raise ValueError("nothing recorded yet; run the engine first")
        return SequenceDynamicGraph(
            [self._recorded[r] for r in range(rounds)], tail=tail
        )
