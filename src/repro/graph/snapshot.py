"""Immutable port-labelled graph snapshots.

A :class:`GraphSnapshot` is the graph ``G_r`` of a single round: an
undirected simple graph on nodes ``0..n-1`` where each node labels its
incident edges with distinct ports ``1..degree(v)``.  Node indices are
*ground truth* used by the simulator and the adversary only; the robots
never observe them (the graph is anonymous).  Ports, in contrast, are
observable: a robot leaving node ``u`` through port ``p`` learns ``p`` and,
on arrival at the other endpoint ``v``, learns the entry port (the port of
``v`` on the same edge).  There is no correlation between the two port
numbers of an edge, and no correlation between the ports of consecutive
rounds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class PortLabeledEdge:
    """An undirected edge together with the port numbers at both endpoints.

    ``u`` reaches ``v`` through port ``port_u`` and vice versa.  The edge is
    stored with ``u < v`` so that it has a canonical form.
    """

    u: int
    port_u: int
    v: int
    port_v: int

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise ValueError(f"self-loop at node {self.u} is not allowed")

    def endpoints(self) -> FrozenSet[int]:
        """Return the unordered endpoint pair."""
        return frozenset((self.u, self.v))

    def other(self, node: int) -> int:
        """Return the endpoint opposite to ``node``."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise ValueError(f"node {node} is not an endpoint of {self}")

    def port_at(self, node: int) -> int:
        """Return the port number of the edge at endpoint ``node``."""
        if node == self.u:
            return self.port_u
        if node == self.v:
            return self.port_v
        raise ValueError(f"node {node} is not an endpoint of {self}")


class GraphSnapshot:
    """An immutable, connected-or-not, port-labelled simple graph.

    Instances are normally built with :meth:`from_edges` (ports assigned
    canonically or randomly) or :meth:`from_port_maps` (explicit ports).
    All query methods are O(1) or O(degree).
    """

    __slots__ = ("_n", "_adj_by_port", "_port_by_neighbor", "_edge_list")

    def __init__(
        self,
        n: int,
        adj_by_port: Sequence[Dict[int, int]],
        *,
        _skip_checks: bool = False,
    ) -> None:
        """Build a snapshot from per-node ``{port: neighbor}`` maps.

        Prefer the class-method constructors; this constructor validates the
        port structure (bijective ports ``1..degree``, symmetric adjacency,
        simple graph) unless ``_skip_checks`` is set by a trusted caller.
        """
        if n <= 0:
            raise ValueError(f"graph must have at least one node, got n={n}")
        if len(adj_by_port) != n:
            raise ValueError(
                f"expected {n} port maps, got {len(adj_by_port)}"
            )
        self._n = n
        self._adj_by_port: Tuple[Dict[int, int], ...] = tuple(
            dict(ports) for ports in adj_by_port
        )
        self._port_by_neighbor: Tuple[Dict[int, int], ...] = tuple(
            {nbr: port for port, nbr in ports.items()}
            for ports in self._adj_by_port
        )
        if not _skip_checks:
            self._check_structure()
        self._edge_list: Tuple[PortLabeledEdge, ...] = self._build_edge_list()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Iterable[Tuple[int, int]],
        *,
        rng: Optional[random.Random] = None,
    ) -> "GraphSnapshot":
        """Build a snapshot from an edge list, assigning port numbers.

        If ``rng`` is given the ports of every node are a random permutation
        of ``1..degree(v)`` (an adversarial/arbitrary labelling); otherwise
        ports are assigned in increasing neighbor-index order, which is
        deterministic and convenient for tests.
        """
        neighbor_lists: List[List[int]] = [[] for _ in range(n)]
        seen = set()
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop at node {u} is not allowed")
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u},{v}) out of range for n={n}")
            key = (min(u, v), max(u, v))
            if key in seen:
                raise ValueError(f"duplicate edge ({u},{v})")
            seen.add(key)
            neighbor_lists[u].append(v)
            neighbor_lists[v].append(u)

        adj_by_port: List[Dict[int, int]] = []
        for v in range(n):
            nbrs = sorted(neighbor_lists[v])
            if rng is not None:
                rng.shuffle(nbrs)
            adj_by_port.append({port: nbr for port, nbr in enumerate(nbrs, 1)})
        return cls(n, adj_by_port, _skip_checks=True)

    @classmethod
    def from_port_maps(
        cls, n: int, adj_by_port: Sequence[Dict[int, int]]
    ) -> "GraphSnapshot":
        """Build a snapshot from explicit ``{port: neighbor}`` maps."""
        return cls(n, adj_by_port)

    # ------------------------------------------------------------------
    # Structure checks
    # ------------------------------------------------------------------

    def _check_structure(self) -> None:
        for v, ports in enumerate(self._adj_by_port):
            degree = len(ports)
            if sorted(ports) != list(range(1, degree + 1)):
                raise ValueError(
                    f"node {v}: ports must be exactly 1..{degree}, "
                    f"got {sorted(ports)}"
                )
            if len(set(ports.values())) != degree:
                raise ValueError(f"node {v}: parallel edges are not allowed")
            for nbr in ports.values():
                if not (0 <= nbr < self._n):
                    raise ValueError(f"node {v}: neighbor {nbr} out of range")
                if nbr == v:
                    raise ValueError(f"self-loop at node {v} is not allowed")
                if v not in self._adj_by_port[nbr].values():
                    raise ValueError(
                        f"asymmetric adjacency: {v}->{nbr} has no reverse"
                    )

    def _build_edge_list(self) -> Tuple[PortLabeledEdge, ...]:
        edges = []
        for u in range(self._n):
            for port_u, v in self._adj_by_port[u].items():
                if u < v:
                    port_v = self._port_by_neighbor[v][u]
                    edges.append(PortLabeledEdge(u, port_u, v, port_v))
        return tuple(edges)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of edges ``m_r``."""
        return len(self._edge_list)

    def nodes(self) -> range:
        """Iterate over node indices."""
        return range(self._n)

    def edges(self) -> Tuple[PortLabeledEdge, ...]:
        """All edges with their port labels, canonical ``u < v`` order."""
        return self._edge_list

    def degree(self, v: int) -> int:
        """Degree of node ``v`` in this snapshot."""
        return len(self._adj_by_port[v])

    def max_degree(self) -> int:
        """Maximum degree of the snapshot (Delta_r in the paper)."""
        return max(len(ports) for ports in self._adj_by_port)

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Neighbors of ``v`` in increasing port order."""
        ports = self._adj_by_port[v]
        return tuple(ports[p] for p in sorted(ports))

    def ports(self, v: int) -> Tuple[int, ...]:
        """The ports of ``v``: always ``(1, ..., degree(v))``."""
        return tuple(range(1, len(self._adj_by_port[v]) + 1))

    def neighbor_via(self, v: int, port: int) -> int:
        """The node reached by leaving ``v`` through ``port``."""
        try:
            return self._adj_by_port[v][port]
        except KeyError:
            raise ValueError(
                f"node {v} has no port {port} (degree {self.degree(v)})"
            ) from None

    def port_of(self, v: int, neighbor: int) -> int:
        """The port of ``v`` on the edge towards ``neighbor``."""
        try:
            return self._port_by_neighbor[v][neighbor]
        except KeyError:
            raise ValueError(f"{neighbor} is not a neighbor of {v}") from None

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge of this snapshot."""
        return v in self._port_by_neighbor[u]

    def port_map(self, v: int) -> Dict[int, int]:
        """A copy of the ``{port: neighbor}`` map of ``v``."""
        return dict(self._adj_by_port[v])

    # ------------------------------------------------------------------
    # Whole-graph analysis (used by the simulator and tests, not robots)
    # ------------------------------------------------------------------

    def is_connected(self) -> bool:
        """Whether the snapshot is connected (the 1-interval condition)."""
        if self._n == 1:
            return True
        seen = [False] * self._n
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            v = stack.pop()
            for nbr in self._adj_by_port[v].values():
                if not seen[nbr]:
                    seen[nbr] = True
                    count += 1
                    stack.append(nbr)
        return count == self._n

    def bfs_distances(self, source: int) -> List[int]:
        """Distances from ``source``; unreachable nodes get ``-1``."""
        dist = [-1] * self._n
        dist[source] = 0
        frontier = [source]
        while frontier:
            nxt = []
            for v in frontier:
                for nbr in self._adj_by_port[v].values():
                    if dist[nbr] < 0:
                        dist[nbr] = dist[v] + 1
                        nxt.append(nbr)
            frontier = nxt
        return dist

    def diameter(self) -> int:
        """Diameter ``D_r``; raises if the snapshot is disconnected."""
        best = 0
        for v in range(self._n):
            dist = self.bfs_distances(v)
            if min(dist) < 0:
                raise ValueError("diameter undefined: graph is disconnected")
            best = max(best, max(dist))
        return best

    def connected_node_components(self) -> List[FrozenSet[int]]:
        """Connected components of the node set (ground-truth analysis)."""
        seen = [False] * self._n
        components = []
        for start in range(self._n):
            if seen[start]:
                continue
            seen[start] = True
            stack = [start]
            members = [start]
            while stack:
                v = stack.pop()
                for nbr in self._adj_by_port[v].values():
                    if not seen[nbr]:
                        seen[nbr] = True
                        members.append(nbr)
                        stack.append(nbr)
            components.append(frozenset(members))
        return components

    def induced_occupied_components(
        self, occupied: Iterable[int]
    ) -> List[FrozenSet[int]]:
        """Ground-truth connected components of the occupied-node subgraph.

        This is the component graph ``CG_r`` of Definition 2, computed from
        the simulator's ground truth; used by tests to validate the robots'
        own component construction (Algorithm 1).
        """
        occupied_set = set(occupied)
        seen = set()
        components = []
        for start in occupied_set:
            if start in seen:
                continue
            seen.add(start)
            stack = [start]
            members = [start]
            while stack:
                v = stack.pop()
                for nbr in self._adj_by_port[v].values():
                    if nbr in occupied_set and nbr not in seen:
                        seen.add(nbr)
                        members.append(nbr)
                        stack.append(nbr)
            components.append(frozenset(members))
        return components

    def to_networkx(self):
        """Export to a :mod:`networkx` graph with port attributes."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self._n))
        for edge in self._edge_list:
            graph.add_edge(
                edge.u, edge.v, ports={edge.u: edge.port_u, edge.v: edge.port_v}
            )
        return graph

    def relabeled_ports(self, rng: random.Random) -> "GraphSnapshot":
        """The same graph with freshly randomized port labels."""
        return GraphSnapshot.from_edges(
            self._n, [(e.u, e.v) for e in self._edge_list], rng=rng
        )

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphSnapshot):
            return NotImplemented
        return self._n == other._n and self._adj_by_port == other._adj_by_port

    def __hash__(self) -> int:
        return hash(
            (self._n, tuple(frozenset(p.items()) for p in self._adj_by_port))
        )

    def __repr__(self) -> str:
        return f"GraphSnapshot(n={self._n}, m={self.num_edges})"

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))
