"""repro -- reproduction of "Efficient Dispersion of Mobile Robots on
Dynamic Graphs" (Kshemkalyani, Molla, Sharma; ICDCS 2020).

The package implements the paper end to end:

* a synchronous round-based simulator of ``k <= n`` mobile robots on
  ``n``-node anonymous, port-labelled, 1-interval connected dynamic graphs
  (:mod:`repro.graph`, :mod:`repro.sim`, :mod:`repro.robots`);
* the paper's O(k)-round, Theta(log k)-bit dispersion algorithm built from
  connected components, component spanning trees, disjoint root paths and
  sliding (:mod:`repro.core`), including the Section VII crash-fault
  extension;
* the worst-case adversaries of the impossibility results (Theorems 1 and
  2) and of the Omega(k) lower bound (Theorem 3)
  (:mod:`repro.adversary`);
* baseline algorithms from the static-graph literature for contrast
  (:mod:`repro.baselines`);
* experiment harnesses regenerating every table and figure of the paper
  (:mod:`repro.analysis`, plus the ``benchmarks/`` tree of the repo).

Quickstart::

    import random
    from repro import (
        DispersionDynamic, RandomChurnDynamicGraph, RobotSet,
        SimulationEngine,
    )

    dyn = RandomChurnDynamicGraph(n=40, extra_edges=20, seed=7)
    robots = RobotSet.arbitrary(k=30, n=40, rng=random.Random(7))
    result = SimulationEngine(dyn, robots, DispersionDynamic()).run()
    assert result.dispersed and result.rounds <= 30
"""

from repro.graph import (
    DynamicGraph,
    FunctionalDynamicGraph,
    GraphSnapshot,
    GraphValidationError,
    PortLabeledEdge,
    RandomChurnDynamicGraph,
    SequenceDynamicGraph,
    StaticDynamicGraph,
    TIntervalChurnDynamicGraph,
    validate_snapshot,
)
from repro.robots import (
    CrashEvent,
    CrashPhase,
    CrashSchedule,
    RobotSet,
)
from repro.sim import (
    ActivationSchedule,
    CommunicationModel,
    FullActivation,
    RandomSubsetActivation,
    RoundRobinActivation,
    InfoPacket,
    MoveDecision,
    NeighborInfo,
    Observation,
    RobotAlgorithm,
    RoundRecord,
    RunResult,
    SimulationEngine,
    SimulationError,
    StayDecision,
    TerminationReason,
    build_info_packets,
    build_observations,
)
from repro.core import (
    ComponentGraph,
    DispersionDynamic,
    RootPath,
    SpanningTree,
    build_component,
    build_spanning_tree,
    compute_disjoint_paths,
    compute_sliding_moves,
    partition_into_components,
)

__version__ = "1.0.0"

__all__ = [
    # graph
    "DynamicGraph",
    "FunctionalDynamicGraph",
    "GraphSnapshot",
    "GraphValidationError",
    "PortLabeledEdge",
    "RandomChurnDynamicGraph",
    "SequenceDynamicGraph",
    "StaticDynamicGraph",
    "TIntervalChurnDynamicGraph",
    "validate_snapshot",
    # robots
    "CrashEvent",
    "CrashPhase",
    "CrashSchedule",
    "RobotSet",
    # sim
    "ActivationSchedule",
    "CommunicationModel",
    "FullActivation",
    "RandomSubsetActivation",
    "RoundRobinActivation",
    "InfoPacket",
    "MoveDecision",
    "NeighborInfo",
    "Observation",
    "RobotAlgorithm",
    "RoundRecord",
    "RunResult",
    "SimulationEngine",
    "SimulationError",
    "StayDecision",
    "TerminationReason",
    "build_info_packets",
    "build_observations",
    # core
    "ComponentGraph",
    "DispersionDynamic",
    "RootPath",
    "SpanningTree",
    "build_component",
    "build_spanning_tree",
    "compute_disjoint_paths",
    "compute_sliding_moves",
    "partition_into_components",
    "__version__",
]
