"""repro -- reproduction of "Efficient Dispersion of Mobile Robots on
Dynamic Graphs" (Kshemkalyani, Molla, Sharma; ICDCS 2020).

The package implements the paper end to end:

* a synchronous round-based simulator of ``k <= n`` mobile robots on
  ``n``-node anonymous, port-labelled, 1-interval connected dynamic graphs
  (:mod:`repro.graph`, :mod:`repro.sim`, :mod:`repro.robots`);
* the paper's O(k)-round, Theta(log k)-bit dispersion algorithm built from
  connected components, component spanning trees, disjoint root paths and
  sliding (:mod:`repro.core`), including the Section VII crash-fault
  extension;
* the worst-case adversaries of the impossibility results (Theorems 1 and
  2) and of the Omega(k) lower bound (Theorem 3)
  (:mod:`repro.adversary`);
* baseline algorithms from the static-graph literature for contrast
  (:mod:`repro.baselines`);
* experiment harnesses regenerating every table and figure of the paper
  (:mod:`repro.analysis`, plus the ``benchmarks/`` tree of the repo).

Quickstart (declarative)::

    import repro

    spec = repro.make_spec(
        "random_churn", {"n": 40, "extra_edges": 20}, k=30, seed=7
    )
    result = repro.run(spec)
    assert result.dispersed and result.rounds <= 30

Quickstart (imperative)::

    import random
    from repro import (
        DispersionDynamic, RandomChurnDynamicGraph, RobotSet,
        SimulationEngine,
    )

    dyn = RandomChurnDynamicGraph(n=40, extra_edges=20, seed=7)
    robots = RobotSet.arbitrary(k=30, n=40, rng=random.Random(7))
    result = SimulationEngine(dyn, robots, DispersionDynamic()).run()
    assert result.dispersed and result.rounds <= 30

The stable top-level surface for notebooks and downstream code is
:func:`repro.run` / :func:`repro.sweep` over :class:`repro.RunSpec`
(built directly or with :func:`repro.make_spec`), with
:class:`repro.RunStore` for persistent, content-addressed result
caching; deep module paths remain available but are not needed for the
common workflows.
"""

from repro.graph import (
    DynamicGraph,
    FunctionalDynamicGraph,
    GraphSnapshot,
    GraphValidationError,
    PortLabeledEdge,
    RandomChurnDynamicGraph,
    SequenceDynamicGraph,
    StaticDynamicGraph,
    TIntervalChurnDynamicGraph,
    validate_snapshot,
)
from repro.robots import (
    CrashEvent,
    CrashPhase,
    CrashSchedule,
    RobotSet,
)
from repro.sim import (
    ActivationSchedule,
    CommunicationModel,
    FullActivation,
    RandomSubsetActivation,
    RoundRobinActivation,
    InfoPacket,
    MoveDecision,
    NeighborInfo,
    Observation,
    RobotAlgorithm,
    RoundRecord,
    RunResult,
    SimulationEngine,
    SimulationError,
    StayDecision,
    TerminationReason,
    build_info_packets,
    build_observations,
)
from repro.core import (
    ComponentGraph,
    DispersionDynamic,
    RootPath,
    SpanningTree,
    build_component,
    build_spanning_tree,
    compute_disjoint_paths,
    compute_sliding_moves,
    partition_into_components,
)
from repro.sim import (
    CachingRunner,
    ComponentSpec,
    CrashSpec,
    EngineBackend,
    PlacementSpec,
    ProcessPoolRunner,
    Runner,
    RunnerError,
    RunSpec,
    RunStore,
    SerialRunner,
    SpecError,
    execute,
    make_spec,
    register_backend,
    runner_from_jobs,
)

__version__ = "1.2.0"


def _with_backend(spec: RunSpec, backend: "str | ComponentSpec | None") -> RunSpec:
    """Pin an engine backend on ``spec`` (no-op when ``backend`` is None)."""
    if backend is None:
        return spec
    if isinstance(backend, str):
        backend = ComponentSpec(backend)
    return spec.with_(backend=backend)


def run(
    spec: RunSpec,
    *,
    store: "RunStore | None" = None,
    backend: "str | ComponentSpec | None" = None,
) -> RunResult:
    """Execute one :class:`RunSpec` deterministically.

    With ``store`` (a :class:`RunStore`), the run is served from the
    content-addressed cache when stored and written through otherwise --
    the result is identical either way.

    ``backend`` selects the engine backend (``"reference"`` or
    ``"vectorized"``) without editing the spec by hand; it is applied to
    the spec *before* the cache lookup, so each backend caches under its
    own digest.
    """
    spec = _with_backend(spec, backend)
    if store is not None:
        cached = store.get(spec)
        if cached is not None:
            return cached
    result = execute(spec)
    if store is not None:
        store.put(spec, result)
    return result


def sweep(
    specs,
    *,
    jobs: "int | None" = None,
    store: "RunStore | None" = None,
    timeout: "float | None" = None,
    retries: int = 0,
    backend: "str | ComponentSpec | None" = None,
) -> "list[RunResult]":
    """Execute a grid of :class:`RunSpec` s, in spec order.

    ``jobs`` picks the execution runner exactly like the CLI's ``--jobs``
    (``<= 1``: in-process serial; ``N``: a fault-tolerant ``N``-worker
    process pool; ``-1``: all cores).  ``timeout`` / ``retries`` bound
    each unit's wall clock and retry budget on the pool.  ``store``
    serves hits from and writes misses through a :class:`RunStore`,
    making interrupted sweeps resumable.  ``backend`` pins an engine
    backend (``"reference"`` or ``"vectorized"``) on every spec before
    dispatch, exactly like :func:`run`.
    """
    with runner_from_jobs(
        jobs, timeout=timeout, retries=retries, store=store
    ) as runner:
        return runner.run([_with_backend(s, backend) for s in specs])

__all__ = [
    # graph
    "DynamicGraph",
    "FunctionalDynamicGraph",
    "GraphSnapshot",
    "GraphValidationError",
    "PortLabeledEdge",
    "RandomChurnDynamicGraph",
    "SequenceDynamicGraph",
    "StaticDynamicGraph",
    "TIntervalChurnDynamicGraph",
    "validate_snapshot",
    # robots
    "CrashEvent",
    "CrashPhase",
    "CrashSchedule",
    "RobotSet",
    # sim
    "ActivationSchedule",
    "CommunicationModel",
    "FullActivation",
    "RandomSubsetActivation",
    "RoundRobinActivation",
    "InfoPacket",
    "MoveDecision",
    "NeighborInfo",
    "Observation",
    "RobotAlgorithm",
    "RoundRecord",
    "RunResult",
    "SimulationEngine",
    "SimulationError",
    "StayDecision",
    "TerminationReason",
    "build_info_packets",
    "build_observations",
    # core
    "ComponentGraph",
    "DispersionDynamic",
    "RootPath",
    "SpanningTree",
    "build_component",
    "build_spanning_tree",
    "compute_disjoint_paths",
    "compute_sliding_moves",
    "partition_into_components",
    # stable top-level workflow surface
    "run",
    "sweep",
    "execute",
    "make_spec",
    "EngineBackend",
    "register_backend",
    "RunSpec",
    "ComponentSpec",
    "PlacementSpec",
    "CrashSpec",
    "SpecError",
    "RunStore",
    "CachingRunner",
    "Runner",
    "RunnerError",
    "SerialRunner",
    "ProcessPoolRunner",
    "runner_from_jobs",
    "__version__",
]
