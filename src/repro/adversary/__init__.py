"""Worst-case adversaries from the paper's proofs.

The paper's dynamic graph is chosen by an adaptive adversary that knows the
algorithm and all state so far.  This package implements the three explicit
adversarial constructions:

* :mod:`repro.adversary.star_lower_bound` -- the Theorem 3 / Figure 2
  dynamic tree (two stars joined at their centers) under which at most one
  new node can be occupied per round, forcing Omega(k) rounds at dynamic
  diameter 3;
* :mod:`repro.adversary.local_impossibility` -- the Theorem 1 / Figure 1
  path construction showing DISPERSION unsolvable in the *local*
  communication model even with 1-neighborhood knowledge;
* :mod:`repro.adversary.global_impossibility` -- the Theorem 2
  clique-rewiring construction showing DISPERSION unsolvable in the
  *global* communication model without 1-neighborhood knowledge.

Impossibility theorems quantify over all algorithms and cannot be "run"
universally; what these modules provide is (a) the exact constructions of
the proofs as executable adversaries, (b) mechanical checks of the symmetry
arguments, and (c) stall demonstrations against concrete candidate
algorithms (see :mod:`repro.baselines.local_candidates` and
:mod:`repro.baselines.global_candidates`).
"""

from repro.adversary.star_lower_bound import StarStarAdversary
from repro.adversary.local_impossibility import (
    Fig1Instance,
    LocalStallAdversary,
    build_fig1_instance,
    id_oblivious_view,
    interior_views_are_symmetric,
)
from repro.adversary.global_impossibility import (
    CliqueRewiringAdversary,
    unused_clique_edge_exists,
)

__all__ = [
    "StarStarAdversary",
    "Fig1Instance",
    "LocalStallAdversary",
    "build_fig1_instance",
    "id_oblivious_view",
    "interior_views_are_symmetric",
    "CliqueRewiringAdversary",
    "unused_clique_edge_exists",
]
