"""The Theorem 3 lower-bound adversary: the star-star dynamic tree (Fig. 2).

Every round the adversary partitions the fixed vertex set into the
currently occupied nodes ``A_r`` and the empty nodes ``B_r``, arranges each
side into a star (``T_{A_r}``, ``T_{B_r}``), and joins the two star centers
by a single edge.  The resulting tree is connected with diameter at most 3,
yet the only empty node adjacent to any occupied node is the center of
``T_{B_r}`` -- so no algorithm can newly occupy more than one node per
round, and dispersion from a rooted configuration of ``k`` robots takes at
least ``k - 1`` rounds.  Against the paper's algorithm the bound is met
exactly (one new node per round), which is how the benchmarks demonstrate
the tightness of Theta(k).

Port labels are freshly randomized every round from the adversary's seed
(an adversary is free to pick any labelling; randomizing also prevents
algorithms from extracting accidental cross-round information).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.graph.dynamic import DynamicGraph, RoundContext
from repro.graph.snapshot import GraphSnapshot


class StarStarAdversary(DynamicGraph):
    """Adaptive adversary realizing the Omega(k) lower bound of Theorem 3.

    ``initial_occupied`` seeds round 0 (the engine provides the live
    configuration from round 0 onward, but analysis code sometimes queries
    snapshots without a context).  ``center_policy`` picks the occupied
    star's center: ``"min"``/``"max"`` by node index, or ``"multiplicity"``
    to center ``T_A`` on a currently-multiplicity node, which is the
    least favorable choice for sliding-style algorithms.
    """

    def __init__(
        self,
        n: int,
        initial_occupied: List[int],
        *,
        seed: int = 0,
        center_policy: str = "min",
    ) -> None:
        super().__init__(n)
        if not initial_occupied:
            raise ValueError("need at least one initially occupied node")
        if center_policy not in ("min", "max", "multiplicity"):
            raise ValueError(f"unknown center_policy {center_policy!r}")
        self._initial_occupied = sorted(set(initial_occupied))
        self._seed = seed
        self._center_policy = center_policy
        self._last_round: Optional[int] = None
        self._last_snapshot: Optional[GraphSnapshot] = None

    @property
    def is_adaptive(self) -> bool:
        return True

    def _pick_center_a(
        self, occupied: List[int], context: Optional[RoundContext]
    ) -> int:
        if self._center_policy == "max":
            return occupied[-1]
        if self._center_policy == "multiplicity" and context is not None:
            counts = context.occupied_counts
            multiplicity = [v for v in occupied if counts.get(v, 0) >= 2]
            if multiplicity:
                return multiplicity[0]
        return occupied[0]

    def snapshot(
        self, round_index: int, context: Optional[RoundContext] = None
    ) -> GraphSnapshot:
        if round_index == self._last_round and self._last_snapshot is not None:
            return self._last_snapshot

        if context is not None:
            occupied = sorted(context.occupied_nodes)
        else:
            occupied = list(self._initial_occupied)
        empty = [v for v in range(self._n) if v not in set(occupied)]

        edges = []
        if occupied and empty:
            center_a = self._pick_center_a(occupied, context)
            center_b = empty[0]
            edges += [(center_a, v) for v in occupied if v != center_a]
            edges += [(center_b, v) for v in empty if v != center_b]
            edges.append((center_a, center_b))
        elif occupied:
            # Every node occupied: a single star keeps the graph connected.
            center_a = self._pick_center_a(occupied, context)
            edges += [(center_a, v) for v in occupied if v != center_a]
        else:
            # No robots alive (all crashed): any connected graph will do.
            edges += [(0, v) for v in range(1, self._n)]

        rng = random.Random(f"{self._seed}:star:{round_index}")
        snapshot = GraphSnapshot.from_edges(self._n, edges, rng=rng)
        self._last_round = round_index
        self._last_snapshot = snapshot
        return snapshot

    def max_new_nodes_per_round(self) -> int:
        """The structural bound this adversary enforces (for assertions)."""
        return 1
