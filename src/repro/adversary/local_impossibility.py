"""Theorem 1 / Figure 1: impossibility in the local model with 1-NK.

The construction: a path of ``k - 1`` occupied nodes -- one endpoint ``v``
holding two robots, every other path node holding one -- whose far endpoint
``y`` attaches to a connected subgraph of the ``n - k + 1`` empty nodes.
Dispersion from this configuration in one round requires the full
synchronized sweep ``v -> u -> ... -> y -> empty``; but the two mid-path
robots have symmetric local information (both see two occupied degree-2
neighbors, and the adversary controls the port numbering), so no
deterministic rule can point them both towards ``y``.  The adversary then
reforms the configuration, so dispersion never completes.

This module provides:

* :func:`build_fig1_instance` -- the exact Figure 1 instance for any
  ``k >= 5`` (the paper draws ``k = 6``);
* :func:`id_oblivious_view` / :func:`interior_views_are_symmetric` -- the
  mechanical symmetry check: the interior robots' views, stripped of robot
  IDs, are identical, hence any ID-oblivious deterministic rule moves them
  through the same *port number*, which the adversary's mirrored labelling
  maps to opposite directions along the path;
* :class:`LocalStallAdversary` -- the adaptive adversary that reforms the
  path shape every round and picks, per occupied node, the port labelling
  under which the candidate algorithm's move does *not* progress towards
  ``y`` (probing a deep copy of the algorithm, which is legitimate: the
  paper's adversary knows the algorithm and its full state).

A universal impossibility cannot be executed for all algorithms; the stall
adversary is exact for the candidate families shipped in
:mod:`repro.baselines.local_candidates` and the symmetry check covers every
ID-oblivious rule.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.dynamic import DynamicGraph, RoundContext
from repro.graph.snapshot import GraphSnapshot
from repro.sim.algorithm import MoveDecision, RobotAlgorithm
from repro.sim.observation import (
    CommunicationModel,
    InfoPacket,
    build_observations,
)


@dataclass(frozen=True)
class Fig1Instance:
    """The Figure 1 configuration: snapshot plus robot placement."""

    snapshot: GraphSnapshot
    positions: Dict[int, int]
    """Robot id -> node."""

    path_nodes: Tuple[int, ...]
    """The occupied path ``v, u, ..., y`` in order; ``path_nodes[0]`` holds
    two robots."""

    blob_nodes: Tuple[int, ...]
    """The empty connected subgraph; ``blob_nodes[0]`` attaches to ``y``."""

    @property
    def multiplicity_node(self) -> int:
        """The node ``v`` with two robots."""
        return self.path_nodes[0]

    @property
    def frontier_node(self) -> int:
        """The node ``y``: the only occupied node with an empty neighbor."""
        return self.path_nodes[-1]


def build_fig1_instance(
    k: int, n: Optional[int] = None, *, mirrored_ports: bool = True
) -> Fig1Instance:
    """Build the Figure 1 instance for ``k`` robots on ``n`` nodes.

    Nodes ``0..k-2`` form the occupied path (node 0 is ``v`` with robots 1
    and 2), nodes ``k-1..n-1`` form the empty blob (a star centered at node
    ``k-1``, attached to ``y = k-2``).  With ``mirrored_ports`` the interior
    path nodes are labelled so the two middle robots' ID-oblivious views
    coincide: each interior node's port 1 points to its neighbor *away*
    from a fixed reference in a mirrored pattern, realizing the paper's
    "they do not agree on the port numbering".
    """
    if k < 5:
        raise ValueError("the Theorem 1 construction needs k >= 5")
    if n is None:
        n = k + 2
    if n < k + 1:
        raise ValueError("need at least one empty node: n >= k + 1")

    path = list(range(k - 1))
    blob = list(range(k - 1, n))
    edges = [(path[i], path[i + 1]) for i in range(len(path) - 1)]
    edges.append((path[-1], blob[0]))
    edges += [(blob[0], b) for b in blob[1:]]

    snapshot = GraphSnapshot.from_edges(n, edges)
    if mirrored_ports:
        # Relabel interior path nodes: the first half points port 1 towards
        # v, the second half points port 1 towards y, so the two central
        # robots see mirror-image labellings (same port number leads in
        # opposite path directions).
        adj = [snapshot.port_map(v) for v in range(n)]
        for idx in range(1, len(path) - 1):
            node = path[idx]
            towards_v = path[idx - 1]
            towards_y = path[idx + 1]
            if idx <= (len(path) - 1) // 2:
                adj[node] = {1: towards_v, 2: towards_y}
            else:
                adj[node] = {1: towards_y, 2: towards_v}
        snapshot = GraphSnapshot.from_port_maps(n, adj)

    positions = {1: path[0], 2: path[0]}
    for robot_id in range(3, k + 1):
        positions[robot_id] = path[robot_id - 2]
    return Fig1Instance(
        snapshot=snapshot,
        positions=positions,
        path_nodes=tuple(path),
        blob_nodes=tuple(blob),
    )


def id_oblivious_view(packet: InfoPacket) -> Tuple:
    """A robot's 1-NK local view with all robot IDs erased.

    What remains is exactly what an ID-oblivious deterministic rule may
    depend on: its node's multiplicity, its degree, and the per-port
    occupancy pattern (occupied or empty, and the occupant count).
    """
    per_port = []
    by_port = {info.port: info for info in packet.occupied_neighbors}
    for port in range(1, packet.degree + 1):
        info = by_port.get(port)
        per_port.append(
            ("occupied", info.robot_count) if info else ("empty",)
        )
    return (packet.robot_count, packet.degree, tuple(per_port))


def interior_views_are_symmetric(instance: Fig1Instance) -> bool:
    """Check the paper's symmetry argument mechanically.

    The two central path robots (``w`` and ``x`` in Figure 1) must have
    identical ID-oblivious views: then any deterministic ID-oblivious rule
    selects the same port *number* for both, and under the mirrored
    labelling the same port number leads in opposite directions along the
    path -- the synchronized sweep towards ``y`` is impossible.
    """
    from repro.sim.observation import build_info_packets

    packets = build_info_packets(instance.snapshot, instance.positions)
    path = instance.path_nodes
    if len(path) < 5:
        raise ValueError(
            "the symmetric-pair argument needs k >= 6 (a path of >= 5 "
            "occupied nodes), the paper's Figure 1 setting"
        )
    # The symmetric pair straddles the mirror split of the labelling:
    # w = path[mid] has port 1 towards v, x = path[mid + 1] has port 1
    # towards y.  Both are interior nodes whose two neighbors each hold a
    # single robot (for k = 6 these are exactly the paper's w and x).
    mid = (len(path) - 1) // 2
    w_node, x_node = path[mid], path[mid + 1]
    view_w = id_oblivious_view(packets[w_node])
    view_x = id_oblivious_view(packets[x_node])
    if view_w != view_x:
        return False
    # And the mirrored labelling must send the same port in opposite
    # directions: port p at w towards v iff port p at x towards y.
    snap = instance.snapshot
    w_port_to_v = snap.port_of(w_node, path[mid - 1])
    x_port_to_y = snap.port_of(x_node, path[mid + 2])
    return w_port_to_v == x_port_to_y


class LocalStallAdversary(DynamicGraph):
    """Adaptive Theorem 1 adversary stalling a given local-model algorithm.

    Every round it reforms the Figure 1 shape over the currently occupied
    nodes: the highest-multiplicity node becomes the path end ``v``, the
    remaining occupied nodes form the path (in an adversary-chosen order),
    and the empty nodes form a star blob hung off ``y``.  For each occupied
    degree-2 path node it then probes the candidate algorithm (on a deep
    copy, so the probe leaves no trace) under both port labellings and
    keeps one under which that robot does not step towards ``y``; if the
    candidate steps towards ``y`` under both labellings (an ID-directed
    rule), the adversary retries with permuted path orders.

    The stall invariant it aims to maintain is the paper's: the
    synchronized full-path sweep never happens, so the number of occupied
    nodes never reaches ``k``.
    """

    def __init__(
        self,
        n: int,
        algorithm: RobotAlgorithm,
        *,
        seed: int = 0,
        max_order_trials: int = 6,
    ) -> None:
        super().__init__(n)
        self._algorithm = algorithm
        self._seed = seed
        self._max_order_trials = max(1, max_order_trials)
        self._cache: Dict[int, GraphSnapshot] = {}

    @property
    def is_adaptive(self) -> bool:
        return True

    # ------------------------------------------------------------------

    def snapshot(
        self, round_index: int, context: Optional[RoundContext] = None
    ) -> GraphSnapshot:
        if round_index in self._cache:
            return self._cache[round_index]
        if context is None:
            raise ValueError(
                "LocalStallAdversary is adaptive and needs the round context"
            )
        snapshot = self._construct(round_index, context)
        self._cache[round_index] = snapshot
        return snapshot

    def _construct(
        self, round_index: int, context: RoundContext
    ) -> GraphSnapshot:
        counts = context.occupied_counts
        occupied = sorted(counts)
        empty = [v for v in range(self._n) if v not in counts]
        rng = random.Random(f"{self._seed}:local:{round_index}")

        if len(occupied) < 3 or not empty:
            # Degenerate configurations (tiny k or nearly full graph):
            # fall back to a path + blob without probing.
            return self._assemble(occupied, empty, rng)

        # v = the node with the largest multiplicity (ties: smallest index).
        v_node = max(occupied, key=lambda node: (counts[node], -node))
        others = [node for node in occupied if node != v_node]

        orders: List[List[int]] = []
        orders.append(sorted(others))
        orders.append(sorted(others, reverse=True))
        for _ in range(self._max_order_trials - 2):
            shuffled = list(others)
            rng.shuffle(shuffled)
            orders.append(shuffled)

        best: Optional[GraphSnapshot] = None
        for order in orders[: self._max_order_trials]:
            path = [v_node] + order
            candidate = self._labelled_path_snapshot(
                path, empty, context, rng
            )
            if candidate is not None:
                sweep = self._sweep_possible(candidate, path, context)
                if not sweep:
                    return candidate
                if best is None:
                    best = candidate
        if best is not None:
            return best
        return self._assemble(occupied, empty, rng)

    # ------------------------------------------------------------------

    def _assemble(
        self,
        path: Sequence[int],
        empty: Sequence[int],
        rng: random.Random,
    ) -> GraphSnapshot:
        """Path over ``path`` + star blob over ``empty`` hung off the end."""
        edges = [(path[i], path[i + 1]) for i in range(len(path) - 1)]
        if empty:
            edges.append((path[-1], empty[0]))
            edges += [(empty[0], b) for b in empty[1:]]
        return GraphSnapshot.from_edges(self._n, edges, rng=rng)

    def _labelled_path_snapshot(
        self,
        path: Sequence[int],
        empty: Sequence[int],
        context: RoundContext,
        rng: random.Random,
    ) -> Optional[GraphSnapshot]:
        """Choose each interior node's labelling to block movement to y."""
        base = self._assemble(path, empty, rng)
        adj = [base.port_map(v) for v in range(self._n)]
        positions = context.positions

        for idx in range(1, len(path) - 1):
            node = path[idx]
            towards_v, towards_y = path[idx - 1], path[idx + 1]
            chosen = None
            for labelling in (
                {1: towards_v, 2: towards_y},
                {1: towards_y, 2: towards_v},
            ):
                trial = list(adj)
                trial[node] = labelling
                snap = GraphSnapshot.from_port_maps(self._n, trial)
                if not self._moves_towards(
                    snap, positions, node, towards_y, context.round_index
                ):
                    chosen = labelling
                    break
            adj[node] = chosen or {1: towards_v, 2: towards_y}
        return GraphSnapshot.from_port_maps(self._n, adj)

    def _moves_towards(
        self,
        snapshot: GraphSnapshot,
        positions: Dict[int, int],
        node: int,
        target: int,
        round_index: int,
    ) -> bool:
        """Whether any robot on ``node`` would step onto ``target``.

        Probes a deep copy of the candidate algorithm under the local
        communication model with 1-NK -- exactly the information the
        candidate is entitled to.
        """
        probe = copy.deepcopy(self._algorithm)
        observations = build_observations(
            snapshot,
            positions,
            round_index,
            communication=CommunicationModel.LOCAL,
            neighborhood_knowledge=True,
        )
        probe.on_round_start(round_index)
        robots_here = [r for r, pos in positions.items() if pos == node]
        for robot_id in sorted(robots_here):
            decision = probe.decide(observations[robot_id])
            if isinstance(decision, MoveDecision):
                if snapshot.neighbor_via(node, decision.port) == target:
                    return True
        return False

    def _sweep_possible(
        self,
        snapshot: GraphSnapshot,
        path: Sequence[int],
        context: RoundContext,
    ) -> bool:
        """Whether every interior robot would move towards ``y`` at once."""
        positions = context.positions
        for idx in range(1, len(path) - 1):
            if not self._moves_towards(
                snapshot, positions, path[idx], path[idx + 1],
                context.round_index,
            ):
                return False
        return True
