"""Theorem 2: impossibility in the global model without 1-NK.

The construction: with ``k`` robots on ``k - 1`` nodes (one node doubled),
the adversary forms a clique ``K_{k-1}`` over the occupied nodes and a
connected graph ``H`` over the empty ones.  The clique has
``(k-1)(k-2)/2`` edges but at most ``k`` robots move in a round, so some
clique edge ``(u, v)`` goes unused; the adversary removes it and instead
connects ``u`` and ``v`` to two nodes of ``H``.  Without 1-neighborhood
knowledge a robot cannot tell which of its ports lead into the clique and
which into ``H`` -- its observation (own node's multiplicity and degree,
plus everyone's packets, none of which carry neighbor information) is
unchanged by the rewiring -- so no robot crosses into ``H`` and no new node
is ever visited.

:class:`CliqueRewiringAdversary` implements this exactly: it simulates the
candidate algorithm's round on the clique graph (on a deep copy, as the
paper's adversary may: it knows the algorithm and its state), finds an
unused edge, rewires, and emits the rewired graph.  The key soundness
property -- the robots' no-1-NK observations on the emitted graph are
identical to those on the probed clique graph -- is checked by an assertion
and by the test suite.
"""

from __future__ import annotations

import copy
import random
from typing import Dict, List, Optional, Set, Tuple

from repro.graph.dynamic import DynamicGraph, RoundContext
from repro.graph.snapshot import GraphSnapshot
from repro.sim.algorithm import MoveDecision, RobotAlgorithm
from repro.sim.observation import (
    CommunicationModel,
    build_observations,
)


def unused_clique_edge_exists(k: int) -> bool:
    """Whether the counting argument applies: ``(k-1)(k-2)/2 > k``.

    True for every ``k >= 5``; the paper states the theorem for ``k >= 3``
    via a slightly different accounting, but the executable construction
    uses the clean counting bound.
    """
    return (k - 1) * (k - 2) // 2 > k


class CliqueRewiringAdversary(DynamicGraph):
    """Adaptive Theorem 2 adversary stalling a given no-1-NK algorithm.

    Requires a configuration with at least three occupied nodes and at
    least two empty nodes (the theorem's setting: ``k`` robots on ``k - 1``
    nodes, ``k >= 5``).  Falls back to the plain clique + H graph when the
    configuration is degenerate.
    """

    def __init__(
        self, n: int, algorithm: RobotAlgorithm, *, seed: int = 0
    ) -> None:
        super().__init__(n)
        self._algorithm = algorithm
        self._seed = seed
        self._cache: Dict[int, GraphSnapshot] = {}
        self.last_removed_edge: Optional[Tuple[int, int]] = None

    @property
    def is_adaptive(self) -> bool:
        return True

    def snapshot(
        self, round_index: int, context: Optional[RoundContext] = None
    ) -> GraphSnapshot:
        if round_index in self._cache:
            return self._cache[round_index]
        if context is None:
            raise ValueError(
                "CliqueRewiringAdversary is adaptive and needs the context"
            )
        snapshot = self._construct(round_index, context)
        self._cache[round_index] = snapshot
        return snapshot

    # ------------------------------------------------------------------

    def _clique_plus_h(
        self,
        occupied: List[int],
        empty: List[int],
        rng: random.Random,
        *,
        connect: bool,
    ) -> GraphSnapshot:
        """Clique over the occupied nodes plus a star ``H`` over the empty
        ones.

        With ``connect=False`` the two parts are left disconnected: that is
        the *probe* graph, used only to compute no-1-NK observations (which
        do not depend on K-to-H edges at all).  With ``connect=True`` a
        single K-to-H edge is added -- the fallback emitted for degenerate
        configurations where the rewiring argument does not apply.
        """
        edges = [
            (u, v)
            for i, u in enumerate(occupied)
            for v in occupied[i + 1:]
        ]
        if empty:
            edges += [(empty[0], b) for b in empty[1:]]
            if connect:
                edges.append((occupied[0], empty[0]))
        return GraphSnapshot.from_edges(self._n, edges, rng=rng)

    def _construct(
        self, round_index: int, context: RoundContext
    ) -> GraphSnapshot:
        occupied = sorted(context.occupied_nodes)
        empty = [v for v in range(self._n) if v not in set(occupied)]
        rng = random.Random(f"{self._seed}:clique:{round_index}")
        self.last_removed_edge = None

        if len(occupied) < 3 or not empty:
            return self._clique_plus_h(occupied, empty, rng, connect=True)

        probe_graph = self._clique_plus_h(occupied, empty, rng, connect=False)
        used_edges = self._simulate_used_edges(
            probe_graph, context.positions, round_index
        )
        clique_edges = [
            (u, v)
            for i, u in enumerate(occupied)
            for v in occupied[i + 1:]
        ]
        unused = [e for e in clique_edges if e not in used_edges]
        if not unused:
            # No unused clique edge (tiny k); emit the connected fallback --
            # the counting argument needs k >= 5 and callers check
            # unused_clique_edge_exists(k).
            return self._clique_plus_h(occupied, empty, rng, connect=True)

        u, v = unused[0]
        x = empty[0]
        y = empty[1] if len(empty) >= 2 else empty[0]
        rewired = self._rewire(probe_graph, (u, v), (u, x), (v, y))
        self.last_removed_edge = (u, v)

        # Soundness check: without 1-NK the robots' observations must be
        # identical on the probe graph and the emitted graph.
        self._assert_observation_equivalence(
            probe_graph, rewired, context.positions, round_index
        )
        return rewired

    def _simulate_used_edges(
        self,
        snapshot: GraphSnapshot,
        positions: Dict[int, int],
        round_index: int,
    ) -> Set[Tuple[int, int]]:
        """Which edges the candidate would traverse this round."""
        probe = copy.deepcopy(self._algorithm)
        observations = build_observations(
            snapshot,
            positions,
            round_index,
            communication=CommunicationModel.GLOBAL,
            neighborhood_knowledge=False,
        )
        probe.on_round_start(round_index)
        used: Set[Tuple[int, int]] = set()
        for robot_id in sorted(positions):
            decision = probe.decide(observations[robot_id])
            if isinstance(decision, MoveDecision):
                node = positions[robot_id]
                if decision.port <= snapshot.degree(node):
                    neighbor = snapshot.neighbor_via(node, decision.port)
                    used.add((min(node, neighbor), max(node, neighbor)))
        return used

    def _rewire(
        self,
        snapshot: GraphSnapshot,
        removed: Tuple[int, int],
        added_u: Tuple[int, int],
        added_v: Tuple[int, int],
    ) -> GraphSnapshot:
        """Replace edge (u,v) by (u,x) and (v,y), preserving the port
        numbers at u and v (so u's port that led to v now leads to x, and
        v's port that led to u now leads to y); x and y each gain one new
        highest-numbered port."""
        u, v = removed
        (_, x), (_, y) = added_u, added_v
        adj = [snapshot.port_map(node) for node in range(self._n)]

        port_u = snapshot.port_of(u, v)
        port_v = snapshot.port_of(v, u)
        adj[u][port_u] = x
        adj[v][port_v] = y
        adj[x][len(adj[x]) + 1] = u
        adj[y][len(adj[y]) + 1] = v
        return GraphSnapshot.from_port_maps(self._n, adj)

    def _assert_observation_equivalence(
        self,
        probe_graph: GraphSnapshot,
        emitted: GraphSnapshot,
        positions: Dict[int, int],
        round_index: int,
    ) -> None:
        obs_probe = build_observations(
            probe_graph, positions, round_index,
            communication=CommunicationModel.GLOBAL,
            neighborhood_knowledge=False,
        )
        obs_emitted = build_observations(
            emitted, positions, round_index,
            communication=CommunicationModel.GLOBAL,
            neighborhood_knowledge=False,
        )
        for robot_id in positions:
            a, b = obs_probe[robot_id], obs_emitted[robot_id]
            if (a.own_packet, a.packets) != (b.own_packet, b.packets):
                raise AssertionError(
                    "rewiring changed a no-1-NK observation; the Theorem 2 "
                    "construction is broken"
                )
