"""Serialization of runs and dynamic-graph scripts to and from JSON.

Reproduction artifacts should be inspectable and replayable outside the
process that produced them.  This module provides:

* :func:`snapshot_to_dict` / :func:`snapshot_from_dict` -- lossless
  round-graph serialization (including port labels, which matter: two
  labellings of the same graph are different inputs to the robots);
* :func:`dynamic_graph_to_script` -- freeze the first R rounds of any
  dynamic process into a plain list-of-snapshots script;
* :func:`script_from_dict` / :func:`script_to_dict` -- (de)serialize such
  scripts as :class:`~repro.graph.dynamic.SequenceDynamicGraph`;
* :func:`run_result_to_dict` / :func:`run_result_from_dict` -- lossless
  run export and reconstruction (metrics + per-round records), which is
  how :class:`~repro.sim.store.RunStore` persists results: a stored hit
  compares equal, field for field, to the result it replaced;
* :func:`replay_and_verify` -- re-execute a serialized instance and check
  the recorded outcome still holds (the reproducibility self-test).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional

from repro.graph.dynamic import DynamicGraph, SequenceDynamicGraph
from repro.graph.snapshot import GraphSnapshot
from repro.sim.metrics import RoundRecord, RunResult, TerminationReason

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------


def snapshot_to_dict(snapshot: GraphSnapshot) -> Dict[str, Any]:
    """Lossless dict form of a snapshot (ports included)."""
    return {
        "n": snapshot.n,
        "ports": [
            {str(port): neighbor for port, neighbor in snapshot.port_map(v).items()}
            for v in snapshot.nodes()
        ],
    }


def snapshot_from_dict(data: Dict[str, Any]) -> GraphSnapshot:
    """Inverse of :func:`snapshot_to_dict` (validates structure)."""
    try:
        n = int(data["n"])
        ports = [
            {int(port): int(neighbor) for port, neighbor in entry.items()}
            for entry in data["ports"]
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed snapshot payload: {exc}") from exc
    return GraphSnapshot.from_port_maps(n, ports)


# ---------------------------------------------------------------------------
# Dynamic-graph scripts
# ---------------------------------------------------------------------------


def dynamic_graph_to_script(
    dynamic_graph: DynamicGraph, rounds: int, *, tail: str = "hold"
) -> SequenceDynamicGraph:
    """Freeze the first ``rounds`` snapshots of an *oblivious* process.

    Adaptive adversaries depend on the run's configuration and cannot be
    frozen without it; they are rejected.
    """
    if dynamic_graph.is_adaptive:
        raise ValueError(
            "adaptive adversaries cannot be frozen into a script without "
            "the configuration history; serialize the run's snapshots from "
            "the engine instead"
        )
    if rounds < 1:
        raise ValueError("need at least one round")
    snapshots = [dynamic_graph.snapshot(r) for r in range(rounds)]
    return SequenceDynamicGraph(snapshots, tail=tail)


def script_to_dict(script: SequenceDynamicGraph, rounds: int) -> Dict[str, Any]:
    """Dict form of the first ``rounds`` snapshots of a script."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "dynamic_graph_script",
        "snapshots": [
            snapshot_to_dict(script.snapshot(r)) for r in range(rounds)
        ],
    }


def script_from_dict(data: Dict[str, Any], *, tail: str = "hold") -> SequenceDynamicGraph:
    """Inverse of :func:`script_to_dict`."""
    if data.get("kind") != "dynamic_graph_script":
        raise ValueError("payload is not a dynamic_graph_script")
    snapshots = [snapshot_from_dict(s) for s in data["snapshots"]]
    return SequenceDynamicGraph(snapshots, tail=tail)


# ---------------------------------------------------------------------------
# Run results
# ---------------------------------------------------------------------------


def run_result_to_dict(result: RunResult) -> Dict[str, Any]:
    """Full dict export of a run (JSON-serializable, lossless)."""
    records = []
    for record in result.records:
        entry: Dict[str, Any] = {
            "round": record.round_index,
            "positions_before": {
                str(r): v for r, v in record.positions_before.items()
            },
            "positions_after": {
                str(r): v for r, v in record.positions_after.items()
            },
            "moved": list(record.moved_robots),
            "crashed_before_communicate": list(
                record.crashed_before_communicate
            ),
            "crashed_after_compute": list(record.crashed_after_compute),
            "occupied_before": sorted(record.occupied_before),
            "occupied_after": sorted(record.occupied_after),
            "num_components": record.num_components,
            "max_persistent_bits": record.max_persistent_bits,
        }
        if record.snapshot is not None:
            entry["snapshot"] = snapshot_to_dict(record.snapshot)
        # Scheduler-timeline fields are emitted only when present so
        # FSYNC exports stay byte-identical to the historical format.
        if record.epoch is not None:
            entry["epoch"] = record.epoch
        if record.activated_robots is not None:
            entry["activated"] = list(record.activated_robots)
        records.append(entry)
    payload: Dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "kind": "run_result",
        "reason": result.reason.value,
        "rounds": result.rounds,
        "k": result.k,
        "n": result.n,
        "initial_occupied": result.initial_occupied,
        "final_positions": {
            str(robot): node for robot, node in result.final_positions.items()
        },
        "crashed_robots": list(result.crashed_robots),
        "byzantine_robots": list(result.byzantine_robots),
        "total_moves": result.total_moves,
        "max_persistent_bits": result.max_persistent_bits,
        "total_packets_broadcast": result.total_packets_broadcast,
        "total_packet_deliveries": result.total_packet_deliveries,
        "algorithm_detected_termination": result.algorithm_detected_termination,
        "records": records,
    }
    if result.final_epoch is not None:
        payload["final_epoch"] = result.final_epoch
    return payload


def _record_from_dict(data: Dict[str, Any]) -> RoundRecord:
    snapshot = data.get("snapshot")
    epoch = data.get("epoch")
    activated = data.get("activated")
    return RoundRecord(
        round_index=int(data["round"]),
        positions_before={
            int(r): int(v) for r, v in data["positions_before"].items()
        },
        positions_after={
            int(r): int(v) for r, v in data["positions_after"].items()
        },
        moved_robots=tuple(int(r) for r in data["moved"]),
        crashed_before_communicate=tuple(
            int(r) for r in data["crashed_before_communicate"]
        ),
        crashed_after_compute=tuple(
            int(r) for r in data["crashed_after_compute"]
        ),
        occupied_before=frozenset(
            int(v) for v in data["occupied_before"]
        ),
        occupied_after=frozenset(int(v) for v in data["occupied_after"]),
        num_components=int(data["num_components"]),
        max_persistent_bits=int(data["max_persistent_bits"]),
        snapshot=(
            snapshot_from_dict(snapshot) if snapshot is not None else None
        ),
        epoch=int(epoch) if epoch is not None else None,
        activated_robots=(
            tuple(int(r) for r in activated)
            if activated is not None
            else None
        ),
    )


def run_result_from_dict(data: Dict[str, Any]) -> RunResult:
    """Inverse of :func:`run_result_to_dict`.

    The reconstructed :class:`~repro.sim.metrics.RunResult` compares
    equal, field for field (records and stored snapshots included), to
    the exported one -- the property the run store's cache hits rely on.
    Raises ``ValueError`` on malformed payloads.
    """
    if data.get("kind") != "run_result":
        raise ValueError("payload is not a run_result")
    try:
        return RunResult(
            reason=TerminationReason(data["reason"]),
            rounds=int(data["rounds"]),
            k=int(data["k"]),
            n=int(data["n"]),
            initial_occupied=int(data["initial_occupied"]),
            final_positions={
                int(r): int(v)
                for r, v in data["final_positions"].items()
            },
            crashed_robots=tuple(
                int(r) for r in data["crashed_robots"]
            ),
            byzantine_robots=tuple(
                int(r) for r in data.get("byzantine_robots", ())
            ),
            total_moves=int(data["total_moves"]),
            max_persistent_bits=int(data["max_persistent_bits"]),
            total_packets_broadcast=int(
                data.get("total_packets_broadcast", 0)
            ),
            total_packet_deliveries=int(
                data.get("total_packet_deliveries", 0)
            ),
            records=[
                _record_from_dict(entry) for entry in data["records"]
            ],
            algorithm_detected_termination=bool(
                data["algorithm_detected_termination"]
            ),
            final_epoch=(
                int(data["final_epoch"])
                if data.get("final_epoch") is not None
                else None
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed run_result payload: {exc}") from exc


def run_result_to_json(result: RunResult, *, indent: Optional[int] = None) -> str:
    """JSON string export of a run."""
    return json.dumps(run_result_to_dict(result), indent=indent, sort_keys=True)


def run_fingerprint(result: RunResult) -> str:
    """A stable sha256 hex digest of a run's full serialized trace.

    Two runs fingerprint equal iff their :func:`run_result_to_json`
    exports are byte-identical -- the equality contract the engine
    backends are held to (``reference`` vs ``vectorized``) and the
    check the cross-backend replay tests and benchmark E13 assert.
    """
    payload = run_result_to_json(result).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------


def replay_and_verify(
    script: SequenceDynamicGraph,
    initial_positions: Dict[int, int],
    expected: RunResult,
) -> RunResult:
    """Re-run a serialized instance and verify it reproduces ``expected``.

    Checks the headline outcome (reason, rounds, final positions, moves).
    Raises ``AssertionError`` on divergence; returns the replayed result.
    """
    from repro.core.dispersion import DispersionDynamic
    from repro.sim.engine import SimulationEngine

    replayed = SimulationEngine(
        script, dict(initial_positions), DispersionDynamic()
    ).run()
    if (
        replayed.reason is not expected.reason
        or replayed.rounds != expected.rounds
        or replayed.final_positions != expected.final_positions
        or replayed.total_moves != expected.total_moves
    ):
        raise AssertionError(
            "replay diverged from the recorded run: "
            f"{replayed.summary()} vs {expected.summary()}"
        )
    return replayed
