"""Content-addressed, persistent storage of run results.

A :class:`RunStore` keys :class:`~repro.sim.metrics.RunResult` records by
:func:`~repro.sim.spec.spec_digest` -- a sha256 of the spec's canonical
JSON mixed with a code-version salt -- and persists them on disk, one
JSON document per digest.  Because specs are pure data and execution is
deterministic, a stored result *is* the run: sweeps, campaigns and
benchmarks that route their grids through a store recompute a spec at
most once per code revision, across process boundaries and across
invocations.  An interrupted campaign that stored half its runs resumes
by recomputing only the other half.

Layout (``layout v1``)::

    <root>/v1/<digest[:2]>/<digest>.json   one entry per stored run
    <root>/tmp/                            staging area for atomic writes
    <root>/quarantine/<digest>.json        entries that failed integrity

Each entry carries the digest, the salt, the full spec, the full result
(:func:`~repro.sim.traceio.run_result_to_dict`), the wall-clock seconds
the original execution took, a creation timestamp, and a sha256
``checksum`` over the content-bearing fields (digest, salt, spec,
result).  The read path re-derives that checksum on every hit: an entry
that fails to parse, whose checksum mismatches, or whose digest does not
match its address is *quarantined* (moved to ``<root>/quarantine/``,
preserving the evidence), counted in ``corrupt_entries``, and treated as
a miss -- the spec is recomputed and the fresh write repairs the store,
so a corrupt entry can never serve a wrong result.  :meth:`RunStore.verify`
runs the same integrity checks over the whole store offline.  Writes go to the
staging area and are published with ``os.replace``, which is atomic on
POSIX: any number of processes -- including the worker processes of a
:class:`~repro.sim.runner.ProcessPoolRunner` sharing one store -- may
read and write concurrently without torn entries.  Racing writers of the
same digest produce identical content, so last-writer-wins is lossless.

:class:`CachingRunner` is the read-through/write-through adapter: it
wraps any :class:`~repro.sim.runner.Runner` backend, serves hits from
the store, executes only the misses, and writes those back.  Explicit
:meth:`RunStore.invalidate`, :meth:`RunStore.gc` and
:meth:`RunStore.stats` operations complete the cache lifecycle; the CLI
exposes them as ``repro-dispersion cache stats|gc|clear``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Union

from repro.sim.metrics import RunResult
from repro.sim.runner import Runner
from repro.sim.spec import (
    CODE_VERSION_SALT,
    RunSpec,
    canonical_json,
    spec_digest,
)
from repro.sim.traceio import run_result_from_dict, run_result_to_dict

LAYOUT_VERSION = 1

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> pathlib.Path:
    """The cache root used when none is given explicitly.

    ``$REPRO_CACHE_DIR`` if set, else ``$XDG_CACHE_HOME/repro-dispersion``,
    else ``~/.cache/repro-dispersion``.
    """
    # Cache *location* discovery only: where entries live cannot reach a
    # digest or a stored result, so the environment read is safe here.
    env = os.environ.get(CACHE_DIR_ENV)  # reprolint: disable=D003
    if env:
        return pathlib.Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")  # reprolint: disable=D003
    base = pathlib.Path(xdg) if xdg else pathlib.Path.home() / ".cache"
    return base / "repro-dispersion"


def entry_checksum(
    digest: str,
    salt: str,
    spec: Mapping[str, Any],
    result: Mapping[str, Any],
) -> str:
    """The integrity checksum of one store entry's content fields.

    A sha256 over the canonical JSON of the content-bearing fields only:
    provenance metadata (``created_at``, ``seconds``, ``label``) is
    excluded so equal results always carry equal checksums, mirroring how
    :func:`~repro.sim.spec.spec_digest` excludes the display label.
    """
    payload = canonical_json(
        {"digest": digest, "salt": salt, "spec": dict(spec), "result": dict(result)}
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StoreEntry:
    """Metadata of one stored run (the payload stays on disk)."""

    digest: str
    salt: str
    label: str
    seconds: Optional[float]
    created_at: float
    size_bytes: int
    path: pathlib.Path


@dataclass
class StoreStats:
    """A point-in-time view of a store plus this session's counters."""

    entries: int
    size_bytes: int
    hits: int
    misses: int
    writes: int
    root: str
    corrupt_entries: int = 0
    quarantine_entries: int = 0
    quarantine_bytes: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable form (what ``cache stats --json`` emits)."""
        return {
            "kind": "run_store_stats",
            "root": self.root,
            "entries": self.entries,
            "size_bytes": self.size_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt_entries": self.corrupt_entries,
            "quarantine_entries": self.quarantine_entries,
            "quarantine_bytes": self.quarantine_bytes,
        }

    def render(self) -> str:
        """One human-readable line per field."""
        return (
            f"store {self.root}\n"
            f"  entries {self.entries}, {self.size_bytes} bytes\n"
            f"  quarantine: {self.quarantine_entries} entries, "
            f"{self.quarantine_bytes} bytes\n"
            f"  session: {self.hits} hits, {self.misses} misses, "
            f"{self.writes} writes, {self.corrupt_entries} corrupt"
        )


@dataclass
class VerifyReport:
    """The outcome of one :meth:`RunStore.verify` integrity scan."""

    checked: int = 0
    ok: int = 0
    corrupt: List[Dict[str, str]] = field(default_factory=list)
    quarantined: int = 0
    quarantine_entries: int = 0
    quarantine_bytes: int = 0

    @property
    def clean(self) -> bool:
        """Whether every checked entry passed integrity validation."""
        return not self.corrupt

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable form (what ``cache verify --json`` emits)."""
        return {
            "kind": "run_store_verify",
            "checked": self.checked,
            "ok": self.ok,
            "corrupt": list(self.corrupt),
            "quarantined": self.quarantined,
            "quarantine_entries": self.quarantine_entries,
            "quarantine_bytes": self.quarantine_bytes,
            "clean": self.clean,
        }

    def render(self) -> str:
        """A summary line plus one line per corrupt entry."""
        lines = [
            f"verify: {self.checked} entries checked, {self.ok} ok, "
            f"{len(self.corrupt)} corrupt, {self.quarantined} quarantined; "
            f"quarantine holds {self.quarantine_entries} entries, "
            f"{self.quarantine_bytes} bytes"
        ]
        for item in self.corrupt:
            lines.append(
                f"  corrupt {item['digest'][:12]}...: {item['reason']}"
            )
        return "\n".join(lines)


class RunStore:
    """Content-addressed on-disk cache of spec -> result.

    ``root`` is the cache directory (created lazily on first write;
    default :func:`default_cache_dir`).  ``salt`` is the code-version
    salt mixed into every digest (default
    :data:`~repro.sim.spec.CODE_VERSION_SALT`); bumping it makes every
    previously stored entry unreachable -- the library-wide invalidation
    lever -- while :meth:`gc` can reclaim the orphaned bytes.

    Session counters (``hits`` / ``misses`` / ``writes``) accumulate per
    store instance; :meth:`stats` combines them with a disk scan.
    """

    def __init__(
        self,
        root: Union[str, os.PathLike, None] = None,
        *,
        salt: str = CODE_VERSION_SALT,
    ) -> None:
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()
        self.salt = salt
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt = 0

    def __repr__(self) -> str:
        return f"RunStore({str(self.root)!r}, salt={self.salt!r})"

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    @property
    def _objects(self) -> pathlib.Path:
        return self.root / f"v{LAYOUT_VERSION}"

    @property
    def quarantine_dir(self) -> pathlib.Path:
        """Where entries that fail integrity validation are moved."""
        return self.root / "quarantine"

    def digest(self, spec: RunSpec) -> str:
        """The content address of ``spec`` under this store's salt."""
        return spec_digest(spec, salt=self.salt)

    def path_for(self, digest: str) -> pathlib.Path:
        """Where the entry for ``digest`` lives (whether or not it exists)."""
        return self._objects / digest[:2] / f"{digest}.json"

    def same_target(self, other: "RunStore") -> bool:
        """Whether ``other`` addresses the same on-disk entries."""
        return self.root == other.root and self.salt == other.salt

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------

    def _check_integrity(self, digest: str, payload: Mapping[str, Any]) -> None:
        """Raise ``ValueError`` unless ``payload`` is a sound entry for
        ``digest`` (right kind, address matches, checksum re-derives)."""
        if payload.get("kind") != "run_store_entry":
            raise ValueError("not a run_store_entry")
        if payload.get("digest") != digest:
            raise ValueError("entry digest does not match its address")
        expected = entry_checksum(
            digest,
            str(payload.get("salt", "")),
            payload["spec"],
            payload["result"],
        )
        if payload.get("checksum") != expected:
            raise ValueError("payload checksum mismatch")

    def _quarantine(self, path: pathlib.Path) -> bool:
        """Move a corrupt entry aside (preserving the evidence); True on
        success, False if it could not be moved *or* removed."""
        target = self.quarantine_dir / path.name
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
            return True
        except OSError:
            try:
                path.unlink()
                return True
            except OSError:
                return False

    def get(self, spec: RunSpec) -> Optional[RunResult]:
        """The stored result for ``spec``, or ``None`` on a miss.

        A hit reconstructs a :class:`RunResult` equal, field for field,
        to the one originally stored.  An entry that fails integrity
        validation (does not parse, wrong kind, digest/address mismatch,
        checksum mismatch) is counted in :attr:`corrupt`, quarantined to
        ``<root>/quarantine/`` and treated as a miss -- the caller
        recomputes and the fresh :meth:`put` repairs the store, so a
        corrupt entry can never serve a wrong result.
        """
        digest = self.digest(spec)
        path = self.path_for(digest)
        try:
            raw = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(raw.decode("utf-8"))
            self._check_integrity(digest, payload)
            result = run_result_from_dict(payload["result"])
        except (ValueError, KeyError, TypeError):
            # Corrupt entry (bit rot, a torn write from a pre-atomic
            # layout, or injected tampering): surface it in the corrupt
            # counter, keep the bytes for diagnosis, recompute.
            self.corrupt += 1
            self.misses += 1
            self._quarantine(path)
            return None
        self.hits += 1
        return result

    def put(
        self,
        spec: RunSpec,
        result: RunResult,
        *,
        seconds: Optional[float] = None,
    ) -> str:
        """Persist ``result`` under ``spec``'s digest; returns the digest.

        The write is atomic (staged in ``<root>/tmp`` and published via
        ``os.replace``), so concurrent readers and writers -- including
        pool workers sharing the store -- never observe a torn entry.
        """
        digest = self.digest(spec)
        path = self.path_for(digest)
        spec_dict = spec.to_dict()
        result_dict = run_result_to_dict(result)
        payload = {
            "kind": "run_store_entry",
            "layout_version": LAYOUT_VERSION,
            "digest": digest,
            "salt": self.salt,
            "label": spec.label,
            # Provenance metadata only: created_at orders entries for
            # gc eviction and is never part of the digest pre-image or
            # the reconstructed RunResult, so the wall-clock read cannot
            # leak into any content-addressed key.
            "created_at": time.time(),  # reprolint: disable=D001
            "seconds": seconds,
            # Integrity checksum over the content-bearing fields only
            # (provenance excluded), re-derived by every read.
            "checksum": entry_checksum(digest, self.salt, spec_dict, result_dict),
            "spec": spec_dict,
            "result": result_dict,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        staging = self.root / "tmp"
        staging.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=staging, prefix=digest[:8], suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(
                    payload, handle, separators=(",", ":"), sort_keys=True
                )
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.writes += 1
        return digest

    def __contains__(self, spec: RunSpec) -> bool:
        """Whether ``spec`` has a stored entry (no counters touched)."""
        return self.path_for(self.digest(spec)).exists()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def entries(self) -> Iterator[StoreEntry]:
        """Iterate the metadata of every stored entry (any salt)."""
        if not self._objects.is_dir():
            return
        for path in sorted(self._objects.glob("*/*.json")):
            try:
                payload = json.loads(path.read_text())
                stat = path.stat()
            except (OSError, ValueError):
                continue
            if payload.get("kind") != "run_store_entry":
                continue
            yield StoreEntry(
                digest=str(payload.get("digest", path.stem)),
                salt=str(payload.get("salt", "")),
                label=str(payload.get("label", "")),
                seconds=payload.get("seconds"),
                created_at=float(payload.get("created_at", 0.0)),
                size_bytes=stat.st_size,
                path=path,
            )

    def quarantine_usage(self) -> Dict[str, int]:
        """Entry count and total bytes currently held in quarantine."""
        entries = 0
        size = 0
        if self.quarantine_dir.is_dir():
            for path in sorted(self.quarantine_dir.glob("*.json")):
                try:
                    size += path.stat().st_size
                except OSError:
                    continue
                entries += 1
        return {"entries": entries, "bytes": size}

    def purge_quarantine(self, *, older_than_days: float = 0.0) -> int:
        """Delete quarantined entries older than ``older_than_days``.

        Quarantined files exist only as diagnostic evidence; once old
        enough to be uninteresting they are reclaimable.  ``0`` purges
        everything.  Returns the number of files removed.
        """
        if older_than_days < 0:
            raise ValueError(
                f"older_than_days must be >= 0, got {older_than_days}"
            )
        if not self.quarantine_dir.is_dir():
            return 0
        # Age is judged against the wall clock on purpose: quarantine
        # timestamps are filesystem provenance, never digest inputs.
        cutoff = time.time() - older_than_days * 86400.0  # reprolint: disable=D001
        removed = 0
        for path in sorted(self.quarantine_dir.glob("*.json")):
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    removed += 1
            except OSError:
                continue
        return removed

    def invalidate(self, spec: RunSpec) -> bool:
        """Drop ``spec``'s entry; returns whether one existed."""
        path = self.path_for(self.digest(spec))
        try:
            path.unlink()
            return True
        except OSError:
            return False

    def clear(self) -> int:
        """Drop every entry (any salt); returns the number removed."""
        removed = 0
        for entry in list(self.entries()):
            try:
                entry.path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def gc(
        self,
        *,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        drop_stale: bool = True,
        purge_quarantine_days: Optional[float] = None,
    ) -> Dict[str, int]:
        """Reclaim disk space; returns removed/kept/unlink-error counts.

        ``drop_stale`` removes entries written under a different salt
        (unreachable since the salt bump).  ``max_entries`` /
        ``max_bytes`` then evict oldest-first until the survivors fit
        both budgets.  ``unlink_errors`` counts removal attempts that
        failed with ``OSError`` (the entry is left in place and still
        counted as kept) -- surfaced rather than swallowed, so a
        permission problem in a shared cache is visible.
        ``purge_quarantine_days`` additionally deletes quarantined
        entries at least that many days old (``0`` purges all), counted
        separately under ``quarantine_purged``.
        """
        quarantine_purged = 0
        if purge_quarantine_days is not None:
            quarantine_purged = self.purge_quarantine(
                older_than_days=purge_quarantine_days
            )
        live: List[StoreEntry] = []
        removed = 0
        unlink_errors = 0
        for entry in self.entries():
            if drop_stale and entry.salt != self.salt:
                try:
                    entry.path.unlink()
                    removed += 1
                except OSError:
                    unlink_errors += 1
                    live.append(entry)
                continue
            live.append(entry)
        live.sort(key=lambda e: e.created_at)
        stuck: List[StoreEntry] = []
        total_bytes = sum(e.size_bytes for e in live)
        while live and (
            (max_entries is not None and len(live) > max_entries)
            or (max_bytes is not None and total_bytes > max_bytes)
        ):
            victim = live.pop(0)
            try:
                victim.path.unlink()
                removed += 1
                total_bytes -= victim.size_bytes
            except OSError:
                # Unremovable victim: count the error, keep it out of the
                # eviction loop so the scan always terminates.
                unlink_errors += 1
                stuck.append(victim)
                total_bytes -= victim.size_bytes
        return {
            "removed": removed,
            "kept": len(live) + len(stuck),
            "unlink_errors": unlink_errors,
            "quarantine_purged": quarantine_purged,
        }

    def stats(self) -> StoreStats:
        """Disk usage plus this session's hit/miss/write counters."""
        entries = 0
        size = 0
        for entry in self.entries():
            entries += 1
            size += entry.size_bytes
        quarantine = self.quarantine_usage()
        return StoreStats(
            entries=entries,
            size_bytes=size,
            hits=self.hits,
            misses=self.misses,
            writes=self.writes,
            root=str(self.root),
            corrupt_entries=self.corrupt,
            quarantine_entries=quarantine["entries"],
            quarantine_bytes=quarantine["bytes"],
        )

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    def _verify_entry(self, path: pathlib.Path) -> Optional[str]:
        """Why the entry at ``path`` is corrupt, or ``None`` if sound."""
        try:
            raw = path.read_bytes()
        except OSError as error:
            return f"unreadable: {type(error).__name__}"
        try:
            payload = json.loads(raw.decode("utf-8"))
        except ValueError:
            return "does not decode as JSON"
        try:
            self._check_integrity(path.stem, payload)
        except (ValueError, KeyError, TypeError) as error:
            return str(error) or type(error).__name__
        # Deep check: the stored spec must hash back to the address under
        # the recorded salt, so a tampered salt or spec cannot hide
        # behind a recomputed checksum.
        try:
            spec = RunSpec.from_dict(payload["spec"])
            derived = spec_digest(spec, salt=str(payload.get("salt", "")))
        except (ValueError, KeyError, TypeError) as error:
            return f"stored spec does not reconstruct: {error}"
        if derived != path.stem:
            return "stored spec does not hash to the entry address"
        return None

    def verify(self, *, quarantine: bool = False) -> VerifyReport:
        """Scan every entry (any salt) and validate its integrity.

        Checks, per entry: JSON decodes, kind marker, digest matches the
        file's address, the sha256 payload checksum re-derives, and the
        stored spec hashes back to the address under its recorded salt.
        With ``quarantine=True`` corrupt entries are moved to
        ``<root>/quarantine/`` so the next read recomputes them; the
        report lists each corrupt entry with its reason either way.
        """
        report = VerifyReport()
        if self._objects.is_dir():
            for path in sorted(self._objects.glob("*/*.json")):
                report.checked += 1
                reason = self._verify_entry(path)
                if reason is None:
                    report.ok += 1
                    continue
                report.corrupt.append(
                    {"digest": path.stem, "path": str(path), "reason": reason}
                )
                if quarantine and self._quarantine(path):
                    report.quarantined += 1
        # Snapshot quarantine usage after the scan, so entries this very
        # call moved aside are included in the reported holdings.
        usage = self.quarantine_usage()
        report.quarantine_entries = usage["entries"]
        report.quarantine_bytes = usage["bytes"]
        return report


def execute_through_store(
    spec: RunSpec,
    root: Union[str, os.PathLike],
    salt: str = CODE_VERSION_SALT,
) -> RunResult:
    """Hit-or-execute-and-store one spec against the store at ``root``.

    A module-level pure function of its arguments, hence picklable: this
    is the task :class:`~repro.sim.runner.ProcessPoolRunner` dispatches
    when it carries a store, which is what lets every worker process
    read and write-through one shared cache directly.
    """
    from repro.sim.spec import execute

    store = RunStore(root, salt=salt)
    cached = store.get(spec)
    if cached is not None:
        return cached
    t0 = time.perf_counter()
    result = execute(spec)
    store.put(spec, result, seconds=time.perf_counter() - t0)
    return result


class CachingRunner(Runner):
    """Read-through / write-through cache around any runner backend.

    Hits are served from ``store`` without touching the backend; misses
    are executed through it (in spec order relative to each other) and
    written back.  Results come back in spec order, equal to what the
    bare backend would have produced -- caching is semantically
    invisible.  If the wrapped backend already writes through the same
    store (a :class:`~repro.sim.runner.ProcessPoolRunner` constructed
    with ``store=``), the duplicate parent-side write is skipped.
    """

    name = "caching"

    def __init__(self, inner: Runner, store: RunStore) -> None:
        self.inner = inner
        self.store = store
        self.name = f"caching[{inner.name}]"

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Serve hits from the store, execute misses via the backend."""
        results: List[Optional[RunResult]] = [None] * len(specs)
        miss_indices: List[int] = []
        for index, spec in enumerate(specs):
            cached = self.store.get(spec)
            if cached is not None:
                results[index] = cached
            else:
                miss_indices.append(index)
        if miss_indices:
            inner_store = getattr(self.inner, "store", None)
            worker_writes = (
                isinstance(inner_store, RunStore)
                and self.store.same_target(inner_store)
            )
            t0 = time.perf_counter()
            computed = self.inner.run([specs[i] for i in miss_indices])
            mean_seconds = (
                (time.perf_counter() - t0) / len(miss_indices)
            )
            for index, result in zip(miss_indices, computed):
                results[index] = result
                if not worker_writes:
                    self.store.put(
                        specs[index], result, seconds=mean_seconds
                    )
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    def close(self) -> None:
        """Close the wrapped backend."""
        self.inner.close()
