"""Content-addressed, persistent storage of run results.

A :class:`RunStore` keys :class:`~repro.sim.metrics.RunResult` records by
:func:`~repro.sim.spec.spec_digest` -- a sha256 of the spec's canonical
JSON mixed with a code-version salt -- and persists them on disk, one
JSON document per digest.  Because specs are pure data and execution is
deterministic, a stored result *is* the run: sweeps, campaigns and
benchmarks that route their grids through a store recompute a spec at
most once per code revision, across process boundaries and across
invocations.  An interrupted campaign that stored half its runs resumes
by recomputing only the other half.

Layout (``layout v1``)::

    <root>/v1/<digest[:2]>/<digest>.json        one entry per stored run
    <root>/v1/<digest[:2]>/<...>.json.tomb      gc tombstone (mid-delete)
    <root>/tmp/                                 staging area for writes
    <root>/quarantine/<digest>.json             entries that failed integrity

Each entry carries the digest, the salt, the full spec, the full result
(:func:`~repro.sim.traceio.run_result_to_dict`), the wall-clock seconds
the original execution took, a creation timestamp, and a sha256
``checksum`` over the content-bearing fields (digest, salt, spec,
result).  The read path re-derives that checksum on every hit: an entry
that fails to parse, whose checksum mismatches, or whose digest does not
match its address is *quarantined* (moved to ``<root>/quarantine/``,
preserving the evidence), counted in ``corrupt_entries``, and treated as
a miss -- the spec is recomputed and the fresh write repairs the store,
so a corrupt entry can never serve a wrong result.  :meth:`RunStore.verify`
runs the same integrity checks over the whole store offline.

**Write path and durability.**  Writes are staged in ``<root>/tmp`` and
published with ``os.replace``, which is atomic on POSIX: any number of
processes -- including the worker processes of a
:class:`~repro.sim.runner.ProcessPoolRunner` sharing one store -- may
read and write concurrently without torn entries.  Racing writers of the
same digest produce identical content, so last-writer-wins is lossless.
Two ``durability`` modes govern what a *system* crash (power loss, not
just a killed process) may take with it:

* ``"fast"`` (default) -- no fsync.  A crash can lose recently published
  entries (a lost rename is just a cache miss) or, on filesystems that
  persist the rename before the data, leave a *torn* published entry --
  which the checksum validation detects and quarantines on first read.
* ``"strict"`` -- fsync the staged file before ``os.replace`` and fsync
  the parent directory after it.  A published entry is durable the
  moment ``put`` returns; torn published entries are impossible.

Every filesystem mutation goes through a :class:`VirtualFS`, a named-op
surface (:mod:`repro.chaos.fs` substitutes a fault-injecting one), and
is tagged with the owning store's ``writer`` address, so a chaos plan
can target e.g. the parent-side :class:`CachingRunner` write path
specifically.  :meth:`RunStore.recover` sweeps crash debris -- stale
``tmp/`` staging files and leftover gc tombstones; the stale-tmp sweep
also runs lazily on a store's first write.  :meth:`RunStore.gc` deletes
in two phases (rename to ``*.tomb``, then unlink) so a crash mid-gc
never races a concurrent writer republishing the same digest.

:class:`CachingRunner` is the read-through/write-through adapter: it
wraps any :class:`~repro.sim.runner.Runner` backend, serves hits from
the store, executes only the misses, and writes those back.  A failed
write-back (``ENOSPC``, ``EIO``) degrades gracefully: the computed
result is still returned and the fault is surfaced as a structured
``io`` failure record instead of aborting the campaign.  Explicit
:meth:`RunStore.invalidate`, :meth:`RunStore.gc` and
:meth:`RunStore.stats` operations complete the cache lifecycle; the CLI
exposes them as ``repro-dispersion cache stats|gc|clear``.
"""

from __future__ import annotations

import errno
import hashlib
import itertools
import json
import os
import pathlib
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from repro.sim.metrics import RunResult
from repro.sim.runner import Runner
from repro.sim.spec import (
    CODE_VERSION_SALT,
    RunSpec,
    canonical_json,
    spec_digest,
)
from repro.sim.traceio import run_result_from_dict, run_result_to_dict

LAYOUT_VERSION = 1

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: The write-path durability modes a :class:`RunStore` supports.
DURABILITY_MODES = ("fast", "strict")

#: How old (seconds) an orphaned ``tmp/`` staging file must be before
#: the recovery sweep reclaims it.  Anything younger is presumed to
#: belong to a live concurrent writer.
STALE_TMP_GRACE_SECONDS = 3600.0

#: Per-process serial for unique staging names (uniqueness only; the
#: name never influences any stored content).
_TMP_SERIAL = itertools.count()

#: An injectable wall-clock (provenance timestamps only, never digest
#: inputs); tests substitute skewed clocks to prove age arithmetic
#: tolerates non-monotonic time.
Clock = Callable[[], float]


class VirtualFS:
    """The syscall surface of a store mutation, as named, addressable ops.

    Every way a :class:`RunStore` touches the filesystem -- staging
    writes, fsyncs, atomic publishes, directory syncs, unlinks, mkdirs
    -- is routed through one of these methods, each tagged with the
    owning store's ``writer`` address.  The base class simply performs
    the real operation; :class:`repro.chaos.fs.ChaosVFS` overrides it to
    inject torn writes, ``EIO``/``ENOSPC``, lost renames and
    crash-points at any op boundary, which is what makes the write path
    an enumerable *op stream* rather than opaque side effects.
    """

    def mkdir(self, path: pathlib.Path, *, writer: str = "") -> None:
        """Create ``path`` (and parents); a no-op if it exists."""
        os.makedirs(path, exist_ok=True)

    def write_bytes(
        self, path: pathlib.Path, data: bytes, *, writer: str = ""
    ) -> None:
        """Write ``data`` to ``path`` (create or truncate)."""
        with open(path, "wb") as handle:
            handle.write(data)

    def fsync_file(self, path: pathlib.Path, *, writer: str = "") -> None:
        """Flush ``path``'s data to stable storage."""
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def replace(
        self, src: pathlib.Path, dst: pathlib.Path, *, writer: str = ""
    ) -> None:
        """Atomically publish ``src`` at ``dst`` (``os.replace``)."""
        os.replace(src, dst)

    def fsync_dir(self, path: pathlib.Path, *, writer: str = "") -> None:
        """Flush the directory entry updates under ``path``."""
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def unlink(self, path: pathlib.Path, *, writer: str = "") -> None:
        """Remove ``path``."""
        os.unlink(path)


#: The shared pass-through instance every un-instrumented store uses.
_REAL_FS = VirtualFS()


def default_cache_dir() -> pathlib.Path:
    """The cache root used when none is given explicitly.

    ``$REPRO_CACHE_DIR`` if set, else ``$XDG_CACHE_HOME/repro-dispersion``,
    else ``~/.cache/repro-dispersion``.
    """
    # Cache *location* discovery only: where entries live cannot reach a
    # digest or a stored result, so the environment read is safe here.
    env = os.environ.get(CACHE_DIR_ENV)  # reprolint: disable=D003
    if env:
        return pathlib.Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")  # reprolint: disable=D003
    base = pathlib.Path(xdg) if xdg else pathlib.Path.home() / ".cache"
    return base / "repro-dispersion"


def entry_checksum(
    digest: str,
    salt: str,
    spec: Mapping[str, Any],
    result: Mapping[str, Any],
) -> str:
    """The integrity checksum of one store entry's content fields.

    A sha256 over the canonical JSON of the content-bearing fields only:
    provenance metadata (``created_at``, ``seconds``, ``label``) is
    excluded so equal results always carry equal checksums, mirroring how
    :func:`~repro.sim.spec.spec_digest` excludes the display label.
    """
    payload = canonical_json(
        {"digest": digest, "salt": salt, "spec": dict(spec), "result": dict(result)}
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StoreEntry:
    """Metadata of one stored run (the payload stays on disk)."""

    digest: str
    salt: str
    label: str
    seconds: Optional[float]
    created_at: float
    size_bytes: int
    path: pathlib.Path


@dataclass
class StoreStats:
    """A point-in-time view of a store plus this session's counters."""

    entries: int
    size_bytes: int
    hits: int
    misses: int
    writes: int
    root: str
    corrupt_entries: int = 0
    quarantine_entries: int = 0
    quarantine_bytes: int = 0
    tmp_files: int = 0
    stale_tmp_removed: int = 0
    tombstones_swept: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable form (what ``cache stats --json`` emits)."""
        return {
            "kind": "run_store_stats",
            "root": self.root,
            "entries": self.entries,
            "size_bytes": self.size_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt_entries": self.corrupt_entries,
            "quarantine_entries": self.quarantine_entries,
            "quarantine_bytes": self.quarantine_bytes,
            "tmp_files": self.tmp_files,
            "stale_tmp_removed": self.stale_tmp_removed,
            "tombstones_swept": self.tombstones_swept,
        }

    def render(self) -> str:
        """One human-readable line per field."""
        return (
            f"store {self.root}\n"
            f"  entries {self.entries}, {self.size_bytes} bytes\n"
            f"  quarantine: {self.quarantine_entries} entries, "
            f"{self.quarantine_bytes} bytes\n"
            f"  staging: {self.tmp_files} tmp files "
            f"({self.stale_tmp_removed} stale removed, "
            f"{self.tombstones_swept} tombstones swept)\n"
            f"  session: {self.hits} hits, {self.misses} misses, "
            f"{self.writes} writes, {self.corrupt_entries} corrupt"
        )


@dataclass
class VerifyReport:
    """The outcome of one :meth:`RunStore.verify` integrity scan."""

    checked: int = 0
    ok: int = 0
    corrupt: List[Dict[str, str]] = field(default_factory=list)
    quarantined: int = 0
    quarantine_entries: int = 0
    quarantine_bytes: int = 0

    @property
    def clean(self) -> bool:
        """Whether every checked entry passed integrity validation."""
        return not self.corrupt

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable form (what ``cache verify --json`` emits)."""
        return {
            "kind": "run_store_verify",
            "checked": self.checked,
            "ok": self.ok,
            "corrupt": list(self.corrupt),
            "quarantined": self.quarantined,
            "quarantine_entries": self.quarantine_entries,
            "quarantine_bytes": self.quarantine_bytes,
            "clean": self.clean,
        }

    def render(self) -> str:
        """A summary line plus one line per corrupt entry."""
        lines = [
            f"verify: {self.checked} entries checked, {self.ok} ok, "
            f"{len(self.corrupt)} corrupt, {self.quarantined} quarantined; "
            f"quarantine holds {self.quarantine_entries} entries, "
            f"{self.quarantine_bytes} bytes"
        ]
        for item in self.corrupt:
            lines.append(
                f"  corrupt {item['digest'][:12]}...: {item['reason']}"
            )
        return "\n".join(lines)


class RunStore:
    """Content-addressed on-disk cache of spec -> result.

    ``root`` is the cache directory (created lazily on first write;
    default :func:`default_cache_dir`).  ``salt`` is the code-version
    salt mixed into every digest (default
    :data:`~repro.sim.spec.CODE_VERSION_SALT`); bumping it makes every
    previously stored entry unreachable -- the library-wide invalidation
    lever -- while :meth:`gc` can reclaim the orphaned bytes.

    ``durability`` selects the write-path crash guarantee (``"fast"`` or
    ``"strict"``, see the module docstring).  ``vfs`` substitutes the
    :class:`VirtualFS` every filesystem mutation routes through (chaos
    injection); ``writer`` is the address tag those ops carry
    (:class:`CachingRunner` tags its store ``"parent"``, pool workers
    tag theirs ``"worker"``).  ``clock`` is the provenance timestamp
    source (default ``time.time``); it feeds ``created_at`` and age
    arithmetic only, never a digest, and all age checks tolerate a
    non-monotonic clock (an mtime in the future reads as age zero).

    Session counters (``hits`` / ``misses`` / ``writes`` /
    ``stale_tmp_removed`` / ``tombstones_swept``) accumulate per store
    instance; :meth:`stats` combines them with a disk scan.
    """

    def __init__(
        self,
        root: Union[str, os.PathLike, None] = None,
        *,
        salt: str = CODE_VERSION_SALT,
        durability: str = "fast",
        vfs: Optional[VirtualFS] = None,
        writer: str = "",
        clock: Optional[Clock] = None,
    ) -> None:
        if durability not in DURABILITY_MODES:
            raise ValueError(
                f"durability must be one of {DURABILITY_MODES}, "
                f"got {durability!r}"
            )
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()
        self.salt = salt
        self.durability = durability
        self.vfs = vfs if vfs is not None else _REAL_FS
        self.writer = writer
        # Reference only, never called here: created_at is provenance
        # metadata and the injection point is what the skew tests drive.
        self._clock: Clock = clock if clock is not None else time.time
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt = 0
        self.stale_tmp_removed = 0
        self.tombstones_swept = 0
        self._recovered = False

    def __repr__(self) -> str:
        return (
            f"RunStore({str(self.root)!r}, salt={self.salt!r}, "
            f"durability={self.durability!r})"
        )

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    @property
    def _objects(self) -> pathlib.Path:
        return self.root / f"v{LAYOUT_VERSION}"

    @property
    def staging_dir(self) -> pathlib.Path:
        """Where in-flight writes are staged before publication."""
        return self.root / "tmp"

    @property
    def quarantine_dir(self) -> pathlib.Path:
        """Where entries that fail integrity validation are moved."""
        return self.root / "quarantine"

    def digest(self, spec: RunSpec) -> str:
        """The content address of ``spec`` under this store's salt."""
        return spec_digest(spec, salt=self.salt)

    def path_for(self, digest: str) -> pathlib.Path:
        """Where the entry for ``digest`` lives (whether or not it exists)."""
        return self._objects / digest[:2] / f"{digest}.json"

    def same_target(self, other: "RunStore") -> bool:
        """Whether ``other`` addresses the same on-disk entries."""
        return self.root == other.root and self.salt == other.salt

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------

    def _check_integrity(self, digest: str, payload: Mapping[str, Any]) -> None:
        """Raise ``ValueError`` unless ``payload`` is a sound entry for
        ``digest`` (right kind, address matches, checksum re-derives)."""
        if payload.get("kind") != "run_store_entry":
            raise ValueError("not a run_store_entry")
        if payload.get("digest") != digest:
            raise ValueError("entry digest does not match its address")
        expected = entry_checksum(
            digest,
            str(payload.get("salt", "")),
            payload["spec"],
            payload["result"],
        )
        if payload.get("checksum") != expected:
            raise ValueError("payload checksum mismatch")

    def _quarantine(self, path: pathlib.Path) -> bool:
        """Move a corrupt entry aside (preserving the evidence); True on
        success, False if it could not be moved *or* removed."""
        target = self.quarantine_dir / path.name
        try:
            self.vfs.mkdir(self.quarantine_dir, writer=self.writer)
            self.vfs.replace(path, target, writer=self.writer)
            return True
        except OSError:
            try:
                self.vfs.unlink(path, writer=self.writer)
                return True
            except OSError:
                return False

    def get(self, spec: RunSpec) -> Optional[RunResult]:
        """The stored result for ``spec``, or ``None`` on a miss.

        A hit reconstructs a :class:`RunResult` equal, field for field,
        to the one originally stored.  An entry that fails integrity
        validation (does not parse, wrong kind, digest/address mismatch,
        checksum mismatch) is counted in :attr:`corrupt`, quarantined to
        ``<root>/quarantine/`` and treated as a miss -- the caller
        recomputes and the fresh :meth:`put` repairs the store, so a
        corrupt entry can never serve a wrong result.
        """
        digest = self.digest(spec)
        path = self.path_for(digest)
        try:
            raw = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(raw.decode("utf-8"))
            self._check_integrity(digest, payload)
            result = run_result_from_dict(payload["result"])
        except (ValueError, KeyError, TypeError):
            # Corrupt entry (bit rot, a torn write published by a crash
            # under durability="fast", or injected tampering): surface
            # it in the corrupt counter, keep the bytes for diagnosis,
            # recompute.
            self.corrupt += 1
            self.misses += 1
            self._quarantine(path)
            return None
        self.hits += 1
        return result

    def put(
        self,
        spec: RunSpec,
        result: RunResult,
        *,
        seconds: Optional[float] = None,
    ) -> str:
        """Persist ``result`` under ``spec``'s digest; returns the digest.

        The write is atomic (staged in ``<root>/tmp`` and published via
        ``os.replace``), so concurrent readers and writers -- including
        pool workers sharing the store -- never observe a torn entry.
        Under ``durability="strict"`` the staged file is fsynced before
        publication and the parent directory after it, making the entry
        durable against system crashes, not just process deaths.  The
        first write of a store instance also sweeps stale ``tmp/``
        staging debris left by crashed earlier writers.
        """
        digest = self.digest(spec)
        path = self.path_for(digest)
        if not self._recovered:
            self.recover(sweep_tombstones=False)
        spec_dict = spec.to_dict()
        result_dict = run_result_to_dict(result)
        payload = {
            "kind": "run_store_entry",
            "layout_version": LAYOUT_VERSION,
            "digest": digest,
            "salt": self.salt,
            "label": spec.label,
            # Provenance metadata only: created_at orders entries for
            # gc eviction and is never part of the digest pre-image or
            # the reconstructed RunResult, so the (injectable) clock
            # read cannot leak into any content-addressed key.
            "created_at": self._clock(),
            "seconds": seconds,
            # Integrity checksum over the content-bearing fields only
            # (provenance excluded), re-derived by every read.
            "checksum": entry_checksum(digest, self.salt, spec_dict, result_dict),
            "spec": spec_dict,
            "result": result_dict,
        }
        data = json.dumps(payload, separators=(",", ":"), sort_keys=True)
        vfs = self.vfs
        vfs.mkdir(path.parent, writer=self.writer)
        vfs.mkdir(self.staging_dir, writer=self.writer)
        # Unique per process+serial; the name never reaches any content.
        tmp = self.staging_dir / (
            f"{digest[:8]}.{os.getpid()}.{next(_TMP_SERIAL)}.json"
        )
        try:
            vfs.write_bytes(tmp, data.encode("utf-8"), writer=self.writer)
            if self.durability == "strict":
                vfs.fsync_file(tmp, writer=self.writer)
            vfs.replace(tmp, path, writer=self.writer)
            if self.durability == "strict":
                vfs.fsync_dir(path.parent, writer=self.writer)
        except BaseException as error:
            # A *simulated* crash must leave the staging debris a real
            # crash would -- that torn tmp file is exactly what the
            # recovery sweep exists to reclaim.
            if not getattr(error, "simulated_crash", False):
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            raise
        self.writes += 1
        return digest

    def __contains__(self, spec: RunSpec) -> bool:
        """Whether ``spec`` has a stored entry (no counters touched)."""
        return self.path_for(self.digest(spec)).exists()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover(
        self,
        *,
        stale_tmp_seconds: float = STALE_TMP_GRACE_SECONDS,
        sweep_tombstones: bool = True,
    ) -> Dict[str, int]:
        """Sweep crash debris; returns per-category removal counts.

        Two kinds of debris survive an interrupted process:

        * **stale staging files** -- a writer that died between staging
          and publishing leaves a (possibly torn) file in ``tmp/``.
          Files older than ``stale_tmp_seconds`` are reclaimed; younger
          ones are presumed to belong to live concurrent writers.  Age
          is clamped at zero, so a skewed clock that stamps files in
          the future can never make a fresh write look ancient.
        * **gc tombstones** -- a :meth:`gc` that died between its mark
          and sweep phases leaves ``*.json.tomb`` files.  A tombstone is
          a committed deletion (readers already cannot see it), so the
          sweep simply finishes the unlink.

        Runs implicitly before a store instance's first write (staging
        sweep only) and at the start of every :meth:`gc`; the CLI
        surfaces the counts via ``cache stats`` / ``cache gc``.
        """
        self._recovered = True
        swept_tmp = 0
        swept_tombs = 0
        if self.staging_dir.is_dir():
            now = self._clock()
            for leftover in sorted(self.staging_dir.iterdir()):
                try:
                    age = now - leftover.stat().st_mtime
                except OSError:
                    continue
                if max(age, 0.0) < stale_tmp_seconds:
                    continue
                try:
                    self.vfs.unlink(leftover, writer=self.writer)
                    swept_tmp += 1
                except OSError:
                    continue
        if sweep_tombstones and self._objects.is_dir():
            for tomb in sorted(self._objects.glob("*/*.json.tomb")):
                try:
                    self.vfs.unlink(tomb, writer=self.writer)
                    swept_tombs += 1
                except OSError:
                    continue
        self.stale_tmp_removed += swept_tmp
        self.tombstones_swept += swept_tombs
        return {
            "stale_tmp_removed": swept_tmp,
            "tombstones_swept": swept_tombs,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def entries(self) -> Iterator[StoreEntry]:
        """Iterate the metadata of every stored entry (any salt)."""
        if not self._objects.is_dir():
            return
        for path in sorted(self._objects.glob("*/*.json")):
            try:
                payload = json.loads(path.read_text())
                stat = path.stat()
            except (OSError, ValueError):
                continue
            if payload.get("kind") != "run_store_entry":
                continue
            yield StoreEntry(
                digest=str(payload.get("digest", path.stem)),
                salt=str(payload.get("salt", "")),
                label=str(payload.get("label", "")),
                seconds=payload.get("seconds"),
                created_at=float(payload.get("created_at", 0.0)),
                size_bytes=stat.st_size,
                path=path,
            )

    def staging_usage(self) -> int:
        """How many in-flight (or orphaned) files ``tmp/`` holds."""
        if not self.staging_dir.is_dir():
            return 0
        count = 0
        for path in self.staging_dir.iterdir():
            count += 1
        return count

    def quarantine_usage(self) -> Dict[str, int]:
        """Entry count and total bytes currently held in quarantine."""
        entries = 0
        size = 0
        if self.quarantine_dir.is_dir():
            for path in sorted(self.quarantine_dir.glob("*.json")):
                try:
                    size += path.stat().st_size
                except OSError:
                    continue
                entries += 1
        return {"entries": entries, "bytes": size}

    def purge_quarantine(self, *, older_than_days: float = 0.0) -> int:
        """Delete quarantined entries older than ``older_than_days``.

        Quarantined files exist only as diagnostic evidence; once old
        enough to be uninteresting they are reclaimable.  ``0`` purges
        everything.  Returns the number of files removed.  A skewed
        clock cannot over-purge: an mtime in the future reads as age
        zero, which only ever keeps evidence longer.
        """
        if older_than_days < 0:
            raise ValueError(
                f"older_than_days must be >= 0, got {older_than_days}"
            )
        if not self.quarantine_dir.is_dir():
            return 0
        # Age is judged against the (injectable) wall clock on purpose:
        # quarantine timestamps are filesystem provenance, never digest
        # inputs.
        now = self._clock()
        removed = 0
        for path in sorted(self.quarantine_dir.glob("*.json")):
            try:
                age = max(now - path.stat().st_mtime, 0.0)
                if age >= older_than_days * 86400.0:
                    self.vfs.unlink(path, writer=self.writer)
                    removed += 1
            except OSError:
                continue
        return removed

    def invalidate(self, spec: RunSpec) -> bool:
        """Drop ``spec``'s entry; returns whether one existed."""
        path = self.path_for(self.digest(spec))
        try:
            self.vfs.unlink(path, writer=self.writer)
            return True
        except OSError:
            return False

    def clear(self) -> int:
        """Drop every entry (any salt); returns the number removed."""
        removed = 0
        for entry in list(self.entries()):
            try:
                self.vfs.unlink(entry.path, writer=self.writer)
                removed += 1
            except OSError:
                pass
        return removed

    def gc(
        self,
        *,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        drop_stale: bool = True,
        purge_quarantine_days: Optional[float] = None,
    ) -> Dict[str, int]:
        """Reclaim disk space; returns removed/kept/unlink-error counts.

        ``drop_stale`` removes entries written under a different salt
        (unreachable since the salt bump).  ``max_entries`` /
        ``max_bytes`` then evict oldest-first until the survivors fit
        both budgets (a non-monotonic ``created_at`` ordering is
        tolerated -- eviction order is simply the sorted timestamps,
        however skewed).

        Deletion is **two-phase** so compaction is safe under
        concurrent writers and crashes: every victim is first *marked*
        by an atomic rename to ``<entry>.json.tomb`` (phase one), then
        the tombstones are unlinked (phase two).  A writer republishing
        a victim digest mid-gc creates a fresh file at the original
        path, which the tombstone sweep never touches -- the new entry
        survives.  A crash between the phases leaves only tombstones,
        which are invisible to readers and reclaimed by
        :meth:`recover` (which also runs first, so debris from a
        previously crashed gc is finished here).

        ``unlink_errors`` counts victims whose *mark* rename failed
        with ``OSError`` (the entry is left in place and still counted
        as kept) -- surfaced rather than swallowed, so a permission
        problem in a shared cache is visible.
        ``purge_quarantine_days`` additionally deletes quarantined
        entries at least that many days old (``0`` purges all), counted
        separately under ``quarantine_purged``.
        """
        recovered = self.recover()
        quarantine_purged = 0
        if purge_quarantine_days is not None:
            quarantine_purged = self.purge_quarantine(
                older_than_days=purge_quarantine_days
            )
        live: List[StoreEntry] = []
        victims: List[StoreEntry] = []
        for entry in self.entries():
            if drop_stale and entry.salt != self.salt:
                victims.append(entry)
                continue
            live.append(entry)
        live.sort(key=lambda e: e.created_at)
        total_bytes = sum(e.size_bytes for e in live)
        while live and (
            (max_entries is not None and len(live) > max_entries)
            or (max_bytes is not None and total_bytes > max_bytes)
        ):
            victim = live.pop(0)
            victims.append(victim)
            total_bytes -= victim.size_bytes
        # Phase one: mark every victim with an atomic tombstone rename.
        # From this point each marked entry is invisible to readers; a
        # concurrent writer republishing the digest lands at the
        # original path, untouched by phase two.
        removed = 0
        unlink_errors = 0
        stuck: List[StoreEntry] = []
        tombs: List[pathlib.Path] = []
        for victim in victims:
            tomb = victim.path.with_name(victim.path.name + ".tomb")
            try:
                self.vfs.replace(victim.path, tomb, writer=self.writer)
            except OSError:
                unlink_errors += 1
                stuck.append(victim)
                continue
            removed += 1
            tombs.append(tomb)
        # Phase two: sweep the tombstones.  A failure here is already a
        # committed deletion -- recover() finishes it later.
        for tomb in tombs:
            try:
                self.vfs.unlink(tomb, writer=self.writer)
            except OSError:
                continue
        return {
            "removed": removed,
            "kept": len(live) + len(stuck),
            "unlink_errors": unlink_errors,
            "quarantine_purged": quarantine_purged,
            "stale_tmp_removed": recovered["stale_tmp_removed"],
            "tombstones_swept": recovered["tombstones_swept"],
        }

    def stats(self) -> StoreStats:
        """Disk usage plus this session's hit/miss/write counters."""
        entries = 0
        size = 0
        for entry in self.entries():
            entries += 1
            size += entry.size_bytes
        quarantine = self.quarantine_usage()
        return StoreStats(
            entries=entries,
            size_bytes=size,
            hits=self.hits,
            misses=self.misses,
            writes=self.writes,
            root=str(self.root),
            corrupt_entries=self.corrupt,
            quarantine_entries=quarantine["entries"],
            quarantine_bytes=quarantine["bytes"],
            tmp_files=self.staging_usage(),
            stale_tmp_removed=self.stale_tmp_removed,
            tombstones_swept=self.tombstones_swept,
        )

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    def _verify_entry(self, path: pathlib.Path) -> Optional[str]:
        """Why the entry at ``path`` is corrupt, or ``None`` if sound."""
        try:
            raw = path.read_bytes()
        except OSError as error:
            return f"unreadable: {type(error).__name__}"
        try:
            payload = json.loads(raw.decode("utf-8"))
        except ValueError:
            return "does not decode as JSON"
        try:
            self._check_integrity(path.stem, payload)
        except (ValueError, KeyError, TypeError) as error:
            return str(error) or type(error).__name__
        # Deep check: the stored spec must hash back to the address under
        # the recorded salt, so a tampered salt or spec cannot hide
        # behind a recomputed checksum.
        try:
            spec = RunSpec.from_dict(payload["spec"])
            derived = spec_digest(spec, salt=str(payload.get("salt", "")))
        except (ValueError, KeyError, TypeError) as error:
            return f"stored spec does not reconstruct: {error}"
        if derived != path.stem:
            return "stored spec does not hash to the entry address"
        return None

    def verify(self, *, quarantine: bool = False) -> VerifyReport:
        """Scan every entry (any salt) and validate its integrity.

        Checks, per entry: JSON decodes, kind marker, digest matches the
        file's address, the sha256 payload checksum re-derives, and the
        stored spec hashes back to the address under its recorded salt.
        With ``quarantine=True`` corrupt entries are moved to
        ``<root>/quarantine/`` so the next read recomputes them; the
        report lists each corrupt entry with its reason either way.
        """
        report = VerifyReport()
        if self._objects.is_dir():
            for path in sorted(self._objects.glob("*/*.json")):
                report.checked += 1
                reason = self._verify_entry(path)
                if reason is None:
                    report.ok += 1
                    continue
                report.corrupt.append(
                    {"digest": path.stem, "path": str(path), "reason": reason}
                )
                if quarantine and self._quarantine(path):
                    report.quarantined += 1
        # Snapshot quarantine usage after the scan, so entries this very
        # call moved aside are included in the reported holdings.
        usage = self.quarantine_usage()
        report.quarantine_entries = usage["entries"]
        report.quarantine_bytes = usage["bytes"]
        return report


def execute_through_store(
    spec: RunSpec,
    root: Union[str, os.PathLike],
    salt: str = CODE_VERSION_SALT,
    durability: str = "fast",
) -> RunResult:
    """Hit-or-execute-and-store one spec against the store at ``root``.

    A module-level pure function of its arguments, hence picklable: this
    is the task :class:`~repro.sim.runner.ProcessPoolRunner` dispatches
    when it carries a store, which is what lets every worker process
    read and write-through one shared cache directly.  Worker-side
    store ops are tagged ``writer="worker"``, distinguishing them from
    the parent-side :class:`CachingRunner` write path.
    """
    from repro.sim.spec import execute

    store = RunStore(root, salt=salt, durability=durability, writer="worker")
    cached = store.get(spec)
    if cached is not None:
        return cached
    t0 = time.perf_counter()
    result = execute(spec)
    store.put(spec, result, seconds=time.perf_counter() - t0)
    return result


class CachingRunner(Runner):
    """Read-through / write-through cache around any runner backend.

    Hits are served from ``store`` without touching the backend; misses
    are executed through it (in spec order relative to each other) and
    written back.  Results come back in spec order, equal to what the
    bare backend would have produced -- caching is semantically
    invisible.  If the wrapped backend already writes through the same
    store (a :class:`~repro.sim.runner.ProcessPoolRunner` constructed
    with ``store=``), the duplicate parent-side write is skipped.

    The wrapped store's filesystem ops are tagged ``writer="parent"``
    (unless already tagged), which is the address a
    :class:`~repro.chaos.plan.FsFault` uses to target this write path
    specifically.  A write-back that fails with ``OSError`` (``ENOSPC``,
    ``EIO``) degrades gracefully: the freshly computed result is still
    returned, the write is skipped, and a structured ``io``
    :class:`~repro.chaos.failures.FailureRecord` is appended to
    :attr:`failures` (surfaced by campaign reports via the duck-typed
    ``failure_records`` protocol).
    """

    name = "caching"

    def __init__(self, inner: Runner, store: RunStore) -> None:
        self.inner = inner
        self.store = store
        if not store.writer:
            store.writer = "parent"
        self.failures: List[Any] = []
        self._spec_base = 0
        self.name = f"caching[{inner.name}]"

    def _record_write_failure(self, unit: int, error: OSError) -> None:
        """Append a deterministic ``io`` failure record for a skipped
        write-back (errno name only -- paths carry nondeterministic
        staging serials)."""
        # Imported lazily: repro.chaos depends on this module, so a
        # top-level import would be circular; by the time a write can
        # fail, both packages are importable.
        from repro.chaos.failures import FailureRecord

        code = errno.errorcode.get(error.errno or 0, type(error).__name__)
        self.failures.append(
            FailureRecord(
                unit=unit,
                attempt=0,
                kind="io",
                detail=f"store write skipped: {code}",
            )
        )

    @property
    def failure_records(self) -> List[Any]:
        """The tolerated write-failure records, in canonical order."""
        return sorted(self.failures)

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Serve hits from the store, execute misses via the backend."""
        spec_base = self._spec_base
        self._spec_base += len(specs)
        results: List[Optional[RunResult]] = [None] * len(specs)
        miss_indices: List[int] = []
        for index, spec in enumerate(specs):
            cached = self.store.get(spec)
            if cached is not None:
                results[index] = cached
            else:
                miss_indices.append(index)
        if miss_indices:
            inner_store = getattr(self.inner, "store", None)
            worker_writes = (
                isinstance(inner_store, RunStore)
                and self.store.same_target(inner_store)
            )
            t0 = time.perf_counter()
            computed = self.inner.run([specs[i] for i in miss_indices])
            mean_seconds = (
                (time.perf_counter() - t0) / len(miss_indices)
            )
            for index, result in zip(miss_indices, computed):
                results[index] = result
                if not worker_writes:
                    try:
                        self.store.put(
                            specs[index], result, seconds=mean_seconds
                        )
                    except OSError as error:
                        # Graceful degradation: the result is already
                        # computed and correct; a full disk only costs
                        # the cache entry, never the campaign.
                        self._record_write_failure(spec_base + index, error)
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    def close(self) -> None:
        """Close the wrapped backend."""
        self.inner.close()
