"""The robot-algorithm interface consumed by the simulation engine.

An algorithm is a single object driving all robots (the paper's robots all
run the same program); per-robot persistent state, if any, must live in
structures the algorithm exposes through :meth:`RobotAlgorithm.persistent_state`
so the engine can audit its size in bits (Lemma 8).

Each round the engine calls :meth:`RobotAlgorithm.decide` once per alive
robot with that robot's :class:`~repro.sim.observation.Observation`; the
return value is a :class:`Decision`: stay put or exit through a port of the
current node.  Decisions are collected first and applied simultaneously --
the synchronous Move phase.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple, Union

from repro.sim.observation import CommunicationModel, Observation


@dataclass(frozen=True)
class StayDecision:
    """The robot stays on its current node this round."""

    def __repr__(self) -> str:
        return "Stay"


@dataclass(frozen=True)
class MoveDecision:
    """The robot exits its node through ``port`` at the end of the round."""

    port: int

    def __post_init__(self) -> None:
        if self.port < 1:
            raise ValueError(f"ports are numbered from 1, got {self.port}")

    def __repr__(self) -> str:
        return f"Move(port={self.port})"


Decision = Union[StayDecision, MoveDecision]

STAY = StayDecision()


class RobotAlgorithm(ABC):
    """Base class for all robot algorithms run by the engine.

    Class attributes declare the model requirements so the engine can
    refuse configurations the algorithm was not designed for (e.g. running
    the paper's algorithm without 1-neighborhood knowledge would silently
    degenerate; we fail fast instead).
    """

    name: str = "abstract"
    requires_communication: CommunicationModel = CommunicationModel.GLOBAL
    requires_neighborhood_knowledge: bool = True

    compatible_schedulers: Tuple[str, ...] = ("fsync", "ssync", "async")
    """Scheduler-model names this algorithm is meaningful under.

    Mirrors ``requires_communication``: the engine refuses to start a run
    whose :class:`~repro.sim.scheduling.SchedulerModel` is not listed
    here (``allow_model_mismatch=True`` overrides, exactly as for the
    communication check).  The default is permissive -- an algorithm that
    merely *degrades* outside FSYNC (e.g. losing its round bound, as
    Algorithm 4 does) should stay runnable so the degradation can be
    measured; declare ``("fsync",)`` only when non-synchronous execution
    would make the run meaningless (e.g. lower-bound candidates whose
    adversary argument assumes lock-step rounds)."""

    @abstractmethod
    def decide(self, observation: Observation) -> Decision:
        """Compute this robot's action for the round (Compute phase).

        All within-call computation is "temporary memory" in the paper's
        accounting and therefore free; only state surviving between calls
        (and exposed via :meth:`persistent_state`) is charged.
        """

    def on_run_start(self, k: int, n: int) -> None:
        """Hook invoked once before round 0 (e.g. to size ID fields)."""

    def on_round_start(self, round_index: int) -> None:
        """Hook invoked at the start of every round, before any decide()."""

    def persistent_state(self, robot_id: int) -> Dict[str, Any]:
        """The named fields robot ``robot_id`` persists across rounds.

        The default is the paper-minimal state: just the robot's own ID.
        Subclasses with more state must include every field they carry.
        """
        return {"id": robot_id}

    def persistent_state_bounds(self, k: int, n: int) -> Mapping[str, int]:
        """Declared maxima for integer fields of :meth:`persistent_state`.

        Used by the engine's memory audit to charge ``ceil(log2(bound+1))``
        bits per field.  The default bounds the ID field by ``k``.
        """
        return {"id": k}

    def detects_termination(self, observation: Observation) -> bool:
        """Whether this robot can tell the run is complete.

        With global communication every robot sees every packet, so absence
        of any multiplicity node is globally detectable -- this is how the
        paper's algorithm stops.  Algorithms without global communication
        may be unable to detect termination; they return False and rely on
        the engine's ground-truth stop (which is flagged in the result).
        """
        return not observation.sees_multiplicity
