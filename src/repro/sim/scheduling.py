"""Scheduler models and activation policies: FSYNC, SSYNC, ASYNC.

The paper's setting is fully synchronous -- every robot executes every CCM
round -- and its Section VIII lists semi-synchronous / asynchronous
settings as future work.  This module implements the scheduling layer for
that direction, in two tiers:

**Activation policies** (which robots wake inside a semi-synchronous
step):

* :class:`FullActivation` -- the paper's model; every alive robot is
  active every round (the engine's default);
* :class:`RandomSubsetActivation` -- the classical SSYNC adversary
  surrogate: each alive robot is independently active with probability
  ``p`` (derandomized per (seed, round, robot)), with a guaranteed
  non-empty activation set;
* :class:`RoundRobinActivation` -- a deterministic SSYNC schedule
  activating robots whose ID matches the round modulo a window.

**Scheduler models** (how the engine's steps relate to logical time),
the :class:`SchedulerModel` hierarchy driving the engine's phase loop:

* :class:`FsyncScheduler` -- the paper's model: every eligible robot is
  activated every step and the logical epoch equals the step index;
* :class:`SsyncScheduler` -- wraps an activation policy; a subset wakes
  each step, everyone shares the step's epoch;
* :class:`AsyncScheduler` -- a deterministic seeded event-queue LCM
  scheduler: each robot carries its own next-activation event on an
  integer logical clock, delays are drawn from a derandomized
  distribution (uniform / geometric / adversarially biased), and each
  engine step fires the earliest batch of events.  Optionally the Move
  phase itself takes time (``move_max_delay``), producing in-transit
  robots whose arrivals the engine settles in later steps.

Semantics under partial activation: *presence is physical* -- inactive
robots still occupy their nodes and appear in everyone's information
packets (1-NK senses robots, not activity) -- but only active robots
compute and move.  Under these semantics the paper's Lemma 7 no longer
holds round-for-round (a sliding path can be executed partially, vacating
a node), which is exactly the degradation the E5 benchmark measures; with
random activation every configuration still has positive probability of a
fully-active round, so dispersion remains achieved with probability 1.
See ``docs/scheduling.md`` for the full model definitions.

Scheduler models are *backend-neutral*: the engine calls them only
through :class:`~repro.sim.backend.EngineBackend` phase primitives
(``activate`` validates the model's activation set, ``move``/``settle``
consume its arrival epochs), so any conforming backend -- reference or
vectorized -- must produce byte-identical schedules for the same seed
under all three models.
"""

from __future__ import annotations

import hashlib
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Sequence, Tuple


class ActivationSchedule(ABC):
    """Decides which alive robots execute a given round."""

    @abstractmethod
    def active_robots(
        self, round_index: int, alive: Sequence[int]
    ) -> FrozenSet[int]:
        """The subset of ``alive`` robot IDs that are active this round.

        Must be a subset of ``alive`` and non-empty whenever ``alive`` is
        (an all-asleep round would be indistinguishable from a stutter and
        only inflates round counts).
        """

    @property
    def is_synchronous(self) -> bool:
        """Whether this schedule activates everyone every round."""
        return False


class FullActivation(ActivationSchedule):
    """The paper's synchronous setting: everyone, every round."""

    def active_robots(
        self, round_index: int, alive: Sequence[int]
    ) -> FrozenSet[int]:
        return frozenset(alive)

    @property
    def is_synchronous(self) -> bool:
        return True


class RandomSubsetActivation(ActivationSchedule):
    """Each alive robot is active with probability ``p``, independently.

    Derandomized by hashing (seed, round, robot) so runs are reproducible.
    If the sampled set comes out empty, the smallest alive robot is
    activated (the scheduler must be fair enough to keep time moving).
    """

    def __init__(self, p: float, *, seed: int = 0) -> None:
        if not 0.0 < p <= 1.0:
            raise ValueError(f"activation probability must be in (0, 1], got {p}")
        self._p = p
        self._seed = seed

    @property
    def p(self) -> float:
        """The per-robot activation probability."""
        return self._p

    def _coin(self, round_index: int, robot_id: int) -> float:
        digest = hashlib.sha256(
            f"{self._seed}:{round_index}:{robot_id}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def active_robots(
        self, round_index: int, alive: Sequence[int]
    ) -> FrozenSet[int]:
        chosen = {
            robot_id
            for robot_id in alive
            if self._coin(round_index, robot_id) < self._p
        }
        if not chosen and alive:
            chosen = {min(alive)}
        return frozenset(chosen)


class RoundRobinActivation(ActivationSchedule):
    """Deterministic SSYNC: robot ``i`` is active when
    ``i % window == round % window`` (plus everyone every ``window``-th
    round so multi-robot coordination is periodically possible)."""

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self._window = window

    def active_robots(
        self, round_index: int, alive: Sequence[int]
    ) -> FrozenSet[int]:
        if self._window == 1 or round_index % self._window == 0:
            return frozenset(alive)
        phase = round_index % self._window
        chosen = frozenset(
            robot_id for robot_id in alive if robot_id % self._window == phase
        )
        if not chosen and alive:
            chosen = frozenset({min(alive)})
        return chosen


# ---------------------------------------------------------------------------
# Scheduler models
# ---------------------------------------------------------------------------


def _unit_interval(*parts: object) -> float:
    """Derandomized coin in [0, 1) from hashing the given parts."""
    digest = hashlib.sha256(
        ":".join(str(part) for part in parts).encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class Activation:
    """One scheduler step: who wakes, at what logical time.

    ``epoch`` is the logical time of the step (equal to the engine's step
    index under FSYNC/SSYNC; the event-queue clock under ASYNC).
    ``move_delays`` maps an activated robot to the number of additional
    engine steps its Move phase takes; robots absent from the mapping
    move atomically within the step (delay 0).
    """

    epoch: int
    active: FrozenSet[int]
    move_delays: Mapping[int, int] = field(default_factory=dict)


class SchedulerModel(ABC):
    """Drives the engine's phase loop: maps engine steps to activations.

    The engine calls :meth:`next_activation` once per step with the
    *eligible* robots -- alive honest robots that are not mid-traversal
    (a robot executing a delayed Move is busy and cannot be activated
    again until it arrives).  Byzantine robots are scheduled by the
    engine itself (the adversary ignores the scheduler).
    """

    name: str = "abstract"

    @abstractmethod
    def next_activation(
        self, step: int, eligible: Sequence[int]
    ) -> Activation:
        """The activation executed at engine step ``step``.

        ``active`` must be a subset of ``eligible``; it may be empty only
        when ``eligible`` is (the engine additionally tolerates an empty
        activation while moves are still in flight).
        """

    @property
    def is_fully_synchronous(self) -> bool:
        """Whether every eligible robot is activated every step.

        When True the engine keeps records in the paper's plain FSYNC
        form (no activation timeline, no epochs) so fully-synchronous
        runs stay byte-identical to the pre-scheduler engine.
        """
        return False


class FsyncScheduler(SchedulerModel):
    """The paper's model: everyone, every step; epoch == step index."""

    name = "fsync"

    def next_activation(
        self, step: int, eligible: Sequence[int]
    ) -> Activation:
        return Activation(epoch=step, active=frozenset(eligible))

    @property
    def is_fully_synchronous(self) -> bool:
        return True


class SsyncScheduler(SchedulerModel):
    """Semi-synchronous: an activation policy picks who wakes each step.

    Absorbs the :class:`ActivationSchedule` classes as pluggable
    policies; epoch equals the step index (SSYNC shares the global round
    structure, only participation varies).
    """

    name = "ssync"

    def __init__(self, policy: ActivationSchedule) -> None:
        self._policy = policy

    @property
    def policy(self) -> ActivationSchedule:
        """The wrapped activation policy."""
        return self._policy

    def next_activation(
        self, step: int, eligible: Sequence[int]
    ) -> Activation:
        return Activation(
            epoch=step,
            active=frozenset(self._policy.active_robots(step, eligible)),
        )

    @property
    def is_fully_synchronous(self) -> bool:
        return self._policy.is_synchronous


ASYNC_DISTRIBUTIONS: Tuple[str, ...] = ("uniform", "geometric", "biased")
"""Supported inter-activation delay distributions for ASYNC runs."""


class AsyncScheduler(SchedulerModel):
    """Deterministic event-queue LCM scheduler on an integer clock.

    Every robot carries its own next-activation event; each engine step
    fires the earliest pending batch (ties activate together, smallest
    IDs first in the engine's compute order) and reschedules the fired
    robots by a freshly drawn delay.  All randomness is derandomized by
    hashing ``(seed, robot, activation_count)``, so a run is a pure
    function of its seed -- replaying it is bit-identical.

    Delay distributions (``1 <= delay <= max_delay`` always):

    * ``uniform`` -- uniform on ``{1, ..., max_delay}``;
    * ``geometric`` -- geometric with success probability ``p``, capped
      at ``max_delay`` (bursty: mostly short delays, occasional long);
    * ``biased`` -- the adversarial schedule: robots listed in
      ``laggards`` always draw ``max_delay`` while everyone else draws
      uniformly from the fast half -- a bounded starvation adversary.

    ``move_max_delay > 0`` additionally makes the Move phase itself take
    a uniform 1..move_max_delay steps: the robot commits to its edge at
    decision time but occupies its origin node until the arrival step
    (in transit, it is not eligible for activation).
    """

    name = "async"

    def __init__(
        self,
        *,
        seed: int = 0,
        distribution: str = "uniform",
        max_delay: int = 4,
        p: float = 0.5,
        move_max_delay: int = 0,
        laggards: Sequence[int] = (),
    ) -> None:
        if distribution not in ASYNC_DISTRIBUTIONS:
            raise ValueError(
                f"unknown delay distribution {distribution!r}; expected one "
                f"of {ASYNC_DISTRIBUTIONS}"
            )
        if max_delay < 1:
            raise ValueError("max_delay must be >= 1")
        if not 0.0 < p < 1.0:
            raise ValueError(f"geometric p must be in (0, 1), got {p}")
        if move_max_delay < 0:
            raise ValueError("move_max_delay must be >= 0")
        self._seed = seed
        self._distribution = distribution
        self._max_delay = max_delay
        self._p = p
        self._move_max_delay = move_max_delay
        self._laggards = frozenset(laggards)
        self._clock = 0
        self._next_event: Dict[int, int] = {}
        self._fired: Dict[int, int] = {}

    @property
    def clock(self) -> int:
        """Logical time of the most recent activation (0 before any)."""
        return self._clock

    def _delay(self, robot_id: int, count: int) -> int:
        u = _unit_interval(self._seed, "act", robot_id, count)
        if self._distribution == "geometric":
            trials = 1 + int(math.log(1.0 - u) / math.log(1.0 - self._p))
            return min(self._max_delay, trials)
        if self._distribution == "biased":
            if robot_id in self._laggards:
                return self._max_delay
            return 1 + int(u * max(1, self._max_delay // 2))
        return 1 + int(u * self._max_delay)

    def _move_delay(self, robot_id: int, count: int) -> int:
        if self._move_max_delay == 0:
            return 0
        u = _unit_interval(self._seed, "move", robot_id, count)
        return 1 + int(u * self._move_max_delay)

    def next_activation(
        self, step: int, eligible: Sequence[int]
    ) -> Activation:
        eligible = sorted(eligible)
        if not eligible:
            return Activation(epoch=self._clock, active=frozenset())
        for robot_id in eligible:
            if robot_id not in self._next_event:
                self._next_event[robot_id] = self._clock + self._delay(
                    robot_id, 0
                )
                self._fired[robot_id] = 1
        # A robot whose event time passed while it was ineligible (in
        # transit) fires as soon as it becomes eligible again; the clock
        # itself is strictly monotone.
        effective = {
            robot_id: max(self._next_event[robot_id], self._clock + 1)
            for robot_id in eligible
        }
        epoch = min(effective.values())
        batch = tuple(r for r in eligible if effective[r] == epoch)
        self._clock = epoch
        move_delays: Dict[int, int] = {}
        for robot_id in batch:
            count = self._fired[robot_id]
            self._next_event[robot_id] = epoch + self._delay(robot_id, count)
            self._fired[robot_id] = count + 1
            delay = self._move_delay(robot_id, count)
            if delay:
                move_delays[robot_id] = delay
        return Activation(
            epoch=epoch, active=frozenset(batch), move_delays=move_delays
        )
