"""Activation schedules: synchronous and semi-synchronous execution.

The paper's setting is fully synchronous -- every robot executes every CCM
round -- and its Section VIII lists semi-synchronous / asynchronous
settings as future work.  This module implements the scheduling layer for
that direction:

* :class:`FullActivation` -- the paper's model; every alive robot is
  active every round (the engine's default);
* :class:`RandomSubsetActivation` -- the classical SSYNC adversary
  surrogate: each alive robot is independently active with probability
  ``p`` (derandomized per (seed, round, robot)), with a guaranteed
  non-empty activation set;
* :class:`RoundRobinActivation` -- a deterministic SSYNC schedule
  activating robots whose ID matches the round modulo a window.

Semantics under partial activation: *presence is physical* -- inactive
robots still occupy their nodes and appear in everyone's information
packets (1-NK senses robots, not activity) -- but only active robots
compute and move.  Under these semantics the paper's Lemma 7 no longer
holds round-for-round (a sliding path can be executed partially, vacating
a node), which is exactly the degradation the E5 benchmark measures; with
random activation every configuration still has positive probability of a
fully-active round, so dispersion remains achieved with probability 1.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import FrozenSet, Sequence


class ActivationSchedule(ABC):
    """Decides which alive robots execute a given round."""

    @abstractmethod
    def active_robots(
        self, round_index: int, alive: Sequence[int]
    ) -> FrozenSet[int]:
        """The subset of ``alive`` robot IDs that are active this round.

        Must be a subset of ``alive`` and non-empty whenever ``alive`` is
        (an all-asleep round would be indistinguishable from a stutter and
        only inflates round counts).
        """

    @property
    def is_synchronous(self) -> bool:
        """Whether this schedule activates everyone every round."""
        return False


class FullActivation(ActivationSchedule):
    """The paper's synchronous setting: everyone, every round."""

    def active_robots(
        self, round_index: int, alive: Sequence[int]
    ) -> FrozenSet[int]:
        return frozenset(alive)

    @property
    def is_synchronous(self) -> bool:
        return True


class RandomSubsetActivation(ActivationSchedule):
    """Each alive robot is active with probability ``p``, independently.

    Derandomized by hashing (seed, round, robot) so runs are reproducible.
    If the sampled set comes out empty, the smallest alive robot is
    activated (the scheduler must be fair enough to keep time moving).
    """

    def __init__(self, p: float, *, seed: int = 0) -> None:
        if not 0.0 < p <= 1.0:
            raise ValueError(f"activation probability must be in (0, 1], got {p}")
        self._p = p
        self._seed = seed

    @property
    def p(self) -> float:
        """The per-robot activation probability."""
        return self._p

    def _coin(self, round_index: int, robot_id: int) -> float:
        digest = hashlib.sha256(
            f"{self._seed}:{round_index}:{robot_id}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def active_robots(
        self, round_index: int, alive: Sequence[int]
    ) -> FrozenSet[int]:
        chosen = {
            robot_id
            for robot_id in alive
            if self._coin(round_index, robot_id) < self._p
        }
        if not chosen and alive:
            chosen = {min(alive)}
        return frozenset(chosen)


class RoundRobinActivation(ActivationSchedule):
    """Deterministic SSYNC: robot ``i`` is active when
    ``i % window == round % window`` (plus everyone every ``window``-th
    round so multi-robot coordination is periodically possible)."""

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self._window = window

    def active_robots(
        self, round_index: int, alive: Sequence[int]
    ) -> FrozenSet[int]:
        if self._window == 1 or round_index % self._window == 0:
            return frozenset(alive)
        phase = round_index % self._window
        chosen = frozenset(
            robot_id for robot_id in alive if robot_id % self._window == phase
        )
        if not chosen and alive:
            chosen = frozenset({min(alive)})
        return chosen
