"""Robot-visible observations: information packets and local views.

This module implements the paper's Communicate phase.  Everything a robot
can learn in a round is packaged here, and *only* here, so the information
model is auditable in one place:

* **Anonymity** -- no packet or observation ever contains a ground-truth
  node index.  Occupied nodes are referred to by the smallest robot ID
  positioned on them (the *representative*), exactly as in the paper's
  component construction (Observation 1: every component node has a unique
  ID because a robot on it supplies one).
* **1-neighborhood knowledge** (when enabled) -- a robot at ``v`` learns,
  for each neighbor of ``v`` in ``G_r``: whether it is occupied, the IDs of
  the robots on it, their count, and the port of ``v`` leading to it.
  Unoccupied neighbors are visible only as "an empty port".
* **Global communication** (when enabled) -- the per-node
  :class:`InfoPacket` of every occupied node is delivered to every robot.
  Under local communication a robot receives only its own node's packet
  (co-located robots can always exchange everything).

The quadruple of the paper, ``InfoPacket_r(v_i) = {a_i, count(a_i),
N_r^occupied(v_i), P_r^occupied(v_i)}``, maps to :class:`InfoPacket` fields
one-to-one, extended with the degree of the node (a robot trivially knows
its own node's ports ``1..delta_r(v)``) and the full co-located ID list
(needed to pick movers deterministically).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.graph.snapshot import GraphSnapshot


class CommunicationModel(enum.Enum):
    """Who a robot can talk to during the Communicate phase."""

    GLOBAL = "global"
    LOCAL = "local"


#: Which communication model each :class:`Observation` member needs.
#:
#: ``"local"`` members are meaningful under both models; ``"global"``
#: members only carry more than the robot's own node under global
#: communication, so an algorithm declaring
#: ``requires_communication = CommunicationModel.LOCAL`` must not read
#: them -- doing so silently bakes a global-information assumption into a
#: local-model algorithm (the split Theorems 1-2 make load-bearing).
#: ``repro lint --robot-model`` (rule A003) enforces this statically for
#: every algorithm class; the table lives here, next to the governed
#: dataclass, so adding an ``Observation`` member forces a scope decision
#: (the lint tier's completeness test fails on any member missing here).
OBSERVATION_FIELD_SCOPES: Dict[str, str] = {
    "robot_id": "local",
    "round_index": "local",
    "own_packet": "local",
    "neighborhood_knowledge": "local",
    "entry_port": "local",
    "packets": "global",
    "packet_index": "global",
    "sees_multiplicity": "global",
}


@dataclass(frozen=True)
class NeighborInfo:
    """What 1-neighborhood knowledge reveals about one occupied neighbor."""

    port: int
    """Port of the observing node leading to this neighbor."""

    representative_id: int
    """Smallest robot ID on the neighbor node."""

    robot_count: int
    """Number of robots on the neighbor node (multiplicity)."""

    robot_ids: Tuple[int, ...]
    """All robot IDs on the neighbor node, sorted ascending."""

    def __post_init__(self) -> None:
        if self.robot_count != len(self.robot_ids):
            raise ValueError("robot_count must match robot_ids")
        if self.robot_ids and self.representative_id != min(self.robot_ids):
            raise ValueError("representative must be the smallest ID")


@dataclass(frozen=True)
class InfoPacket:
    """The per-occupied-node broadcast of the paper's Communicate phase."""

    representative_id: int
    """Smallest robot ID on the sender node (``a_i`` in the paper)."""

    robot_ids: Tuple[int, ...]
    """All robot IDs on the sender node, sorted ascending."""

    degree: int
    """``delta_r(v)``: the sender node's degree, i.e. its ports are 1..degree."""

    occupied_neighbors: Tuple[NeighborInfo, ...]
    """1-NK view of the occupied neighbors, sorted by port.

    Empty when the run disables 1-neighborhood knowledge: the packet then
    carries only who is here and how many ports exist.
    """

    @property
    def robot_count(self) -> int:
        """``count(a_i)``: multiplicity of the sender node."""
        return len(self.robot_ids)

    @property
    def is_multiplicity(self) -> bool:
        """Whether the sender node holds two or more robots."""
        return len(self.robot_ids) >= 2

    @property
    def occupied_ports(self) -> Tuple[int, ...]:
        """``P_r^occupied(v)``: ports leading to occupied neighbors."""
        return tuple(info.port for info in self.occupied_neighbors)

    @property
    def empty_ports(self) -> Tuple[int, ...]:
        """Ports of the sender node leading to *unoccupied* neighbors.

        Derived: a robot knows all its ports ``1..degree`` and, with 1-NK,
        which of them lead to occupied nodes; the rest are empty.
        """
        occupied = set(self.occupied_ports)
        return tuple(p for p in range(1, self.degree + 1) if p not in occupied)

    @property
    def smallest_empty_port(self) -> Optional[int]:
        """The smallest port towards an empty neighbor, if any."""
        empty = self.empty_ports
        return empty[0] if empty else None

    def neighbor_by_port(self, port: int) -> Optional[NeighborInfo]:
        """The occupied-neighbor record behind ``port``, if occupied."""
        for info in self.occupied_neighbors:
            if info.port == port:
                return info
        return None


@dataclass(frozen=True)
class Observation:
    """Everything one robot sees in one round's Communicate phase."""

    robot_id: int
    round_index: int
    own_packet: InfoPacket
    """The packet of the robot's own node (always available: a robot knows
    its node's degree, its co-located robots, and -- with 1-NK -- its
    occupied neighbors)."""

    packets: Tuple[InfoPacket, ...]
    """All packets received: every occupied node's packet under global
    communication, only ``own_packet`` under local communication.  Sorted
    by representative ID."""

    neighborhood_knowledge: bool
    """Whether 1-NK was available (occupied_neighbors fields populated)."""

    entry_port: Optional[int]
    """Port of the current node through which the robot entered it on its
    most recent move, or None if it has not moved yet.  (The paper grants
    this: a moving robot learns both exit and entry ports.)  Note that on a
    dynamic graph a past entry port is generally stale -- ports carry no
    cross-round meaning -- but static-graph baselines rely on it."""

    @property
    def packet_index(self) -> Dict[int, InfoPacket]:
        """Packets keyed by representative ID."""
        return {p.representative_id: p for p in self.packets}

    @property
    def sees_multiplicity(self) -> bool:
        """Whether any received packet reports a multiplicity node."""
        return any(p.is_multiplicity for p in self.packets)


def build_info_packets(
    snapshot: GraphSnapshot,
    positions: Mapping[int, int],
    *,
    neighborhood_knowledge: bool = True,
) -> Dict[int, InfoPacket]:
    """Build the packet of every occupied node, keyed by ground-truth node.

    ``positions`` maps alive robot id -> node.  The returned dict is keyed
    by node index for the *engine's* convenience; the packets themselves
    contain no node indices and are what robots receive.
    """
    ids_at_node: Dict[int, List[int]] = {}
    for robot_id, node in positions.items():
        ids_at_node.setdefault(node, []).append(robot_id)
    for ids in ids_at_node.values():
        ids.sort()

    packets: Dict[int, InfoPacket] = {}
    for node, ids in ids_at_node.items():
        neighbor_infos: List[NeighborInfo] = []
        if neighborhood_knowledge:
            for port in snapshot.ports(node):
                neighbor = snapshot.neighbor_via(node, port)
                neighbor_ids = ids_at_node.get(neighbor)
                if neighbor_ids:
                    neighbor_infos.append(
                        NeighborInfo(
                            port=port,
                            representative_id=neighbor_ids[0],
                            robot_count=len(neighbor_ids),
                            robot_ids=tuple(neighbor_ids),
                        )
                    )
        packets[node] = InfoPacket(
            representative_id=ids[0],
            robot_ids=tuple(ids),
            degree=snapshot.degree(node),
            occupied_neighbors=tuple(neighbor_infos),
        )
    return packets


def observations_from_packets(
    packets_by_node: Mapping[int, InfoPacket],
    positions: Mapping[int, int],
    round_index: int,
    *,
    communication: CommunicationModel = CommunicationModel.GLOBAL,
    neighborhood_knowledge: bool = True,
    entry_ports: Optional[Mapping[int, int]] = None,
) -> Dict[int, Observation]:
    """Deliver an already-built (possibly forged) packet set to the robots.

    The lower half of the Communicate phase, split out so the byzantine
    fault model can interpose packet forgery between construction and
    delivery.  ``packets_by_node`` is keyed by ground-truth node (engine
    bookkeeping); the delivered observations contain no node indices.
    """
    all_packets = tuple(
        sorted(packets_by_node.values(), key=lambda p: p.representative_id)
    )
    entry_ports = entry_ports or {}

    observations: Dict[int, Observation] = {}
    for robot_id, node in positions.items():
        own = packets_by_node[node]
        received = (
            all_packets
            if communication is CommunicationModel.GLOBAL
            else (own,)
        )
        observations[robot_id] = Observation(
            robot_id=robot_id,
            round_index=round_index,
            own_packet=own,
            packets=received,
            neighborhood_knowledge=neighborhood_knowledge,
            entry_port=entry_ports.get(robot_id),
        )
    return observations


def build_observations(
    snapshot: GraphSnapshot,
    positions: Mapping[int, int],
    round_index: int,
    *,
    communication: CommunicationModel = CommunicationModel.GLOBAL,
    neighborhood_knowledge: bool = True,
    entry_ports: Optional[Mapping[int, int]] = None,
) -> Dict[int, Observation]:
    """Build the Observation of every alive robot for this round."""
    packets_by_node = build_info_packets(
        snapshot, positions, neighborhood_knowledge=neighborhood_knowledge
    )
    return observations_from_packets(
        packets_by_node,
        positions,
        round_index,
        communication=communication,
        neighborhood_knowledge=neighborhood_knowledge,
        entry_ports=entry_ports,
    )
