"""Run records and metrics collected by the engine.

The two performance metrics of the paper are rounds-to-dispersion and
persistent bits per robot; the engine additionally records per-round
snapshots of the configuration (positions, occupied set, moves, crashes)
so tests can check the progress lemmas (e.g. Lemma 7: the occupied set
grows by at least one node per round in fault-free runs) and examples can
render traces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.graph.snapshot import GraphSnapshot


class TerminationReason(enum.Enum):
    """Why a run ended."""

    DISPERSED = "dispersed"
    """Ground truth reached a configuration with no multiplicity node
    (among alive robots)."""

    ALREADY_DISPERSED = "already_dispersed"
    """The initial configuration was already dispersed; zero rounds run."""

    ROUND_LIMIT = "round_limit"
    """The max_rounds cap was hit before dispersion -- for a correct
    algorithm on a legal instance this indicates a failure (or an
    impossibility demonstration doing its job)."""

    ALL_CRASHED = "all_crashed"
    """Every robot crashed; dispersion is vacuous."""


@dataclass(frozen=True)
class RoundRecord:
    """Ground-truth record of one executed round."""

    round_index: int
    positions_before: Dict[int, int]
    """Alive robot -> node at the start of the round (after
    before-communicate crashes)."""

    positions_after: Dict[int, int]
    """Alive robot -> node at the end of the round."""

    moved_robots: Tuple[int, ...]
    """Robots that changed node this round, sorted."""

    crashed_before_communicate: Tuple[int, ...]
    crashed_after_compute: Tuple[int, ...]

    occupied_before: FrozenSet[int]
    occupied_after: FrozenSet[int]

    num_components: int
    """Number of connected components of the occupied subgraph (ground
    truth), measured at Communicate time."""

    max_persistent_bits: int
    """Largest per-robot persistent memory measured this round."""

    snapshot: Optional["GraphSnapshot"] = None
    """The round's graph ``G_r``; populated only when the engine runs with
    ``collect_snapshots=True`` (used by post-hoc invariant verification)."""

    epoch: Optional[int] = None
    """Logical time of this step under a non-fully-synchronous scheduler
    model (the step index under SSYNC, the event-queue clock under
    ASYNC).  ``None`` in FSYNC runs, whose records keep the paper's
    plain form."""

    activated_robots: Optional[Tuple[int, ...]] = None
    """Robots activated this step (sorted), recorded only under a
    non-fully-synchronous scheduler model; ``None`` in FSYNC runs."""

    @property
    def newly_occupied(self) -> FrozenSet[int]:
        """Nodes occupied at round end that were empty at round start."""
        return self.occupied_after - self.occupied_before

    @property
    def num_moves(self) -> int:
        """Number of robots that traversed an edge this round."""
        return len(self.moved_robots)


@dataclass
class RunResult:
    """Complete outcome of one simulated run."""

    reason: TerminationReason
    rounds: int
    """Number of executed rounds (rounds in which the CCM loop ran)."""

    k: int
    n: int
    initial_occupied: int
    """Number of distinct nodes occupied at round 0 (alpha_0)."""

    final_positions: Dict[int, int]
    """Alive robot -> node at termination."""

    crashed_robots: Tuple[int, ...]
    byzantine_robots: Tuple[int, ...]
    total_moves: int
    max_persistent_bits: int
    """Peak persistent memory of any robot over the whole run."""

    total_packets_broadcast: int = 0
    """Sum over rounds of the packets sent (one per occupied node): the
    paper's Communicate phase has every occupied node broadcast once."""

    total_packet_deliveries: int = 0
    """Sum over rounds of packet receptions: under global communication
    every alive robot receives every broadcast (alpha * k' per round);
    under local communication only co-located robots do."""

    records: List[RoundRecord] = field(default_factory=list)
    algorithm_detected_termination: bool = False
    """Whether the robots themselves detected completion (vs. only the
    engine's ground-truth stop)."""

    final_epoch: Optional[int] = None
    """Logical time of the last executed step under a
    non-fully-synchronous scheduler model; ``None`` in FSYNC runs
    (where logical time and the round counter coincide)."""

    def activation_timeline(self) -> List[Tuple[int, Tuple[int, ...]]]:
        """Per-step ``(epoch, activated robots)`` pairs, oldest first.

        Empty for FSYNC runs (every robot is active every round) and for
        runs executed with ``collect_records=False``.
        """
        return [
            (r.epoch, r.activated_robots)
            for r in self.records
            if r.epoch is not None and r.activated_robots is not None
        ]

    @property
    def dispersed(self) -> bool:
        """Whether the run ended in a dispersion configuration."""
        return self.reason in (
            TerminationReason.DISPERSED,
            TerminationReason.ALREADY_DISPERSED,
        )

    @property
    def alive_count(self) -> int:
        """Robots alive at termination."""
        return len(self.final_positions)

    def occupied_trajectory(self) -> List[int]:
        """|occupied| at the start of each round, plus the final value.

        For a fault-free run of the paper's algorithm this sequence is
        strictly increasing by at least 1 per round (Lemma 7).
        """
        if not self.records:
            return [self.initial_occupied]
        sizes = [len(r.occupied_before) for r in self.records]
        sizes.append(len(self.records[-1].occupied_after))
        return sizes

    def progress_per_round(self) -> List[int]:
        """Newly-occupied-node count of each executed round."""
        return [len(r.newly_occupied) for r in self.records]

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.reason.value}: k={self.k} n={self.n} "
            f"rounds={self.rounds} moves={self.total_moves} "
            f"mem={self.max_persistent_bits}b "
            f"alive={self.alive_count}/{self.k}"
        )
