"""Per-round phase instrumentation hooks for the simulation engine.

The engine's CCM loop exposes six instrumentation points -- run start,
round start, after Communicate, after Compute, after Move, round end --
plus run end.  Anything that used to be inlined engine code (metrics
collection, live narration, invariant monitoring, trace capture) is now an
:class:`EngineObserver` attached via ``SimulationEngine(observers=[...])``:
the engine *drives*, observers *watch*.  Observers never mutate the run;
every payload they receive is either a copy or documented read-only.

Provided observers:

* :class:`TraceCollector` -- accumulates the per-round
  :class:`~repro.sim.metrics.RoundRecord` s (the engine itself uses one
  internally when ``collect_records=True``);
* :class:`CallbackObserver` -- adapts a plain ``callable(record)`` (the
  legacy ``round_observers`` engine parameter) onto the observer API;
* :class:`ProgressNarrator` -- prints a one-line live summary per round
  (what ``repro-dispersion run --live`` shows);
* :class:`PhaseTimer` -- wall-clock accounting per CCM phase, for finding
  out where a run actually spends its time;
* :class:`LiveInvariantChecker` -- checks the Lemma 7 shape (monotone
  occupancy, per-round progress) *as the run executes*, so large sweeps
  can keep ``collect_records=False`` and still assert the invariants.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Mapping, Optional, TextIO, Tuple

from repro.sim.metrics import RoundRecord, RunResult


class EngineObserver:
    """Base class for phase observers: every hook defaults to a no-op.

    Subclass and override only the phases of interest.  Hooks fire in the
    order ``on_run_start``, then per executed round ``on_round_start`` ->
    ``on_communicate`` -> ``on_compute`` -> ``on_move`` -> ``on_round_end``,
    and finally ``on_run_end``.  On the final (termination-detection)
    round only ``on_round_start`` and ``on_communicate`` fire: the engine
    stops before Compute once the configuration is dispersed.
    """

    def on_run_start(self, k: int, n: int) -> None:
        """Called once before round 0."""

    def on_round_start(self, round_index: int, snapshot) -> None:
        """Called with the validated graph ``G_r`` of the round."""

    def on_communicate(self, round_index: int, observations: Mapping) -> None:
        """Called after packet delivery; ``observations`` maps alive robot
        id -> :class:`~repro.sim.observation.Observation` (read-only)."""

    def on_compute(self, round_index: int, decisions: Mapping) -> None:
        """Called after all decisions are collected, before any is applied;
        ``decisions`` maps active robot id -> Decision (read-only)."""

    def on_move(
        self, round_index: int, moved: Tuple[int, ...], positions: Dict[int, int]
    ) -> None:
        """Called after simultaneous move application; ``positions`` is a
        copy of the post-move alive robot -> node mapping."""

    def on_round_end(self, record: RoundRecord) -> None:
        """Called with the completed round's ground-truth record."""

    def on_run_end(self, result: RunResult) -> None:
        """Called once with the final :class:`RunResult`."""


class CallbackObserver(EngineObserver):
    """Adapter: a plain ``callable(RoundRecord)`` as an observer.

    This is how the engine's legacy ``round_observers`` parameter is
    carried on the new hook layer unchanged.
    """

    def __init__(self, callback: Callable[[RoundRecord], None]) -> None:
        self._callback = callback

    def on_round_end(self, record: RoundRecord) -> None:
        """Forward the record to the wrapped callable."""
        self._callback(record)


class TraceCollector(EngineObserver):
    """Accumulates every :class:`RoundRecord` of a run, in order."""

    def __init__(self) -> None:
        self.records: List[RoundRecord] = []

    def on_run_start(self, k: int, n: int) -> None:
        """Reset so a collector can be reused across runs."""
        self.records = []

    def on_round_end(self, record: RoundRecord) -> None:
        """Store the completed round."""
        self.records.append(record)


class ProgressNarrator(EngineObserver):
    """Prints one line per executed round (the CLI's ``--live`` view)."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self._stream = stream

    def on_round_end(self, record: RoundRecord) -> None:
        """Print the round's occupancy delta and move count."""
        print(
            f"round {record.round_index:>3}: occupied "
            f"{len(record.occupied_before):>3} -> "
            f"{len(record.occupied_after):>3}, moves {record.num_moves}",
            file=self._stream,
        )


class PhaseTimer(EngineObserver):
    """Wall-clock accounting of the engine's phases.

    ``totals`` maps phase name (``"adversary"``, ``"communicate"``,
    ``"compute"``, ``"move"``, ``"bookkeeping"``) to accumulated seconds.
    The adversary bucket covers snapshot generation + validation (round
    start up to the Communicate hook's predecessor); bookkeeping covers
    record construction after Move.
    """

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {
            "adversary": 0.0,
            "communicate": 0.0,
            "compute": 0.0,
            "move": 0.0,
            "bookkeeping": 0.0,
        }
        self.rounds = 0
        self._t_run = 0.0
        self._t_last = 0.0

    def _lap(self, bucket: str) -> None:
        now = time.perf_counter()
        self.totals[bucket] += now - self._t_last
        self._t_last = now

    def on_run_start(self, k: int, n: int) -> None:
        """Start the clock."""
        self._t_run = self._t_last = time.perf_counter()

    def on_round_start(self, round_index: int, snapshot) -> None:
        """Charge time since the previous hook to adversary/generation."""
        self._lap("adversary")

    def on_communicate(self, round_index: int, observations: Mapping) -> None:
        """Charge the Communicate phase."""
        self._lap("communicate")

    def on_compute(self, round_index: int, decisions: Mapping) -> None:
        """Charge the Compute phase."""
        self._lap("compute")

    def on_move(self, round_index, moved, positions) -> None:
        """Charge the Move phase."""
        self._lap("move")

    def on_round_end(self, record: RoundRecord) -> None:
        """Charge record construction and count the round."""
        self._lap("bookkeeping")
        self.rounds += 1

    @property
    def total_seconds(self) -> float:
        """Seconds across all buckets measured so far."""
        return sum(self.totals.values())

    def summary(self) -> str:
        """One line: per-phase totals in milliseconds."""
        parts = ", ".join(
            f"{name} {seconds * 1e3:.1f}ms"
            for name, seconds in self.totals.items()
        )
        return f"{self.rounds} rounds: {parts}"


class LiveInvariantChecker(EngineObserver):
    """Checks the Lemma 7 shape round by round, without stored records.

    Collects human-readable violation strings in :attr:`violations`
    (mirroring :func:`repro.sim.invariants.check_occupied_monotone` and
    :func:`~repro.sim.invariants.check_progress_every_round`, but live) so
    large sweeps can run ``collect_records=False`` and still assert the
    paper's progress guarantee.  Only meaningful for fault-free runs of
    the canonical algorithm.
    """

    def __init__(self) -> None:
        self.violations: List[str] = []

    def on_run_start(self, k: int, n: int) -> None:
        """Reset so a checker can be reused across runs."""
        self.violations = []

    def on_round_end(self, record: RoundRecord) -> None:
        """Check monotone occupancy and per-round progress."""
        lost = record.occupied_before - record.occupied_after
        if lost:
            self.violations.append(
                f"round {record.round_index}: occupied nodes "
                f"{sorted(lost)} were vacated"
            )
        if not record.newly_occupied:
            self.violations.append(
                f"round {record.round_index}: no newly occupied node"
            )

    @property
    def clean(self) -> bool:
        """Whether no violation has been observed."""
        return not self.violations
