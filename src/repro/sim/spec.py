"""Declarative, serializable run specifications.

A :class:`RunSpec` is pure data: it names every ingredient of one
simulation run -- the dynamic-graph factory and its parameters, the
initial placement, the algorithm, the communication/sensing model, crash
and byzantine schedules, the scheduler model / activation schedule, the
master seed and the engine knobs -- without holding any live object.  That buys three things
at once:

* **reconstruction** -- ``execute(spec)`` builds the exact engine the ~10
  scattered ``SimulationEngine`` kwargs used to describe, so a run is one
  JSON-able value instead of a page of imperative setup;
* **transport** -- specs pickle and JSON round-trip
  (:meth:`RunSpec.to_dict` / :meth:`RunSpec.from_dict`), which is what
  lets :class:`~repro.sim.runner.ProcessPoolRunner` fan a grid of specs
  out across worker processes;
* **determinism** -- every stochastic component (graph churn, arbitrary
  placements, random crash schedules) draws from an RNG derived from the
  spec's ``seed``, so the same spec always produces the same
  :class:`~repro.sim.metrics.RunResult`, in any process.

Factories are looked up by name in extensible registries
(:func:`register_graph`, :func:`register_algorithm`,
:func:`register_byzantine`, :func:`register_activation`,
:func:`register_scheduler`); the library's
own graph processes, algorithms, ablation variants, baselines and attack
policies are pre-registered lazily on first resolution, so downstream
code can add its own without import-order gymnastics.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.robots.faults import CrashEvent, CrashPhase, CrashSchedule
from repro.robots.robot import RobotSet
from repro.sim.observation import CommunicationModel

SPEC_FORMAT_VERSION = 1

#: The code-version salt mixed into every :func:`spec_digest`.  It names
#: the *run semantics* of this tree: bump the trailing revision whenever a
#: change alters what :func:`execute` returns for an unchanged spec (RNG
#: streams, tie-breaks, metrics), so persisted results keyed under the old
#: salt become unreachable instead of silently stale.
CODE_VERSION_SALT = f"spec{SPEC_FORMAT_VERSION}:results1"

#: The digest-stability contract, machine-checked by ``repro lint
#: --effects`` (rules S001/S002 in :mod:`repro.lint.deep.contracts`).
#: Per spec class: the fields whose keys every format-v1 document
#: already carries.  A *new* defaulted field must be emitted behind an
#: ``if self.<field> ...`` guard in ``to_dict`` so pre-existing specs --
#: and their content digests, hence the entire run store -- stay
#: byte-identical; emitting one unconditionally is exactly the drift
#: the hand audits of earlier releases existed to catch.  Growing a
#: set below is a format-version event, not a convenience.
SPEC_BASELINE_FIELDS: Mapping[str, FrozenSet[str]] = {
    "RunSpec": frozenset(
        {
            "graph",
            "placement",
            "algorithm",
            "communication",
            "neighborhood_knowledge",
            "seed",
            "collect_records",
            "collect_snapshots",
            "validate_graphs",
            "allow_model_mismatch",
        }
    ),
    "ComponentSpec": frozenset({"name", "params"}),
    "PlacementSpec": frozenset({"kind", "k", "root"}),
    "CrashSpec": frozenset({"kind", "events", "f", "max_round"}),
}

#: Fields excluded from digest material by design (display-only).
#: :func:`canonical_spec_json` strips them before hashing, so the
#: S-rules do not hold them to the omitted-when-default bar.
DIGEST_EXEMPT_FIELDS: Mapping[str, FrozenSet[str]] = {
    "RunSpec": frozenset({"label"}),
}


class SpecError(ValueError):
    """A run specification references an unknown component or bad value."""


# ----------------------------------------------------------------------
# Component registries
# ----------------------------------------------------------------------

_GRAPH_FACTORIES: Dict[str, Callable] = {}
_ALGORITHM_FACTORIES: Dict[str, Callable] = {}
_BYZANTINE_FACTORIES: Dict[str, Callable] = {}
_ACTIVATION_FACTORIES: Dict[str, Callable] = {}
_SCHEDULER_FACTORIES: Dict[str, Callable] = {}
_BACKEND_FACTORIES: Dict[str, Callable] = {}
_DEFAULTS_LOADED = False


def register_graph(name: str, factory: Optional[Callable] = None) -> Callable:
    """Register ``factory(params, ctx) -> DynamicGraph`` under ``name``.

    ``params`` is the spec's parameter mapping; ``ctx`` is a
    :class:`GraphBuildContext` carrying the derived seed, the already-built
    algorithm (adaptive adversaries probe it) and the run's information
    model.  Usable as a decorator (``@register_graph("my_process")``).
    """
    if factory is None:
        return lambda fn: register_graph(name, fn)
    _GRAPH_FACTORIES[name] = factory
    return factory


def register_algorithm(name: str, factory: Optional[Callable] = None) -> Callable:
    """Register ``factory(params) -> RobotAlgorithm`` under ``name``."""
    if factory is None:
        return lambda fn: register_algorithm(name, fn)
    _ALGORITHM_FACTORIES[name] = factory
    return factory


def register_byzantine(name: str, factory: Optional[Callable] = None) -> Callable:
    """Register ``factory(params) -> ByzantinePolicy`` under ``name``."""
    if factory is None:
        return lambda fn: register_byzantine(name, fn)
    _BYZANTINE_FACTORIES[name] = factory
    return factory


def register_scheduler(name: str, factory: Optional[Callable] = None) -> Callable:
    """Register a scheduler-model factory ``params -> SchedulerModel``."""
    if factory is None:
        return lambda fn: register_scheduler(name, fn)
    _SCHEDULER_FACTORIES[name] = factory
    return factory


def register_activation(name: str, factory: Optional[Callable] = None) -> Callable:
    """Register ``factory(params) -> ActivationSchedule`` under ``name``."""
    if factory is None:
        return lambda fn: register_activation(name, fn)
    _ACTIVATION_FACTORIES[name] = factory
    return factory


def register_backend(name: str, factory: Optional[Callable] = None) -> Callable:
    """Register an engine-backend factory ``params -> EngineBackend``.

    Backends execute the engine's phase primitives (see
    :mod:`repro.sim.backend`); ``RunSpec(backend=ComponentSpec(name))``
    or ``cli run --backend name`` selects one per run.  Usable as a
    decorator (``@register_backend("my_backend")``).
    """
    if factory is None:
        return lambda fn: register_backend(name, fn)
    _BACKEND_FACTORIES[name] = factory
    return factory


def registered_components() -> Dict[str, List[str]]:
    """The names currently resolvable, by registry kind."""
    _load_default_components()
    return {
        "graph": sorted(_GRAPH_FACTORIES),
        "algorithm": sorted(_ALGORITHM_FACTORIES),
        "byzantine": sorted(_BYZANTINE_FACTORIES),
        "activation": sorted(_ACTIVATION_FACTORIES),
        "scheduler": sorted(_SCHEDULER_FACTORIES),
        "backend": sorted(_BACKEND_FACTORIES),
    }


def _lookup(registry: Dict[str, Callable], kind: str, name: str) -> Callable:
    _load_default_components()
    try:
        return registry[name]
    except KeyError:
        raise SpecError(
            f"unknown {kind} component {name!r}; known: {sorted(registry)}"
        ) from None


# ----------------------------------------------------------------------
# Spec dataclasses
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ComponentSpec:
    """A named, parameterized component: registry ``name`` + ``params``."""

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-serializable given plain params)."""
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ComponentSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(name=data["name"], params=dict(data.get("params", {})))


@dataclass(frozen=True)
class PlacementSpec:
    """The initial robot placement, declaratively.

    ``kind`` is one of:

    * ``"rooted"`` -- all ``k`` robots on node ``root`` (default 0);
    * ``"arbitrary"`` -- the paper's arbitrary initial configuration,
      sampled from the spec seed (``num_occupied`` optionally pins the
      number of initially occupied nodes);
    * ``"explicit"`` -- a literal ``{robot_id: node}`` mapping.
    """

    kind: str = "rooted"
    k: int = 0
    root: int = 0
    num_occupied: Optional[int] = None
    positions: Optional[Mapping[int, int]] = None

    def __post_init__(self) -> None:
        if self.kind not in ("rooted", "arbitrary", "explicit"):
            raise SpecError(
                f"unknown placement kind {self.kind!r}; expected rooted, "
                "arbitrary or explicit"
            )
        if self.kind == "explicit":
            if not self.positions:
                raise SpecError("explicit placement needs a positions mapping")
            # Canonicalize: k is derived, so direct construction and
            # from_dict() produce equal specs.
            object.__setattr__(self, "k", len(self.positions))
        elif self.k < 1:
            raise SpecError(f"placement needs k >= 1, got k={self.k}")

    def build(self, n: int, seed: int) -> RobotSet:
        """Materialize the placement for an ``n``-node graph."""
        if self.kind == "rooted":
            return RobotSet.rooted(self.k, n, root=self.root)
        if self.kind == "arbitrary":
            return RobotSet.arbitrary(
                self.k, n, random.Random(seed),
                num_occupied=self.num_occupied,
            )
        assert self.positions is not None
        return RobotSet({int(r): v for r, v in self.positions.items()}, n)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (robot ids stringified for JSON)."""
        data: Dict[str, Any] = {"kind": self.kind}
        if self.kind == "explicit":
            assert self.positions is not None
            data["positions"] = {
                str(r): v for r, v in self.positions.items()
            }
        else:
            data["k"] = self.k
            if self.kind == "rooted":
                data["root"] = self.root
            if self.kind == "arbitrary" and self.num_occupied is not None:
                data["num_occupied"] = self.num_occupied
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlacementSpec":
        """Inverse of :meth:`to_dict`."""
        positions = data.get("positions")
        if positions is not None:
            positions = {int(r): v for r, v in positions.items()}
        return cls(
            kind=data.get("kind", "rooted"),
            k=int(data.get("k", len(positions or {}))),
            root=int(data.get("root", 0)),
            num_occupied=data.get("num_occupied"),
            positions=positions,
        )


@dataclass(frozen=True)
class CrashSpec:
    """A crash-fault schedule, declaratively.

    ``kind="events"`` lists explicit ``(robot, round, phase)`` triples;
    ``kind="random"`` draws ``f`` victims uniformly in ``[0, max_round]``
    from an RNG derived from the run seed and the victim count, matching
    :meth:`repro.robots.faults.CrashSchedule.random_schedule`.
    """

    kind: str = "events"
    events: Tuple[Tuple[int, int, str], ...] = ()
    f: int = 0
    max_round: int = 0
    phases: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in ("events", "random"):
            raise SpecError(
                f"unknown crash kind {self.kind!r}; expected events or random"
            )

    def build(self, k: int, seed: int) -> CrashSchedule:
        """Materialize the schedule for ``k`` robots under ``seed``."""
        if self.kind == "events":
            return CrashSchedule(
                CrashEvent(robot, rnd, CrashPhase(phase))
                for robot, rnd, phase in self.events
            )
        rng = random.Random(f"fault:{k}:{self.f}:{seed}")
        phases = (
            [CrashPhase(p) for p in self.phases] if self.phases else None
        )
        return CrashSchedule.random_schedule(
            k, self.f, self.max_round, rng, phases=phases
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form."""
        if self.kind == "events":
            return {
                "kind": "events",
                "events": [list(event) for event in self.events],
            }
        data: Dict[str, Any] = {
            "kind": "random", "f": self.f, "max_round": self.max_round,
        }
        if self.phases is not None:
            data["phases"] = list(self.phases)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CrashSpec":
        """Inverse of :meth:`to_dict`."""
        phases = data.get("phases")
        return cls(
            kind=data.get("kind", "events"),
            events=tuple(
                (int(r), int(rnd), str(phase))
                for r, rnd, phase in data.get("events", ())
            ),
            f=int(data.get("f", 0)),
            max_round=int(data.get("max_round", 0)),
            phases=tuple(phases) if phases is not None else None,
        )


@dataclass(frozen=True)
class GraphBuildContext:
    """What a graph factory may consult besides its own params."""

    n: int
    seed: int
    algorithm: Any
    communication: CommunicationModel
    neighborhood_knowledge: bool


@dataclass(frozen=True)
class RunSpec:
    """Everything needed to reconstruct one simulation run, as pure data.

    Build one directly or with :func:`make_spec`; materialize with
    :func:`build_engine` / :func:`execute`; serialize with
    :meth:`to_dict` / :meth:`to_json`.
    """

    graph: ComponentSpec
    placement: PlacementSpec
    algorithm: ComponentSpec = field(
        default_factory=lambda: ComponentSpec("dispersion_dynamic")
    )
    communication: str = "global"
    neighborhood_knowledge: bool = True
    crash: Optional[CrashSpec] = None
    byzantine: Mapping[int, ComponentSpec] = field(default_factory=dict)
    activation: Optional[ComponentSpec] = None
    scheduler: Optional[ComponentSpec] = None
    backend: Optional[ComponentSpec] = None
    seed: int = 0
    max_rounds: Optional[int] = None
    collect_records: bool = True
    collect_snapshots: bool = False
    validate_graphs: bool = True
    allow_model_mismatch: bool = False
    label: str = ""

    def __post_init__(self) -> None:
        if self.communication not in ("global", "local"):
            raise SpecError(
                f"communication must be 'global' or 'local', got "
                f"{self.communication!r}"
            )
        if self.scheduler is not None and self.activation is not None:
            raise SpecError(
                "a spec takes either 'scheduler' or 'activation', not both "
                "(an activation component is shorthand for the ssync "
                "scheduler with that policy)"
            )

    @property
    def communication_model(self) -> CommunicationModel:
        """The ``communication`` field as the engine's enum."""
        return (
            CommunicationModel.GLOBAL
            if self.communication == "global"
            else CommunicationModel.LOCAL
        )

    def with_(self, **changes: Any) -> "RunSpec":
        """A copy with the given fields replaced (specs are immutable)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Full JSON-serializable dict export of the spec."""
        data: Dict[str, Any] = {
            "format_version": SPEC_FORMAT_VERSION,
            "kind": "run_spec",
            "graph": self.graph.to_dict(),
            "placement": self.placement.to_dict(),
            "algorithm": self.algorithm.to_dict(),
            "communication": self.communication,
            "neighborhood_knowledge": self.neighborhood_knowledge,
            "seed": self.seed,
            "collect_records": self.collect_records,
            "collect_snapshots": self.collect_snapshots,
            "validate_graphs": self.validate_graphs,
            "allow_model_mismatch": self.allow_model_mismatch,
        }
        if self.crash is not None:
            data["crash"] = self.crash.to_dict()
        if self.byzantine:
            data["byzantine"] = {
                str(robot): spec.to_dict()
                for robot, spec in self.byzantine.items()
            }
        if self.activation is not None:
            data["activation"] = self.activation.to_dict()
        # Omitted when None (the FSYNC default) so pre-scheduler specs --
        # and their content digests -- are byte-identical.
        if self.scheduler is not None:
            data["scheduler"] = self.scheduler.to_dict()
        # Omitted when None (the reference default) so pre-backend specs
        # -- and their content digests -- are byte-identical.
        if self.backend is not None:
            data["backend"] = self.backend.to_dict()
        if self.max_rounds is not None:
            data["max_rounds"] = self.max_rounds
        if self.label:
            data["label"] = self.label
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        """Inverse of :meth:`to_dict`."""
        version = data.get("format_version", SPEC_FORMAT_VERSION)
        if version != SPEC_FORMAT_VERSION:
            raise SpecError(
                f"unsupported spec format_version {version}; this library "
                f"reads version {SPEC_FORMAT_VERSION}"
            )
        crash = data.get("crash")
        activation = data.get("activation")
        scheduler = data.get("scheduler")
        backend = data.get("backend")
        return cls(
            graph=ComponentSpec.from_dict(data["graph"]),
            placement=PlacementSpec.from_dict(data["placement"]),
            algorithm=ComponentSpec.from_dict(
                data.get("algorithm", {"name": "dispersion_dynamic"})
            ),
            communication=data.get("communication", "global"),
            neighborhood_knowledge=bool(
                data.get("neighborhood_knowledge", True)
            ),
            crash=CrashSpec.from_dict(crash) if crash is not None else None,
            byzantine={
                int(robot): ComponentSpec.from_dict(spec)
                for robot, spec in data.get("byzantine", {}).items()
            },
            activation=(
                ComponentSpec.from_dict(activation)
                if activation is not None else None
            ),
            scheduler=(
                ComponentSpec.from_dict(scheduler)
                if scheduler is not None else None
            ),
            backend=(
                ComponentSpec.from_dict(backend)
                if backend is not None else None
            ),
            seed=int(data.get("seed", 0)),
            max_rounds=data.get("max_rounds"),
            collect_records=bool(data.get("collect_records", True)),
            collect_snapshots=bool(data.get("collect_snapshots", False)),
            validate_graphs=bool(data.get("validate_graphs", True)),
            allow_model_mismatch=bool(
                data.get("allow_model_mismatch", False)
            ),
            label=str(data.get("label", "")),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """The spec as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Content addressing
# ----------------------------------------------------------------------


def _canonical_value(value: Any) -> Any:
    """Normalize a spec payload value for stable hashing.

    Mapping keys are stringified (JSON coerces them anyway, but *before*
    sorting, so ``{1: ...}`` and ``{"1": ...}`` hash alike), sequences
    become lists, and integral floats collapse to ints so ``1.0`` and
    ``1`` -- the same value to every component factory -- share a digest.
    Non-finite floats are rejected: they have no canonical JSON form.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            raise SpecError(
                f"non-finite float {value!r} in spec; it has no canonical "
                "JSON form and cannot be content-addressed"
            )
        if value == int(value) and abs(value) < 2**53:
            return int(value)
        return value
    if isinstance(value, Mapping):
        return {str(k): _canonical_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical_value(v) for v in value]
    raise SpecError(
        f"value {value!r} of type {type(value).__name__} in spec is not "
        "JSON-serializable; specs must be pure data"
    )


def canonical_json(data: Any) -> str:
    """Canonical compact JSON of a pure-data value.

    Keys are sorted at every depth, separators are compact, and values go
    through :func:`_canonical_value`, so dict insertion order and float
    spelling (``1.0`` vs ``1``) cannot change the output.  This is the
    shared serialization of every content-addressed payload in the
    library: spec digests (:func:`canonical_spec_json`), store entry
    checksums (:mod:`repro.sim.store`) and fault-plan digests
    (:mod:`repro.chaos.plan`).
    """
    return json.dumps(
        _canonical_value(data),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )


def canonical_spec_json(spec: "RunSpec") -> str:
    """The spec's canonical JSON: one byte string per semantic spec.

    The display ``label`` is excluded: it never influences the run.  This
    is the hashing pre-image of :func:`spec_digest`.
    """
    data = spec.to_dict()
    data.pop("label", None)
    return canonical_json(data)


def spec_digest(spec: "RunSpec", *, salt: str = CODE_VERSION_SALT) -> str:
    """Stable content hash of a spec under a code-version ``salt``.

    The sha256 of ``salt`` + newline + :func:`canonical_spec_json`.  Two
    specs share a digest iff they describe the same run under the same
    code revision; this is the key of
    :class:`~repro.sim.store.RunStore`.
    """
    payload = f"{salt}\n{canonical_spec_json(spec)}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def make_spec(
    graph: str,
    graph_params: Optional[Mapping[str, Any]] = None,
    *,
    k: int,
    algorithm: str = "dispersion_dynamic",
    algorithm_params: Optional[Mapping[str, Any]] = None,
    placement: str = "rooted",
    seed: int = 0,
    **kwargs: Any,
) -> RunSpec:
    """Convenience constructor for the common shape of spec.

    ``graph`` / ``algorithm`` are registry names; remaining keyword
    arguments go straight to :class:`RunSpec` (``communication``,
    ``max_rounds``, ``crash``, ...).
    """
    return RunSpec(
        graph=ComponentSpec(graph, dict(graph_params or {})),
        placement=PlacementSpec(kind=placement, k=k),
        algorithm=ComponentSpec(algorithm, dict(algorithm_params or {})),
        seed=seed,
        **kwargs,
    )


# ----------------------------------------------------------------------
# Materialization
# ----------------------------------------------------------------------


def build_algorithm(spec: RunSpec) -> Any:
    """Construct the spec's algorithm instance."""
    factory = _lookup(
        _ALGORITHM_FACTORIES, "algorithm", spec.algorithm.name
    )
    return factory(dict(spec.algorithm.params))


def build_graph(spec: RunSpec, algorithm: Any) -> Any:
    """Construct the spec's dynamic-graph process.

    ``algorithm`` is the already-built algorithm instance: adaptive
    adversaries (ring blocking mode, the impossibility adversaries) probe
    it when choosing each round's graph.
    """
    factory = _lookup(_GRAPH_FACTORIES, "graph", spec.graph.name)
    params = dict(spec.graph.params)
    n = params.get("n")
    if n is None:
        raise SpecError(
            f"graph component {spec.graph.name!r} params must include 'n'"
        )
    context = GraphBuildContext(
        n=int(n),
        seed=int(params.pop("seed", spec.seed)),
        algorithm=algorithm,
        communication=spec.communication_model,
        neighborhood_knowledge=spec.neighborhood_knowledge,
    )
    return factory(params, context)


def build_backend(component: ComponentSpec) -> Any:
    """Construct the spec's :class:`~repro.sim.backend.EngineBackend`."""
    factory = _lookup(_BACKEND_FACTORIES, "backend", component.name)
    return factory(dict(component.params))


def build_engine(spec: RunSpec, *, observers: Sequence[Any] = ()) -> Any:
    """Materialize the full :class:`~repro.sim.engine.SimulationEngine`."""
    from repro.sim.engine import SimulationEngine

    algorithm = build_algorithm(spec)
    dynamic_graph = build_graph(spec, algorithm)
    robots = spec.placement.build(dynamic_graph.n, spec.seed)
    crash_schedule = (
        spec.crash.build(robots.k, spec.seed)
        if spec.crash is not None else None
    )
    byzantine = {
        robot: _lookup(_BYZANTINE_FACTORIES, "byzantine", policy.name)(
            dict(policy.params)
        )
        for robot, policy in spec.byzantine.items()
    }
    activation = (
        _lookup(_ACTIVATION_FACTORIES, "activation", spec.activation.name)(
            dict(spec.activation.params)
        )
        if spec.activation is not None else None
    )
    scheduler = (
        _lookup(_SCHEDULER_FACTORIES, "scheduler", spec.scheduler.name)(
            dict(spec.scheduler.params)
        )
        if spec.scheduler is not None else None
    )
    backend = (
        build_backend(spec.backend) if spec.backend is not None else None
    )
    return SimulationEngine(
        dynamic_graph,
        robots,
        algorithm,
        crash_schedule=crash_schedule,
        communication=spec.communication_model,
        neighborhood_knowledge=spec.neighborhood_knowledge,
        max_rounds=spec.max_rounds,
        collect_records=spec.collect_records,
        collect_snapshots=spec.collect_snapshots,
        validate_graphs=spec.validate_graphs,
        allow_model_mismatch=spec.allow_model_mismatch,
        activation_schedule=activation,
        scheduler=scheduler,
        byzantine_policies=byzantine or None,
        backend=backend,
        observers=observers,
    )


def execute(spec: RunSpec) -> Any:
    """Build the engine from ``spec`` and run it to termination.

    This is the worker function the runners fan out: a pure function of
    the spec, importable at module level (hence picklable).
    """
    return build_engine(spec).run()


# ----------------------------------------------------------------------
# Default component registrations (lazy: avoids import cycles with
# repro.core / repro.baselines / repro.adversary, which import repro.sim)
# ----------------------------------------------------------------------


def _load_default_components() -> None:
    global _DEFAULTS_LOADED
    if _DEFAULTS_LOADED:
        return
    _DEFAULTS_LOADED = True

    from repro.adversary.global_impossibility import CliqueRewiringAdversary
    from repro.adversary.local_impossibility import LocalStallAdversary
    from repro.adversary.star_lower_bound import StarStarAdversary
    from repro.analysis.ablation import (
        BfsTreeVariant,
        NoDisjointnessVariant,
        NoTruncationVariant,
        UnorderedLeafVariant,
    )
    from repro.baselines.dfs_local import DfsDispersionLocal
    from repro.baselines.global_candidates import GLOBAL_NO1NK_CANDIDATES
    from repro.baselines.local_candidates import LOCAL_CANDIDATES
    from repro.baselines.random_walk import RandomWalkDispersion
    from repro.baselines.randomized_anonymous import (
        RandomizedAnonymousDispersion,
    )
    from repro.baselines.ring_walk import RingWalkDispersion
    from repro.core.dispersion import DispersionDynamic
    from repro.graph import generators
    from repro.graph.dynamic import (
        RandomChurnDynamicGraph,
        StaticDynamicGraph,
        TIntervalChurnDynamicGraph,
    )
    from repro.graph.rings import RingDynamicGraph
    from repro.robots.byzantine import (
        FakeMultiplicity,
        HideMultiplicity,
        ScrambleNeighbors,
    )
    from repro.sim.scheduling import (
        AsyncScheduler,
        FsyncScheduler,
        FullActivation,
        RandomSubsetActivation,
        RoundRobinActivation,
        SsyncScheduler,
    )

    # -- graphs --------------------------------------------------------
    def _random_churn(params: Dict[str, Any], ctx: GraphBuildContext) -> RandomChurnDynamicGraph:
        return RandomChurnDynamicGraph(
            ctx.n,
            extra_edges=int(params.get("extra_edges", 0)),
            persistence=float(params.get("persistence", 0.0)),
            seed=ctx.seed,
        )

    def _t_interval(params: Dict[str, Any], ctx: GraphBuildContext) -> TIntervalChurnDynamicGraph:
        return TIntervalChurnDynamicGraph(
            ctx.n,
            interval=int(params["interval"]),
            extra_edges=int(params.get("extra_edges", 0)),
            seed=ctx.seed,
        )

    def _static_family(params: Dict[str, Any], ctx: GraphBuildContext) -> StaticDynamicGraph:
        snapshot = generators.build_family(
            params["family"], ctx.n, random.Random(ctx.seed)
        )
        return StaticDynamicGraph(snapshot)

    def _ring(params: Dict[str, Any], ctx: GraphBuildContext) -> RingDynamicGraph:
        communication = params.get("communication")
        return RingDynamicGraph(
            ctx.n,
            mode=params.get("mode", "random"),
            removal_probability=float(
                params.get("removal_probability", 0.8)
            ),
            seed=ctx.seed,
            algorithm=ctx.algorithm,
            communication=(
                CommunicationModel(communication)
                if communication is not None else None
            ),
            neighborhood_knowledge=ctx.neighborhood_knowledge,
        )

    def _star_star(params: Dict[str, Any], ctx: GraphBuildContext) -> StarStarAdversary:
        return StarStarAdversary(
            ctx.n,
            list(params.get("initial_occupied", [0])),
            seed=ctx.seed,
        )

    def _local_stall(params: Dict[str, Any], ctx: GraphBuildContext) -> LocalStallAdversary:
        return LocalStallAdversary(ctx.n, ctx.algorithm, seed=ctx.seed)

    def _clique_rewiring(params: Dict[str, Any], ctx: GraphBuildContext) -> CliqueRewiringAdversary:
        return CliqueRewiringAdversary(ctx.n, ctx.algorithm, seed=ctx.seed)

    def _fig3_static(params: Dict[str, Any], ctx: GraphBuildContext) -> StaticDynamicGraph:
        from repro.analysis.figures import build_fig3_instance

        return StaticDynamicGraph(build_fig3_instance().snapshot)

    register_graph("random_churn", _random_churn)
    register_graph("t_interval_churn", _t_interval)
    register_graph("static_family", _static_family)
    register_graph("ring", _ring)
    register_graph("star_star", _star_star)
    register_graph("local_stall", _local_stall)
    register_graph("clique_rewiring", _clique_rewiring)
    register_graph("fig3_static", _fig3_static)

    # -- algorithms ----------------------------------------------------
    register_algorithm(
        "dispersion_dynamic",
        lambda params: DispersionDynamic(
            faithful=bool(params.get("faithful", False))
        ),
    )
    register_algorithm(
        RandomWalkDispersion.name,
        lambda params: RandomWalkDispersion(
            seed=int(params.get("seed", 0)),
            lazy=bool(params.get("lazy", False)),
        ),
    )
    register_algorithm(
        RandomizedAnonymousDispersion.name,
        lambda params: RandomizedAnonymousDispersion(**params),
    )
    for no_param_cls in (
        DfsDispersionLocal,
        RingWalkDispersion,
        BfsTreeVariant,
        NoDisjointnessVariant,
        NoTruncationVariant,
        UnorderedLeafVariant,
        *LOCAL_CANDIDATES,
        *GLOBAL_NO1NK_CANDIDATES,
    ):
        register_algorithm(
            no_param_cls.name,
            (lambda cls: lambda params: cls(**params))(no_param_cls),
        )

    # -- byzantine policies --------------------------------------------
    register_byzantine(
        "hide_multiplicity", lambda params: HideMultiplicity(**params)
    )
    register_byzantine(
        "fake_multiplicity", lambda params: FakeMultiplicity(**params)
    )
    register_byzantine(
        "scramble_neighbors", lambda params: ScrambleNeighbors(**params)
    )

    # -- activation schedules ------------------------------------------
    register_activation("full", lambda params: FullActivation())
    register_activation(
        "random_subset",
        lambda params: RandomSubsetActivation(
            float(params["p"]), seed=int(params.get("seed", 0))
        ),
    )
    register_activation(
        "round_robin",
        lambda params: RoundRobinActivation(int(params["window"])),
    )

    # -- scheduler models ----------------------------------------------
    def _ssync_scheduler(params: Dict[str, Any]) -> SsyncScheduler:
        params = dict(params)
        policy_name = str(params.pop("policy", "full"))
        policy = _lookup(_ACTIVATION_FACTORIES, "activation", policy_name)(
            params
        )
        return SsyncScheduler(policy)

    register_scheduler("fsync", lambda params: FsyncScheduler())
    register_scheduler("ssync", _ssync_scheduler)
    register_scheduler(
        "async",
        lambda params: AsyncScheduler(
            seed=int(params.get("seed", 0)),
            distribution=str(params.get("distribution", "uniform")),
            max_delay=int(params.get("max_delay", 4)),
            p=float(params.get("p", 0.5)),
            move_max_delay=int(params.get("move_max_delay", 0)),
            laggards=tuple(
                int(r) for r in params.get("laggards", ())
            ),
        ),
    )

    # -- engine backends -----------------------------------------------
    from repro.sim.backend import ReferenceBackend

    register_backend("reference", lambda params: ReferenceBackend())
    try:
        from repro.sim.backend_vectorized import VectorizedBackend
    except ImportError:  # pragma: no cover - numpy is a project dep
        pass  # without numpy only the reference backend is available
    else:
        register_backend("vectorized", lambda params: VectorizedBackend())
