"""The synchronous Communicate-Compute-Move simulation engine.

One engine instance runs one instance of the problem: a dynamic graph
process, an initial robot placement, an algorithm, and (optionally) a crash
schedule.  Each round executes the paper's CCM structure:

1. the adversary/dynamic process supplies ``G_r`` knowing the configuration
   (validated: fixed vertex set, connected, simple, port-bijective);
2. robots scheduled to crash *before Communicate* vanish;
3. **Communicate / observe** -- per-node information packets are built and
   delivered according to the communication model (global or local) and
   sensing model (with or without 1-neighborhood knowledge);
4. **Compute** -- the decisions of all robots *activated this step* are
   collected (no decision is applied until all are collected);
5. robots scheduled to crash *after Compute* vanish, their moves discarded;
6. **Move** -- surviving moves are applied; under a scheduler whose Move
   phase takes time, a move instead becomes *pending* (the robot commits
   to its edge now but stays at its origin until the arrival step);
7. **Settle** -- pending moves whose arrival step has come are applied.

Which robots are activated in step 4 -- and what logical time a step
carries -- is decided by a :class:`~repro.sim.scheduling.SchedulerModel`:
FSYNC (the paper's model, the default, byte-identical to the historical
synchronous loop), SSYNC (an activation policy picks a subset per step)
or ASYNC (a seeded event-queue scheduler).  See ``docs/scheduling.md``.

*How* each phase executes is delegated to an
:class:`~repro.sim.backend.EngineBackend` (default: the pure-Python
``reference`` backend, byte-identical to the historical engine; the
``vectorized`` backend swaps in numpy struct-of-arrays kernels).  The
engine owns the ground truth and uses it for termination detection,
validation, and metrics; algorithms never receive it.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.graph.dynamic import DynamicGraph, RoundContext
from repro.graph.validation import validate_snapshot
from repro.robots.faults import CrashPhase, CrashSchedule
from repro.sim.hooks import EngineObserver, TraceCollector

if TYPE_CHECKING:  # pragma: no cover - circular-import guard (annotations)
    from repro.robots.byzantine import ByzantinePolicy
    from repro.sim.backend import EngineBackend
from repro.robots.robot import RobotSet
from repro.sim.algorithm import Decision, RobotAlgorithm
from repro.sim.metrics import RoundRecord, RunResult, TerminationReason
from repro.sim.observation import CommunicationModel
from repro.sim.scheduling import (
    Activation,
    ActivationSchedule,
    FsyncScheduler,
    SchedulerModel,
    SsyncScheduler,
)


class SimulationError(RuntimeError):
    """An algorithm or adversary violated the model during a run."""


class SimulationEngine:
    """Runs one dispersion instance to termination.

    Parameters
    ----------
    dynamic_graph:
        The per-round graph source (oblivious process or adaptive
        adversary).
    robots:
        Initial placement; either a :class:`~repro.robots.robot.RobotSet`
        or a raw ``{robot_id: node}`` mapping.
    algorithm:
        The robot program.
    crash_schedule:
        Crash faults to inject (default: none).
    communication / neighborhood_knowledge:
        The information model of the run.  The engine refuses to start if
        the algorithm declares stronger requirements (fail fast instead of
        silently running a meaningless configuration); pass
        ``allow_model_mismatch=True`` to override -- that is exactly what
        the impossibility demonstrations do when they run global-model
        candidate algorithms under handicapped models.
    scheduler:
        The :class:`~repro.sim.scheduling.SchedulerModel` driving the
        phase loop (default: FSYNC, the paper's model).  Mutually
        exclusive with ``activation_schedule``, which is kept as
        shorthand for ``SsyncScheduler(schedule)``.  The engine refuses
        to start if the algorithm's ``compatible_schedulers`` declaration
        excludes the model (same override as the communication check).
    max_rounds:
        Safety cap on engine *steps* (== CCM rounds under FSYNC/SSYNC;
        activation-batch steps under ASYNC); defaults to a generous
        bound well above O(k).
    collect_records:
        Set False to skip per-round records in large benchmark sweeps.
    backend:
        The :class:`~repro.sim.backend.EngineBackend` executing the phase
        primitives (default: a fresh ``ReferenceBackend``).  Alternative
        backends must be bit-identical to the reference on the same
        configuration.  (The former ``round_observers`` parameter --
        deprecated since the observer layer landed -- has been removed;
        pass ``observers=[CallbackObserver(fn)]`` instead.)
    observers:
        :class:`~repro.sim.hooks.EngineObserver` instances receiving the
        per-phase instrumentation hooks (round start / communicate /
        compute / move / round end); see :mod:`repro.sim.hooks`.
    """

    def __init__(
        self,
        dynamic_graph: DynamicGraph,
        robots: Union[RobotSet, Mapping[int, int]],
        algorithm: RobotAlgorithm,
        *,
        crash_schedule: Optional[CrashSchedule] = None,
        communication: CommunicationModel = CommunicationModel.GLOBAL,
        neighborhood_knowledge: bool = True,
        max_rounds: Optional[int] = None,
        collect_records: bool = True,
        collect_snapshots: bool = False,
        validate_graphs: bool = True,
        allow_model_mismatch: bool = False,
        activation_schedule: Optional[ActivationSchedule] = None,
        scheduler: Optional[SchedulerModel] = None,
        byzantine_policies: Optional[Mapping[int, "ByzantinePolicy"]] = None,
        backend: Optional["EngineBackend"] = None,
        observers: Optional[Sequence[EngineObserver]] = None,
    ) -> None:
        if isinstance(robots, RobotSet):
            if robots.n != dynamic_graph.n:
                raise ValueError(
                    f"robot set built for n={robots.n}, dynamic graph has "
                    f"n={dynamic_graph.n}"
                )
            initial_positions = robots.positions
        else:
            initial_positions = dict(robots)
            RobotSet(initial_positions, dynamic_graph.n)  # validates

        if scheduler is not None and activation_schedule is not None:
            raise ValueError(
                "pass either scheduler or activation_schedule, not both "
                "(an activation schedule is shorthand for "
                "SsyncScheduler(schedule))"
            )
        if scheduler is None:
            scheduler = (
                SsyncScheduler(activation_schedule)
                if activation_schedule is not None
                else FsyncScheduler()
            )

        if not allow_model_mismatch:
            if (
                algorithm.requires_communication is CommunicationModel.GLOBAL
                and communication is CommunicationModel.LOCAL
            ):
                raise ValueError(
                    f"algorithm {algorithm.name!r} requires global "
                    "communication but the run is configured local; pass "
                    "allow_model_mismatch=True if this is intentional"
                )
            if (
                algorithm.requires_neighborhood_knowledge
                and not neighborhood_knowledge
            ):
                raise ValueError(
                    f"algorithm {algorithm.name!r} requires 1-neighborhood "
                    "knowledge but the run disables it; pass "
                    "allow_model_mismatch=True if this is intentional"
                )
            if scheduler.name not in algorithm.compatible_schedulers:
                raise ValueError(
                    f"algorithm {algorithm.name!r} declares compatible "
                    f"schedulers {algorithm.compatible_schedulers!r} but the "
                    f"run uses {scheduler.name!r}; pass "
                    "allow_model_mismatch=True if this is intentional"
                )

        self._dynamic_graph = dynamic_graph
        self._algorithm = algorithm
        self._crash_schedule = crash_schedule or CrashSchedule.none()
        self._communication = communication
        self._neighborhood_knowledge = neighborhood_knowledge
        self._collect_records = collect_records
        self._collect_snapshots = collect_snapshots
        self._validate_graphs = validate_graphs
        self._scheduler = scheduler
        # Phase observers; trace capture is itself an observer.
        hooks: list = list(observers or ())
        self._trace: Optional[TraceCollector] = (
            TraceCollector() if collect_records else None
        )
        if self._trace is not None:
            hooks.append(self._trace)
        self._observers: Tuple[EngineObserver, ...] = tuple(hooks)
        self._byzantine: Dict[int, "ByzantinePolicy"] = dict(
            byzantine_policies or {}
        )
        unknown = set(self._byzantine) - set(initial_positions)
        if unknown:
            raise ValueError(
                f"byzantine policies reference unknown robots {sorted(unknown)}"
            )

        self._n = dynamic_graph.n
        self._k = len(initial_positions)
        self._validated_snapshot: Optional[object] = None
        self._positions: Dict[int, int] = dict(initial_positions)
        self._crashed: Set[int] = set()
        self._entry_ports: Dict[int, int] = {}
        # robot -> (arrival step, destination, entry port at destination):
        # moves whose Move phase takes time under the scheduler model.
        self._pending_moves: Dict[int, Tuple[int, int, int]] = {}
        self._last_epoch: Optional[int] = None
        self._ever_occupied: Set[int] = set(initial_positions.values())
        self._initial_occupied = len(self._ever_occupied)

        self._packets_broadcast = 0
        self._packet_deliveries = 0

        if max_rounds is None:
            max_rounds = 10 * self._k * self._n + 100
        if max_rounds < 0:
            raise ValueError("max_rounds must be >= 0")
        self._max_rounds = max_rounds

        if backend is None:
            from repro.sim.backend import ReferenceBackend

            backend = ReferenceBackend()
        self._backend: "EngineBackend" = backend
        self._backend.bind(self)

    @property
    def backend(self) -> "EngineBackend":
        """The phase-execution backend driving this engine."""
        return self._backend

    # ------------------------------------------------------------------
    # Ground-truth helpers
    # ------------------------------------------------------------------

    @property
    def k(self) -> int:
        """Total robots (including crashed)."""
        return self._k

    @property
    def n(self) -> int:
        """Nodes in the dynamic graph."""
        return self._n

    def alive_positions(self) -> Dict[int, int]:
        """Current alive robot -> node mapping (a copy)."""
        return dict(self._positions)

    def _occupied_nodes(self) -> Set[int]:
        return set(self._positions.values())

    def _honest_positions(self) -> Dict[int, int]:
        return {
            robot_id: node
            for robot_id, node in self._positions.items()
            if robot_id not in self._byzantine
        }

    def _is_dispersed(self) -> bool:
        """No multiplicity node among alive robots.

        With byzantine robots present, dispersion is judged on the honest
        robots only (the BYZANTINEDISPERSION analog of Definition 6): each
        alive honest robot on its own distinct node.
        """
        honest = self._honest_positions()
        return len(set(honest.values())) == len(honest)

    def _apply_crashes(self, round_index: int, phase: CrashPhase) -> Tuple[int, ...]:
        victims = sorted(
            robot_id
            for robot_id in self._crash_schedule.crashes_at(round_index, phase)
            if robot_id in self._positions
        )
        for robot_id in victims:
            del self._positions[robot_id]
            self._entry_ports.pop(robot_id, None)
            # A crashed robot vanishes mid-traversal too: its pending
            # arrival is discarded with it.
            self._pending_moves.pop(robot_id, None)
            self._crashed.add(robot_id)
        return tuple(victims)

    def _audit_memory(self) -> int:
        """Peak persistent bits across alive honest robots, right now."""
        return self._backend.audit_memory()

    # ------------------------------------------------------------------
    # Phase primitives (delegated to the backend; the engine keeps the
    # observer notifications so backends stay instrumentation-free)
    # ------------------------------------------------------------------

    def _notify(self, method: str, *args) -> None:
        for observer in self._observers:
            getattr(observer, method)(*args)

    def _eligible_robots(self) -> Tuple[int, ...]:
        """Alive honest robots that can be activated (not in transit)."""
        return tuple(
            robot_id
            for robot_id in sorted(self._honest_positions())
            if robot_id not in self._pending_moves
        )

    def _phase_observe(self, snapshot, round_index: int):
        """Deliver/observe: build packets and hand out observations."""
        observations = self._backend.observe(snapshot, round_index)
        self._notify("on_communicate", round_index, observations)
        return observations

    def _phase_activate(
        self, round_index: int
    ) -> Tuple[Activation, FrozenSet[int]]:
        """Ask the scheduler who wakes this step; validate the answer."""
        return self._backend.activate(round_index)

    def _phase_compute(
        self, snapshot, round_index: int, observations, active: FrozenSet[int]
    ) -> Dict[int, Decision]:
        """Collect the decisions of all activated robots before applying
        any (decisions within a step are simultaneous)."""
        decisions = self._backend.compute(
            snapshot, round_index, observations, active
        )
        self._notify("on_compute", round_index, decisions)
        return decisions

    def _phase_move(
        self,
        snapshot,
        round_index: int,
        decisions: Dict[int, Decision],
        activation: Activation,
        new_entry_ports: Dict[int, int],
    ) -> list:
        """Apply surviving moves; queue delayed ones as pending."""
        return self._backend.move(
            snapshot, round_index, decisions, activation, new_entry_ports
        )

    def _phase_settle(
        self, round_index: int, new_entry_ports: Dict[int, int]
    ) -> list:
        """Apply pending moves whose arrival step has come."""
        return self._backend.settle(round_index, new_entry_ports)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        """Execute rounds until dispersion, crash-out, or the round cap."""
        self._algorithm.on_run_start(self._k, self._n)
        self._notify("on_run_start", self._k, self._n)

        if self._is_dispersed():
            return self._result(
                TerminationReason.ALREADY_DISPERSED,
                rounds=0,
                total_moves=0,
                max_bits=self._audit_memory(),
                detected=True,
            )

        total_moves = 0
        max_bits = 0
        round_index = 0
        detected = False
        self._packets_broadcast = 0
        self._packet_deliveries = 0

        while round_index < self._max_rounds:
            # Adversary chooses G_r knowing the configuration so far.
            context = RoundContext(
                round_index=round_index,
                positions=dict(self._positions),
                ever_occupied=frozenset(self._ever_occupied),
            )
            snapshot = self._dynamic_graph.snapshot(round_index, context)
            # Snapshots are immutable, so validation is a pure function of
            # the object: a static graph serving the same snapshot every
            # round is validated once (at its first round) instead of n
            # times.  Dynamic processes return fresh objects and are
            # validated every round as before.
            if (
                self._validate_graphs
                and snapshot is not self._validated_snapshot
            ):
                validate_snapshot(
                    snapshot, expected_n=self._n, round_index=round_index
                )
                self._validated_snapshot = snapshot
            self._notify("on_round_start", round_index, snapshot)

            crashed_before = self._apply_crashes(
                round_index, CrashPhase.BEFORE_COMMUNICATE
            )
            if not self._positions:
                return self._result(
                    TerminationReason.ALL_CRASHED,
                    rounds=round_index,
                    total_moves=total_moves,
                    max_bits=max_bits,
                    detected=False,
                )

            positions_before = dict(self._positions)
            occupied_before = frozenset(self._positions.values())

            if self._is_dispersed() and not self._pending_moves:
                observations = self._phase_observe(snapshot, round_index)
                detected = all(
                    self._algorithm.detects_termination(observations[rid])
                    for rid in self._honest_positions()
                )
                return self._result(
                    TerminationReason.DISPERSED,
                    rounds=round_index,
                    total_moves=total_moves,
                    max_bits=max_bits,
                    detected=detected,
                )

            # Communicate / observe.
            self._algorithm.on_round_start(round_index)
            observations = self._phase_observe(snapshot, round_index)

            # Activate: the scheduler model picks who wakes this step
            # (everyone under FSYNC; inactive robots implicitly stay but
            # remain physically present in everyone's packets).
            activation, active = self._phase_activate(round_index)

            # Compute.
            decisions = self._phase_compute(
                snapshot, round_index, observations, active
            )

            crashed_after = self._apply_crashes(
                round_index, CrashPhase.AFTER_COMPUTE
            )

            # Move: simultaneous application (crashed robots' moves are
            # discarded; they vanished holding their marching orders),
            # then settle any earlier pending moves that arrive now.
            new_entry_ports: Dict[int, int] = {}
            moved = self._phase_move(
                snapshot, round_index, decisions, activation, new_entry_ports
            )
            moved += self._phase_settle(round_index, new_entry_ports)
            self._entry_ports = new_entry_ports
            total_moves += len(moved)
            self._ever_occupied.update(self._positions.values())
            moved_tuple = tuple(sorted(moved))
            self._notify(
                "on_move", round_index, moved_tuple, dict(self._positions)
            )

            round_bits = self._audit_memory()
            max_bits = max(max_bits, round_bits)

            timeline = not self._scheduler.is_fully_synchronous
            if timeline:
                self._last_epoch = activation.epoch
            if self._observers:
                record = RoundRecord(
                    round_index=round_index,
                    positions_before=positions_before,
                    positions_after=dict(self._positions),
                    moved_robots=moved_tuple,
                    crashed_before_communicate=crashed_before,
                    crashed_after_compute=crashed_after,
                    occupied_before=occupied_before,
                    occupied_after=frozenset(self._positions.values()),
                    num_components=self._backend.count_occupied_components(
                        snapshot, occupied_before
                    ),
                    max_persistent_bits=round_bits,
                    snapshot=(
                        snapshot if self._collect_snapshots else None
                    ),
                    epoch=activation.epoch if timeline else None,
                    activated_robots=(
                        tuple(sorted(active)) if timeline else None
                    ),
                )
                self._notify("on_round_end", record)
            round_index += 1

        reason = (
            TerminationReason.DISPERSED
            if self._is_dispersed() and not self._pending_moves
            else TerminationReason.ROUND_LIMIT
        )
        return self._result(
            reason,
            rounds=round_index,
            total_moves=total_moves,
            max_bits=max_bits,
            detected=False,
        )

    def _result(
        self,
        reason: TerminationReason,
        *,
        rounds: int,
        total_moves: int,
        max_bits: int,
        detected: bool,
    ) -> RunResult:
        records = self._trace.records if self._trace is not None else []
        result = RunResult(
            reason=reason,
            rounds=rounds,
            k=self._k,
            n=self._n,
            initial_occupied=self._initial_occupied,
            final_positions=dict(self._positions),
            crashed_robots=tuple(sorted(self._crashed)),
            byzantine_robots=tuple(sorted(self._byzantine)),
            total_moves=total_moves,
            total_packets_broadcast=self._packets_broadcast,
            total_packet_deliveries=self._packet_deliveries,
            max_persistent_bits=max_bits,
            records=records,
            algorithm_detected_termination=detected,
            final_epoch=self._last_epoch,
        )
        self._notify("on_run_end", result)
        return result
