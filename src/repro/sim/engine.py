"""The synchronous Communicate-Compute-Move simulation engine.

One engine instance runs one instance of the problem: a dynamic graph
process, an initial robot placement, an algorithm, and (optionally) a crash
schedule.  Each round executes the paper's CCM structure:

1. the adversary/dynamic process supplies ``G_r`` knowing the configuration
   (validated: fixed vertex set, connected, simple, port-bijective);
2. robots scheduled to crash *before Communicate* vanish;
3. **Communicate / observe** -- per-node information packets are built and
   delivered according to the communication model (global or local) and
   sensing model (with or without 1-neighborhood knowledge);
4. **Compute** -- the decisions of all robots *activated this step* are
   collected (no decision is applied until all are collected);
5. robots scheduled to crash *after Compute* vanish, their moves discarded;
6. **Move** -- surviving moves are applied; under a scheduler whose Move
   phase takes time, a move instead becomes *pending* (the robot commits
   to its edge now but stays at its origin until the arrival step);
7. **Settle** -- pending moves whose arrival step has come are applied.

Which robots are activated in step 4 -- and what logical time a step
carries -- is decided by a :class:`~repro.sim.scheduling.SchedulerModel`:
FSYNC (the paper's model, the default, byte-identical to the historical
synchronous loop), SSYNC (an activation policy picks a subset per step)
or ASYNC (a seeded event-queue scheduler).  See ``docs/scheduling.md``.

The engine owns the ground truth and uses it for termination detection,
validation, and metrics; algorithms never receive it.
"""

from __future__ import annotations

import warnings
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.graph.dynamic import DynamicGraph, RoundContext
from repro.graph.validation import validate_snapshot
from repro.robots.faults import CrashPhase, CrashSchedule
from repro.sim.hooks import CallbackObserver, EngineObserver, TraceCollector

if TYPE_CHECKING:  # pragma: no cover - circular-import guard (annotations)
    from repro.robots.byzantine import ByzantinePolicy
from repro.robots.memory import bits_for_state
from repro.robots.robot import RobotSet
from repro.sim.algorithm import Decision, MoveDecision, RobotAlgorithm, StayDecision
from repro.sim.metrics import RoundRecord, RunResult, TerminationReason
from repro.sim.observation import (
    CommunicationModel,
    InfoPacket,
    build_info_packets,
    observations_from_packets,
)
from repro.sim.scheduling import (
    Activation,
    ActivationSchedule,
    FsyncScheduler,
    SchedulerModel,
    SsyncScheduler,
)


class SimulationError(RuntimeError):
    """An algorithm or adversary violated the model during a run."""


class SimulationEngine:
    """Runs one dispersion instance to termination.

    Parameters
    ----------
    dynamic_graph:
        The per-round graph source (oblivious process or adaptive
        adversary).
    robots:
        Initial placement; either a :class:`~repro.robots.robot.RobotSet`
        or a raw ``{robot_id: node}`` mapping.
    algorithm:
        The robot program.
    crash_schedule:
        Crash faults to inject (default: none).
    communication / neighborhood_knowledge:
        The information model of the run.  The engine refuses to start if
        the algorithm declares stronger requirements (fail fast instead of
        silently running a meaningless configuration); pass
        ``allow_model_mismatch=True`` to override -- that is exactly what
        the impossibility demonstrations do when they run global-model
        candidate algorithms under handicapped models.
    scheduler:
        The :class:`~repro.sim.scheduling.SchedulerModel` driving the
        phase loop (default: FSYNC, the paper's model).  Mutually
        exclusive with ``activation_schedule``, which is kept as
        shorthand for ``SsyncScheduler(schedule)``.  The engine refuses
        to start if the algorithm's ``compatible_schedulers`` declaration
        excludes the model (same override as the communication check).
    max_rounds:
        Safety cap on engine *steps* (== CCM rounds under FSYNC/SSYNC;
        activation-batch steps under ASYNC); defaults to a generous
        bound well above O(k).
    collect_records:
        Set False to skip per-round records in large benchmark sweeps.
    round_observers:
        **Deprecated** legacy per-round callbacks ``callable(RoundRecord)``;
        still adapted onto the observer layer (via
        :class:`~repro.sim.hooks.CallbackObserver`) but emits a
        ``DeprecationWarning`` -- pass
        ``observers=[CallbackObserver(fn)]`` instead.
    observers:
        :class:`~repro.sim.hooks.EngineObserver` instances receiving the
        per-phase instrumentation hooks (round start / communicate /
        compute / move / round end); see :mod:`repro.sim.hooks`.
    """

    def __init__(
        self,
        dynamic_graph: DynamicGraph,
        robots: Union[RobotSet, Mapping[int, int]],
        algorithm: RobotAlgorithm,
        *,
        crash_schedule: Optional[CrashSchedule] = None,
        communication: CommunicationModel = CommunicationModel.GLOBAL,
        neighborhood_knowledge: bool = True,
        max_rounds: Optional[int] = None,
        collect_records: bool = True,
        collect_snapshots: bool = False,
        validate_graphs: bool = True,
        allow_model_mismatch: bool = False,
        activation_schedule: Optional[ActivationSchedule] = None,
        scheduler: Optional[SchedulerModel] = None,
        byzantine_policies: Optional[Mapping[int, "ByzantinePolicy"]] = None,
        round_observers: Optional[
            Sequence[Callable[[RoundRecord], None]]
        ] = None,
        observers: Optional[Sequence[EngineObserver]] = None,
    ) -> None:
        if isinstance(robots, RobotSet):
            if robots.n != dynamic_graph.n:
                raise ValueError(
                    f"robot set built for n={robots.n}, dynamic graph has "
                    f"n={dynamic_graph.n}"
                )
            initial_positions = robots.positions
        else:
            initial_positions = dict(robots)
            RobotSet(initial_positions, dynamic_graph.n)  # validates

        if scheduler is not None and activation_schedule is not None:
            raise ValueError(
                "pass either scheduler or activation_schedule, not both "
                "(an activation schedule is shorthand for "
                "SsyncScheduler(schedule))"
            )
        if scheduler is None:
            scheduler = (
                SsyncScheduler(activation_schedule)
                if activation_schedule is not None
                else FsyncScheduler()
            )

        if not allow_model_mismatch:
            if (
                algorithm.requires_communication is CommunicationModel.GLOBAL
                and communication is CommunicationModel.LOCAL
            ):
                raise ValueError(
                    f"algorithm {algorithm.name!r} requires global "
                    "communication but the run is configured local; pass "
                    "allow_model_mismatch=True if this is intentional"
                )
            if (
                algorithm.requires_neighborhood_knowledge
                and not neighborhood_knowledge
            ):
                raise ValueError(
                    f"algorithm {algorithm.name!r} requires 1-neighborhood "
                    "knowledge but the run disables it; pass "
                    "allow_model_mismatch=True if this is intentional"
                )
            if scheduler.name not in algorithm.compatible_schedulers:
                raise ValueError(
                    f"algorithm {algorithm.name!r} declares compatible "
                    f"schedulers {algorithm.compatible_schedulers!r} but the "
                    f"run uses {scheduler.name!r}; pass "
                    "allow_model_mismatch=True if this is intentional"
                )

        self._dynamic_graph = dynamic_graph
        self._algorithm = algorithm
        self._crash_schedule = crash_schedule or CrashSchedule.none()
        self._communication = communication
        self._neighborhood_knowledge = neighborhood_knowledge
        self._collect_records = collect_records
        self._collect_snapshots = collect_snapshots
        self._validate_graphs = validate_graphs
        self._scheduler = scheduler
        # Phase observers: new-style EngineObservers plus legacy plain
        # callables (adapted).  Trace capture is itself an observer.
        hooks: list = list(observers or ())
        if round_observers:
            warnings.warn(
                "the round_observers engine parameter is deprecated; pass "
                "observers=[CallbackObserver(fn), ...] (repro.sim.hooks) "
                "instead",
                DeprecationWarning,
                stacklevel=2,
            )
        hooks += [CallbackObserver(fn) for fn in (round_observers or ())]
        self._trace: Optional[TraceCollector] = (
            TraceCollector() if collect_records else None
        )
        if self._trace is not None:
            hooks.append(self._trace)
        self._observers: Tuple[EngineObserver, ...] = tuple(hooks)
        self._byzantine: Dict[int, "ByzantinePolicy"] = dict(
            byzantine_policies or {}
        )
        unknown = set(self._byzantine) - set(initial_positions)
        if unknown:
            raise ValueError(
                f"byzantine policies reference unknown robots {sorted(unknown)}"
            )

        self._n = dynamic_graph.n
        self._k = len(initial_positions)
        self._positions: Dict[int, int] = dict(initial_positions)
        self._crashed: Set[int] = set()
        self._entry_ports: Dict[int, int] = {}
        # robot -> (arrival step, destination, entry port at destination):
        # moves whose Move phase takes time under the scheduler model.
        self._pending_moves: Dict[int, Tuple[int, int, int]] = {}
        self._last_epoch: Optional[int] = None
        self._ever_occupied: Set[int] = set(initial_positions.values())
        self._initial_occupied = len(self._ever_occupied)

        self._packets_broadcast = 0
        self._packet_deliveries = 0

        if max_rounds is None:
            max_rounds = 10 * self._k * self._n + 100
        if max_rounds < 0:
            raise ValueError("max_rounds must be >= 0")
        self._max_rounds = max_rounds

    # ------------------------------------------------------------------
    # Ground-truth helpers
    # ------------------------------------------------------------------

    @property
    def k(self) -> int:
        """Total robots (including crashed)."""
        return self._k

    @property
    def n(self) -> int:
        """Nodes in the dynamic graph."""
        return self._n

    def alive_positions(self) -> Dict[int, int]:
        """Current alive robot -> node mapping (a copy)."""
        return dict(self._positions)

    def _occupied_nodes(self) -> Set[int]:
        return set(self._positions.values())

    def _honest_positions(self) -> Dict[int, int]:
        return {
            robot_id: node
            for robot_id, node in self._positions.items()
            if robot_id not in self._byzantine
        }

    def _is_dispersed(self) -> bool:
        """No multiplicity node among alive robots.

        With byzantine robots present, dispersion is judged on the honest
        robots only (the BYZANTINEDISPERSION analog of Definition 6): each
        alive honest robot on its own distinct node.
        """
        honest = self._honest_positions()
        return len(set(honest.values())) == len(honest)

    def _apply_crashes(self, round_index: int, phase: CrashPhase) -> Tuple[int, ...]:
        victims = sorted(
            robot_id
            for robot_id in self._crash_schedule.crashes_at(round_index, phase)
            if robot_id in self._positions
        )
        for robot_id in victims:
            del self._positions[robot_id]
            self._entry_ports.pop(robot_id, None)
            # A crashed robot vanishes mid-traversal too: its pending
            # arrival is discarded with it.
            self._pending_moves.pop(robot_id, None)
            self._crashed.add(robot_id)
        return tuple(victims)

    def _audit_memory(self) -> int:
        """Peak persistent bits across alive honest robots, right now.

        Byzantine robots are adversarial and unbounded; auditing them
        would be meaningless.
        """
        bounds = self._algorithm.persistent_state_bounds(self._k, self._n)
        peak = 0
        for robot_id in self._honest_positions():
            state = self._algorithm.persistent_state(robot_id)
            peak = max(peak, bits_for_state(state, bounds=bounds))
        return peak

    def _communicate(self, snapshot, round_index: int):
        """Build packets, apply byzantine forgery, deliver observations."""
        packets = build_info_packets(
            snapshot,
            self._positions,
            neighborhood_knowledge=self._neighborhood_knowledge,
        )
        if self._byzantine:
            forged: Dict[int, InfoPacket] = {}
            for node, packet in packets.items():
                policy = self._byzantine.get(packet.representative_id)
                if policy is not None:
                    packet = policy.forge_packet(packet, round_index)
                    if (
                        packet.representative_id
                        not in self._positions
                    ):
                        raise SimulationError(
                            "byzantine forgery changed the representative "
                            "ID; identities are unforgeable in the model"
                        )
                forged[node] = packet
            packets = forged
        self._packets_broadcast += len(packets)
        if self._communication is CommunicationModel.GLOBAL:
            self._packet_deliveries += len(packets) * len(self._positions)
        else:
            # local: each robot receives only its own node's packet
            self._packet_deliveries += len(self._positions)
        return observations_from_packets(
            packets,
            self._positions,
            round_index,
            communication=self._communication,
            neighborhood_knowledge=self._neighborhood_knowledge,
            entry_ports=self._entry_ports,
        )

    # ------------------------------------------------------------------
    # Phase primitives
    # ------------------------------------------------------------------

    def _notify(self, method: str, *args) -> None:
        for observer in self._observers:
            getattr(observer, method)(*args)

    def _eligible_robots(self) -> Tuple[int, ...]:
        """Alive honest robots that can be activated (not in transit)."""
        return tuple(
            robot_id
            for robot_id in sorted(self._honest_positions())
            if robot_id not in self._pending_moves
        )

    def _phase_observe(self, snapshot, round_index: int):
        """Deliver/observe: build packets and hand out observations."""
        observations = self._communicate(snapshot, round_index)
        self._notify("on_communicate", round_index, observations)
        return observations

    def _phase_activate(
        self, round_index: int
    ) -> Tuple[Activation, FrozenSet[int]]:
        """Ask the scheduler who wakes this step; validate the answer.

        Byzantine robots are appended by the engine itself -- the
        adversary does not answer to the scheduler -- unless they are
        mid-traversal.
        """
        activation = self._scheduler.next_activation(
            round_index, self._eligible_robots()
        )
        active = frozenset(activation.active) | (
            (set(self._byzantine) & set(self._positions))
            - set(self._pending_moves)
        )
        if not set(active) <= set(self._positions):
            raise SimulationError(
                "activation schedule returned robots that are not alive"
            )
        if self._positions and not active and not self._pending_moves:
            raise SimulationError(
                "activation schedule returned an empty activation set"
            )
        return activation, active

    def _phase_compute(
        self, snapshot, round_index: int, observations, active: FrozenSet[int]
    ) -> Dict[int, Decision]:
        """Collect the decisions of all activated robots before applying
        any (decisions within a step are simultaneous)."""
        decisions: Dict[int, Decision] = {}
        for robot_id in sorted(active):
            policy = self._byzantine.get(robot_id)
            if policy is not None:
                node = self._positions[robot_id]
                port = policy.choose_move(
                    snapshot.degree(node), round_index
                )
                decisions[robot_id] = (
                    MoveDecision(port) if port is not None else StayDecision()
                )
                continue
            decision = self._algorithm.decide(observations[robot_id])
            if not isinstance(decision, (StayDecision, MoveDecision)):
                raise SimulationError(
                    f"algorithm returned {decision!r} for robot "
                    f"{robot_id}; expected StayDecision or MoveDecision"
                )
            decisions[robot_id] = decision
        self._notify("on_compute", round_index, decisions)
        return decisions

    def _phase_move(
        self,
        snapshot,
        round_index: int,
        decisions: Dict[int, Decision],
        activation: Activation,
        new_entry_ports: Dict[int, int],
    ) -> list:
        """Apply surviving moves; queue delayed ones as pending.

        The destination and entry port are resolved against the
        decision-time snapshot even for delayed moves: the robot began
        traversing the edge as it existed when the move was decided.
        """
        moved = []
        for robot_id in sorted(decisions):
            if robot_id not in self._positions:
                continue
            decision = decisions[robot_id]
            if isinstance(decision, MoveDecision):
                node = self._positions[robot_id]
                if decision.port > snapshot.degree(node):
                    raise SimulationError(
                        f"robot {robot_id} chose port {decision.port} "
                        f"but its node has degree {snapshot.degree(node)}"
                    )
                destination = snapshot.neighbor_via(node, decision.port)
                entry_port = snapshot.port_of(destination, node)
                delay = activation.move_delays.get(robot_id, 0)
                if delay > 0:
                    self._pending_moves[robot_id] = (
                        round_index + delay,
                        destination,
                        entry_port,
                    )
                    continue
                self._positions[robot_id] = destination
                new_entry_ports[robot_id] = entry_port
                moved.append(robot_id)
        return moved

    def _phase_settle(
        self, round_index: int, new_entry_ports: Dict[int, int]
    ) -> list:
        """Apply pending moves whose arrival step has come."""
        arrived = []
        for robot_id in sorted(self._pending_moves):
            arrival, destination, entry_port = self._pending_moves[robot_id]
            if arrival <= round_index:
                self._positions[robot_id] = destination
                new_entry_ports[robot_id] = entry_port
                arrived.append(robot_id)
        for robot_id in arrived:
            del self._pending_moves[robot_id]
        return arrived

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        """Execute rounds until dispersion, crash-out, or the round cap."""
        self._algorithm.on_run_start(self._k, self._n)
        self._notify("on_run_start", self._k, self._n)

        if self._is_dispersed():
            return self._result(
                TerminationReason.ALREADY_DISPERSED,
                rounds=0,
                total_moves=0,
                max_bits=self._audit_memory(),
                detected=True,
            )

        total_moves = 0
        max_bits = 0
        round_index = 0
        detected = False
        self._packets_broadcast = 0
        self._packet_deliveries = 0

        while round_index < self._max_rounds:
            # Adversary chooses G_r knowing the configuration so far.
            context = RoundContext(
                round_index=round_index,
                positions=dict(self._positions),
                ever_occupied=frozenset(self._ever_occupied),
            )
            snapshot = self._dynamic_graph.snapshot(round_index, context)
            if self._validate_graphs:
                validate_snapshot(
                    snapshot, expected_n=self._n, round_index=round_index
                )
            self._notify("on_round_start", round_index, snapshot)

            crashed_before = self._apply_crashes(
                round_index, CrashPhase.BEFORE_COMMUNICATE
            )
            if not self._positions:
                return self._result(
                    TerminationReason.ALL_CRASHED,
                    rounds=round_index,
                    total_moves=total_moves,
                    max_bits=max_bits,
                    detected=False,
                )

            positions_before = dict(self._positions)
            occupied_before = frozenset(self._positions.values())

            if self._is_dispersed() and not self._pending_moves:
                observations = self._phase_observe(snapshot, round_index)
                detected = all(
                    self._algorithm.detects_termination(observations[rid])
                    for rid in self._honest_positions()
                )
                return self._result(
                    TerminationReason.DISPERSED,
                    rounds=round_index,
                    total_moves=total_moves,
                    max_bits=max_bits,
                    detected=detected,
                )

            # Communicate / observe.
            self._algorithm.on_round_start(round_index)
            observations = self._phase_observe(snapshot, round_index)

            # Activate: the scheduler model picks who wakes this step
            # (everyone under FSYNC; inactive robots implicitly stay but
            # remain physically present in everyone's packets).
            activation, active = self._phase_activate(round_index)

            # Compute.
            decisions = self._phase_compute(
                snapshot, round_index, observations, active
            )

            crashed_after = self._apply_crashes(
                round_index, CrashPhase.AFTER_COMPUTE
            )

            # Move: simultaneous application (crashed robots' moves are
            # discarded; they vanished holding their marching orders),
            # then settle any earlier pending moves that arrive now.
            new_entry_ports: Dict[int, int] = {}
            moved = self._phase_move(
                snapshot, round_index, decisions, activation, new_entry_ports
            )
            moved += self._phase_settle(round_index, new_entry_ports)
            self._entry_ports = new_entry_ports
            total_moves += len(moved)
            self._ever_occupied.update(self._positions.values())
            moved_tuple = tuple(sorted(moved))
            self._notify(
                "on_move", round_index, moved_tuple, dict(self._positions)
            )

            round_bits = self._audit_memory()
            max_bits = max(max_bits, round_bits)

            timeline = not self._scheduler.is_fully_synchronous
            if timeline:
                self._last_epoch = activation.epoch
            if self._observers:
                record = RoundRecord(
                    round_index=round_index,
                    positions_before=positions_before,
                    positions_after=dict(self._positions),
                    moved_robots=moved_tuple,
                    crashed_before_communicate=crashed_before,
                    crashed_after_compute=crashed_after,
                    occupied_before=occupied_before,
                    occupied_after=frozenset(self._positions.values()),
                    num_components=len(
                        snapshot.induced_occupied_components(
                            occupied_before
                        )
                    ),
                    max_persistent_bits=round_bits,
                    snapshot=(
                        snapshot if self._collect_snapshots else None
                    ),
                    epoch=activation.epoch if timeline else None,
                    activated_robots=(
                        tuple(sorted(active)) if timeline else None
                    ),
                )
                self._notify("on_round_end", record)
            round_index += 1

        reason = (
            TerminationReason.DISPERSED
            if self._is_dispersed() and not self._pending_moves
            else TerminationReason.ROUND_LIMIT
        )
        return self._result(
            reason,
            rounds=round_index,
            total_moves=total_moves,
            max_bits=max_bits,
            detected=False,
        )

    def _result(
        self,
        reason: TerminationReason,
        *,
        rounds: int,
        total_moves: int,
        max_bits: int,
        detected: bool,
    ) -> RunResult:
        records = self._trace.records if self._trace is not None else []
        result = RunResult(
            reason=reason,
            rounds=rounds,
            k=self._k,
            n=self._n,
            initial_occupied=self._initial_occupied,
            final_positions=dict(self._positions),
            crashed_robots=tuple(sorted(self._crashed)),
            byzantine_robots=tuple(sorted(self._byzantine)),
            total_moves=total_moves,
            total_packets_broadcast=self._packets_broadcast,
            total_packet_deliveries=self._packet_deliveries,
            max_persistent_bits=max_bits,
            records=records,
            algorithm_detected_termination=detected,
            final_epoch=self._last_epoch,
        )
        self._notify("on_run_end", result)
        return result
