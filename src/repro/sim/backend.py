"""Engine execution backends: the phase-primitive strategy layer.

A :class:`~repro.sim.engine.SimulationEngine` owns the *model* of a run --
ground-truth positions, crash bookkeeping, the scheduler, termination
detection, observer notification, per-round records.  *How* each CCM
phase is executed is delegated to an :class:`EngineBackend`:

``observe``
    build per-node information packets and deliver observations;
``activate``
    ask the scheduler model who wakes this step and validate the answer;
``compute``
    collect the decisions of all activated robots (simultaneously);
``move`` / ``settle``
    apply surviving moves, queue and release scheduler-delayed ones;
``audit_memory``
    report the peak persistent bits across alive honest robots;
``count_occupied_components``
    the ground-truth component count recorded per round.

:class:`ReferenceBackend` is the seed-era pure-Python implementation,
moved here unchanged from ``sim/engine.py`` -- it is the semantic ground
truth and the default, so golden campaign digests and FSYNC run
fingerprints are byte-identical to every earlier release.  The
``vectorized`` backend (:mod:`repro.sim.backend_vectorized`) overrides
the hot phases with numpy struct-of-arrays kernels and must stay
bit-identical to this one; the cross-backend fingerprint tests enforce
that.

Backends are registered components: :func:`repro.sim.spec.register_backend`
adds a named factory, ``RunSpec(backend=ComponentSpec("vectorized"))`` or
``cli run --backend vectorized`` selects one per run.

A backend instance belongs to one engine at a time: the engine calls
:meth:`EngineBackend.bind` during construction, which also resets any
per-run caches, so a fresh backend instance per engine (what the
component factories produce) is the normal pattern.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.robots.memory import bits_for_state
from repro.sim.algorithm import Decision, MoveDecision, StayDecision
from repro.sim.observation import (
    CommunicationModel,
    InfoPacket,
    Observation,
    build_info_packets,
    observations_from_packets,
)
from repro.sim.scheduling import Activation

if TYPE_CHECKING:  # pragma: no cover - circular-import guard (annotations)
    from repro.graph.snapshot import GraphSnapshot
    from repro.sim.engine import SimulationEngine

__all__ = [
    "EngineBackend",
    "PHASE_MUTABLE_ATTRS",
    "PHASE_OUT_PARAMS",
    "ReferenceBackend",
]

#: The machine-checked phase contract: which engine-state attributes
#: each phase primitive may mutate (directly or through any callee).
#: ``repro lint --effects`` enforces this transitively over every
#: registered backend -- reference, vectorized and future ones alike
#: (rule E001 in :mod:`repro.lint.deep.contracts`); backend-private
#: caches (``self._csr`` and friends) are always fair game.  Widening a
#: phase's row here is an API change: it must come with a docs/model.md
#: contract-table update and a cross-backend equivalence argument.
PHASE_MUTABLE_ATTRS: Mapping[str, FrozenSet[str]] = {
    # observe charges the packet counters and nothing else.
    "observe": frozenset({"_packets_broadcast", "_packet_deliveries"}),
    # activate steps the scheduler model (its internal queues advance).
    "activate": frozenset({"_scheduler"}),
    # compute may advance per-robot algorithm memory, nothing physical.
    "compute": frozenset({"_algorithm"}),
    # move/settle own the position and pending-move bookkeeping.
    "move": frozenset({"_positions", "_pending_moves"}),
    "settle": frozenset({"_positions", "_pending_moves"}),
    # pure audits: read-only on engine state.
    "audit_memory": frozenset(),
    "count_occupied_components": frozenset(),
}

#: Phase parameters that are documented out-parameters -- the only
#: payload arguments a phase body may write into (rule E002 flags every
#: other parameter mutation).
PHASE_OUT_PARAMS: Mapping[str, FrozenSet[str]] = {
    "move": frozenset({"new_entry_ports"}),
    "settle": frozenset({"new_entry_ports"}),
}


class EngineBackend(ABC):
    """Strategy interface for executing the engine's CCM phase primitives.

    Subclasses implement the six phase methods against the bound engine's
    state (``engine._positions``, ``engine._pending_moves``, ...).  The
    engine remains the single owner of that state; backends read and
    mutate it through the documented phase contracts but never drive the
    round loop, fire observers, or construct records themselves.

    The contract is statically enforced: ``repro lint --effects``
    infers each phase implementation's transitive side effects and
    checks them against :data:`PHASE_MUTABLE_ATTRS` /
    :data:`PHASE_OUT_PARAMS`, so a stray in-place write in any
    registered backend fails CI instead of silently corrupting results.
    """

    #: Registry-facing name; informational (the registry key is what the
    #: spec layer uses for lookup and serialization).
    name: str = "abstract"

    def __init__(self) -> None:
        self._engine: Optional["SimulationEngine"] = None

    def bind(self, engine: "SimulationEngine") -> None:
        """Attach to ``engine`` (called by the engine constructor).

        Rebinding to a different engine is allowed and resets any
        per-run caches via :meth:`on_bind`.
        """
        self._engine = engine
        self.on_bind()

    def on_bind(self) -> None:
        """Hook for subclasses to reset per-run caches on (re)bind."""

    @property
    def engine(self) -> "SimulationEngine":
        """The bound engine; raises if the backend is unbound."""
        if self._engine is None:
            raise RuntimeError(
                f"backend {self.name!r} is not bound to an engine"
            )
        return self._engine

    # -- phase primitives ------------------------------------------------

    @abstractmethod
    def observe(
        self, snapshot: "GraphSnapshot", round_index: int
    ) -> Mapping[int, Observation]:
        """Communicate/observe: build packets, apply byzantine forgery,
        deliver observations, and charge the packet counters."""

    @abstractmethod
    def activate(
        self, round_index: int
    ) -> Tuple[Activation, FrozenSet[int]]:
        """Ask the scheduler who wakes this step; validate the answer."""

    @abstractmethod
    def compute(
        self,
        snapshot: "GraphSnapshot",
        round_index: int,
        observations: Mapping[int, Observation],
        active: FrozenSet[int],
    ) -> Dict[int, Decision]:
        """Collect the decisions of all activated robots before any is
        applied (decisions within a step are simultaneous)."""

    @abstractmethod
    def move(
        self,
        snapshot: "GraphSnapshot",
        round_index: int,
        decisions: Dict[int, Decision],
        activation: Activation,
        new_entry_ports: Dict[int, int],
    ) -> List[int]:
        """Apply surviving moves; queue scheduler-delayed ones as pending."""

    @abstractmethod
    def settle(
        self, round_index: int, new_entry_ports: Dict[int, int]
    ) -> List[int]:
        """Apply pending moves whose arrival step has come."""

    @abstractmethod
    def audit_memory(self) -> int:
        """Peak persistent bits across alive honest robots, right now."""

    @abstractmethod
    def count_occupied_components(
        self, snapshot: "GraphSnapshot", occupied: FrozenSet[int]
    ) -> int:
        """Number of connected components induced by ``occupied`` in
        ``snapshot`` (the per-round record's ground-truth metric)."""


class ReferenceBackend(EngineBackend):
    """The seed-era pure-Python phase implementations, verbatim.

    This is the default backend and the semantic ground truth: every
    alternative backend must be bit-identical to it on the same spec
    (same ``RunResult`` JSON, same packet counters, same records).
    """

    name = "reference"

    def observe(
        self, snapshot: "GraphSnapshot", round_index: int
    ) -> Mapping[int, Observation]:
        """Build packets, apply byzantine forgery, deliver observations."""
        from repro.sim.engine import SimulationError

        engine = self.engine
        packets = build_info_packets(
            snapshot,
            engine._positions,
            neighborhood_knowledge=engine._neighborhood_knowledge,
        )
        if engine._byzantine:
            forged: Dict[int, InfoPacket] = {}
            for node, packet in packets.items():
                policy = engine._byzantine.get(packet.representative_id)
                if policy is not None:
                    packet = policy.forge_packet(packet, round_index)
                    if packet.representative_id not in engine._positions:
                        raise SimulationError(
                            "byzantine forgery changed the representative "
                            "ID; identities are unforgeable in the model"
                        )
                forged[node] = packet
            packets = forged
        engine._packets_broadcast += len(packets)
        if engine._communication is CommunicationModel.GLOBAL:
            engine._packet_deliveries += len(packets) * len(engine._positions)
        else:
            # local: each robot receives only its own node's packet
            engine._packet_deliveries += len(engine._positions)
        return observations_from_packets(
            packets,
            engine._positions,
            round_index,
            communication=engine._communication,
            neighborhood_knowledge=engine._neighborhood_knowledge,
            entry_ports=engine._entry_ports,
        )

    def activate(
        self, round_index: int
    ) -> Tuple[Activation, FrozenSet[int]]:
        """Ask the scheduler who wakes this step; validate the answer.

        Byzantine robots are appended by the engine itself -- the
        adversary does not answer to the scheduler -- unless they are
        mid-traversal.
        """
        from repro.sim.engine import SimulationError

        engine = self.engine
        activation = engine._scheduler.next_activation(
            round_index, engine._eligible_robots()
        )
        active = frozenset(activation.active) | (
            (set(engine._byzantine) & set(engine._positions))
            - set(engine._pending_moves)
        )
        if not set(active) <= set(engine._positions):
            raise SimulationError(
                "activation schedule returned robots that are not alive"
            )
        if engine._positions and not active and not engine._pending_moves:
            raise SimulationError(
                "activation schedule returned an empty activation set"
            )
        return activation, active

    def compute(
        self,
        snapshot: "GraphSnapshot",
        round_index: int,
        observations: Mapping[int, Observation],
        active: FrozenSet[int],
    ) -> Dict[int, Decision]:
        """Collect the decisions of all activated robots before applying
        any (decisions within a step are simultaneous)."""
        from repro.sim.engine import SimulationError

        engine = self.engine
        decisions: Dict[int, Decision] = {}
        for robot_id in sorted(active):
            policy = engine._byzantine.get(robot_id)
            if policy is not None:
                node = engine._positions[robot_id]
                port = policy.choose_move(snapshot.degree(node), round_index)
                decisions[robot_id] = (
                    MoveDecision(port) if port is not None else StayDecision()
                )
                continue
            decision = engine._algorithm.decide(observations[robot_id])
            if not isinstance(decision, (StayDecision, MoveDecision)):
                raise SimulationError(
                    f"algorithm returned {decision!r} for robot "
                    f"{robot_id}; expected StayDecision or MoveDecision"
                )
            decisions[robot_id] = decision
        return decisions

    def move(
        self,
        snapshot: "GraphSnapshot",
        round_index: int,
        decisions: Dict[int, Decision],
        activation: Activation,
        new_entry_ports: Dict[int, int],
    ) -> List[int]:
        """Apply surviving moves; queue delayed ones as pending.

        The destination and entry port are resolved against the
        decision-time snapshot even for delayed moves: the robot began
        traversing the edge as it existed when the move was decided.
        """
        from repro.sim.engine import SimulationError

        engine = self.engine
        moved: List[int] = []
        for robot_id in sorted(decisions):
            if robot_id not in engine._positions:
                continue
            decision = decisions[robot_id]
            if isinstance(decision, MoveDecision):
                node = engine._positions[robot_id]
                if decision.port > snapshot.degree(node):
                    raise SimulationError(
                        f"robot {robot_id} chose port {decision.port} "
                        f"but its node has degree {snapshot.degree(node)}"
                    )
                destination = snapshot.neighbor_via(node, decision.port)
                entry_port = snapshot.port_of(destination, node)
                delay = activation.move_delays.get(robot_id, 0)
                if delay > 0:
                    engine._pending_moves[robot_id] = (
                        round_index + delay,
                        destination,
                        entry_port,
                    )
                    continue
                engine._positions[robot_id] = destination
                new_entry_ports[robot_id] = entry_port
                moved.append(robot_id)
        return moved

    def settle(
        self, round_index: int, new_entry_ports: Dict[int, int]
    ) -> List[int]:
        """Apply pending moves whose arrival step has come."""
        engine = self.engine
        arrived: List[int] = []
        for robot_id in sorted(engine._pending_moves):
            arrival, destination, entry_port = engine._pending_moves[robot_id]
            if arrival <= round_index:
                engine._positions[robot_id] = destination
                new_entry_ports[robot_id] = entry_port
                arrived.append(robot_id)
        for robot_id in arrived:
            del engine._pending_moves[robot_id]
        return arrived

    def audit_memory(self) -> int:
        """Peak persistent bits across alive honest robots, right now.

        Byzantine robots are adversarial and unbounded; auditing them
        would be meaningless.
        """
        engine = self.engine
        bounds = engine._algorithm.persistent_state_bounds(
            engine._k, engine._n
        )
        peak = 0
        for robot_id in engine._honest_positions():
            state = engine._algorithm.persistent_state(robot_id)
            peak = max(peak, bits_for_state(state, bounds=bounds))
        return peak

    def count_occupied_components(
        self, snapshot: "GraphSnapshot", occupied: FrozenSet[int]
    ) -> int:
        return len(snapshot.induced_occupied_components(occupied))
