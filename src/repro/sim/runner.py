"""Pluggable execution backends for grids of :class:`RunSpec`.

A :class:`Runner` turns a sequence of specs into the matching sequence of
:class:`~repro.sim.metrics.RunResult` s.  Two backends ship:

* :class:`SerialRunner` -- runs specs one after another in-process.  The
  reference backend: zero overhead, exact legacy behavior.
* :class:`ProcessPoolRunner` -- fans specs out across a
  ``concurrent.futures.ProcessPoolExecutor``.  Because specs are pure
  data and :func:`repro.sim.spec.execute` is a module-level function of
  the spec alone, every worker reconstructs its runs independently and
  the results are **bit-identical** to the serial backend (the
  equivalence is pinned by ``tests/test_runner.py`` and the
  ``bench_runner_scaling`` benchmark report).

The pool backend is fault-tolerant.  Each dispatched work unit carries a
bounded retry budget with exponential backoff (``retries`` /
``retry_backoff``), an optional per-unit wall-clock ``timeout``, and the
pool itself survives worker loss: when a worker dies (killed, OOMed, or
wedged past its timeout) the pool is rebuilt -- up to ``max_restarts``
times per :meth:`~ProcessPoolRunner.run` call -- and every unfinished
unit is re-dispatched, never silently dropped.  A unit that exhausts its
budget raises :class:`RunnerError` naming the offending specs.  Pools
constructed with ``store=`` route execution through
:func:`repro.sim.store.execute_through_store`, so workers share one
content-addressed cache and a re-dispatched unit recomputes only the
specs that had not been stored before the fault.

Both backends return results **in spec order**, regardless of completion
order, so downstream analysis can zip specs with results.

:func:`runner_from_jobs` maps a CLI-style ``--jobs N`` value onto a
backend (``N <= 1`` -> serial), which is how ``repro-dispersion
sweep/faults/campaign --jobs`` and the ``REPRO_JOBS`` environment knob
for benchmarks are implemented; its ``store=`` argument layers a
:class:`~repro.sim.store.CachingRunner` on top.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
)

from repro.sim.metrics import RunResult
from repro.sim.spec import RunSpec, execute

if TYPE_CHECKING:  # pragma: no cover - circular-import guard (annotations)
    from repro.sim.store import RunStore

#: Signature of :class:`ProcessPoolRunner`'s optional fault-event hook:
#: ``hook(kind, spec_indices, attempt, detail)`` where ``kind`` is one of
#: ``"timeout"`` (a unit exceeded its wall-clock budget), ``"crash"`` (a
#: worker process was lost and broke the pool) or ``"exception"`` (the
#: dispatched task raised).  ``spec_indices`` are the unit's positions in
#: the current :meth:`~ProcessPoolRunner.run` call's spec sequence and
#: ``attempt`` is how many times the unit has been charged so far.  The
#: hook observes; recovery (retry, pool rebuild, re-dispatch) proceeds
#: exactly as without one.  This is what :mod:`repro.chaos` builds its
#: structured ``FailureRecord`` stream on.
FailureHook = Callable[[str, List[int], int, str], None]


class RunnerError(RuntimeError):
    """A spec grid could not be executed within the fault budget."""


class Runner:
    """Abstract execution backend for a sequence of :class:`RunSpec`."""

    #: Human-readable backend name (used in reports and ``--json`` output).
    name: str = "abstract"

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Execute every spec; results are returned in spec order."""
        raise NotImplementedError

    def map(self, specs: Iterable[RunSpec]) -> List[RunResult]:
        """Alias of :meth:`run` accepting any iterable of specs."""
        return self.run(list(specs))

    def close(self) -> None:
        """Release backend resources (no-op for stateless backends)."""

    def __enter__(self) -> "Runner":
        """Context-manager entry: the runner itself."""
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        """Context-manager exit: close the backend."""
        self.close()


class SerialRunner(Runner):
    """Runs every spec sequentially in the current process."""

    name = "serial"

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Execute specs one by one, in order."""
        return [execute(spec) for spec in specs]


def _run_unit(
    specs: List[RunSpec],
    store_root: Optional[str],
    store_salt: Optional[str],
    store_durability: str,
) -> List[RunResult]:
    """Worker-side task: execute one dispatched chunk of specs.

    Module-level and pure, hence picklable.  With a store configured the
    worker itself checks the cache and writes results through (at the
    parent store's durability mode), so a unit re-dispatched after a
    worker loss recomputes only what the lost worker had not yet
    persisted.
    """
    if store_root is None:
        return [execute(spec) for spec in specs]
    from repro.sim.store import execute_through_store

    return [
        execute_through_store(
            spec, store_root, store_salt or "", durability=store_durability
        )
        for spec in specs
    ]


class ProcessPoolRunner(Runner):
    """Fans specs out across worker processes, tolerating faults.

    ``max_workers=None`` uses ``os.cpu_count()``.  Workers are spawned
    lazily on first :meth:`run` and reused across calls; call
    :meth:`close` (or use the runner as a context manager) to shut the
    pool down.

    ``chunksize`` batches specs per dispatched work unit -- raise it for
    grids of many very short runs.  ``timeout`` bounds each unit's
    wall-clock seconds (measured from when a worker picks it up);
    ``retries`` re-dispatches a failed or timed-out unit up to that many
    extra times, sleeping ``retry_backoff * 2**attempt`` seconds between
    tries.  A worker loss breaks the whole executor; the runner rebuilds
    it (at most ``max_restarts`` times per call) and re-dispatches every
    unfinished unit.  ``store`` (a :class:`~repro.sim.store.RunStore`)
    makes workers execute through the shared content-addressed cache.
    ``failure_hook`` (a :data:`FailureHook`) observes every fault event
    -- timeout, worker loss, task exception -- as it is handled; it never
    changes recovery behavior.
    """

    name = "process_pool"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        *,
        chunksize: int = 1,
        timeout: Optional[float] = None,
        retries: int = 0,
        retry_backoff: float = 0.05,
        max_restarts: int = 3,
        store: Optional["RunStore"] = None,
        failure_hook: Optional[FailureHook] = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        self.max_workers = max_workers
        self.chunksize = chunksize
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.max_restarts = max_restarts
        self.store = store
        self.failure_hook = failure_hook
        self._pool: Optional[ProcessPoolExecutor] = None

    def _notify_failure(
        self, kind: str, unit: List[int], attempt: int, detail: str
    ) -> None:
        if self.failure_hook is not None:
            self.failure_hook(kind, list(unit), attempt, detail)

    @property
    def effective_workers(self) -> int:
        """The worker count the pool will actually use."""
        if self.max_workers is not None:
            return self.max_workers
        return os.cpu_count() or 1

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def _discard_pool(self) -> None:
        """Forcefully drop the pool (used on worker loss / timeout)."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        # Terminate workers first: a wedged worker would otherwise make
        # the executor's shutdown join hang forever.
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.terminate()
            except Exception:
                pass
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:
            pass

    def close(self) -> None:
        """Shut down the worker pool gracefully."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _submit(
        self, pool: ProcessPoolExecutor, specs: Sequence[RunSpec], unit: List[int]
    ) -> Future:
        store_root = str(self.store.root) if self.store is not None else None
        store_salt = self.store.salt if self.store is not None else None
        durability = (
            self.store.durability if self.store is not None else "fast"
        )
        return pool.submit(
            _run_unit,
            [specs[i] for i in unit],
            store_root,
            store_salt,
            durability,
        )

    @staticmethod
    def _unit_label(specs: Sequence[RunSpec], unit: List[int]) -> str:
        labels = [specs[i].label or f"spec#{i}" for i in unit]
        return ", ".join(labels)

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Execute specs across the pool; results come back in spec order.

        Work units (chunks of ``chunksize`` specs) are dispatched
        concurrently; completed units are harvested as they finish and
        faults are handled per the class docstring.
        """
        if not specs:
            return []
        units = [
            list(range(start, min(start + self.chunksize, len(specs))))
            for start in range(0, len(specs), self.chunksize)
        ]
        results: Dict[int, RunResult] = {}
        attempts = [0] * len(units)
        pending = list(range(len(units)))
        restarts = 0

        while pending:
            pool = self._ensure_pool()
            futures: Dict[Future, int] = {}
            deadlines: Dict[Future, float] = {}
            for unit_index in pending:
                futures[self._submit(pool, specs, units[unit_index])] = (
                    unit_index
                )
            pending = []
            broken = False

            while futures and not broken:
                poll = 0.05 if self.timeout is not None else None
                done, _ = wait(
                    set(futures), timeout=poll, return_when=FIRST_COMPLETED
                )
                now = time.monotonic()

                if self.timeout is not None:
                    # The per-unit clock starts when a worker picks the
                    # unit up, not at submission: queued units are not
                    # charged for their predecessors' runtime.
                    for future in futures:
                        if future not in deadlines and future.running():
                            deadlines[future] = now + self.timeout
                    expired = [
                        future
                        for future, deadline in deadlines.items()
                        if now >= deadline and not future.done()
                    ]
                    for future in expired:
                        unit_index = futures.pop(future)
                        deadlines.pop(future, None)
                        attempts[unit_index] += 1
                        self._notify_failure(
                            "timeout",
                            units[unit_index],
                            attempts[unit_index],
                            f"unit exceeded the {self.timeout}s timeout",
                        )
                        if attempts[unit_index] > self.retries:
                            self._discard_pool()
                            raise RunnerError(
                                f"unit [{self._unit_label(specs, units[unit_index])}] "
                                f"exceeded the {self.timeout}s timeout on "
                                f"{attempts[unit_index]} attempt(s)"
                            )
                        pending.append(unit_index)
                    if expired:
                        # A wedged worker cannot be reclaimed through the
                        # executor API; rebuild the pool.
                        broken = True

                for future in done:
                    unit_index = futures.pop(future, None)
                    if unit_index is None:
                        continue
                    deadlines.pop(future, None)
                    error = future.exception()
                    if error is None:
                        for offset, result in zip(
                            units[unit_index], future.result()
                        ):
                            results[offset] = result
                        continue
                    if isinstance(error, BrokenExecutor):
                        # A worker died; which unit killed it is unknown,
                        # so re-dispatch without charging the budget.
                        self._notify_failure(
                            "crash",
                            units[unit_index],
                            attempts[unit_index],
                            "worker process lost (pool broken)",
                        )
                        pending.append(unit_index)
                        broken = True
                        continue
                    attempts[unit_index] += 1
                    self._notify_failure(
                        "exception",
                        units[unit_index],
                        attempts[unit_index],
                        repr(error),
                    )
                    if attempts[unit_index] > self.retries:
                        self._discard_pool()
                        raise RunnerError(
                            f"unit [{self._unit_label(specs, units[unit_index])}] "
                            f"failed after {attempts[unit_index]} attempt(s): "
                            f"{error!r}"
                        ) from error
                    if self.retry_backoff > 0:
                        time.sleep(
                            min(
                                self.retry_backoff
                                * 2 ** (attempts[unit_index] - 1),
                                2.0,
                            )
                        )
                    if broken:
                        pending.append(unit_index)
                        continue
                    try:
                        futures[self._submit(pool, specs, units[unit_index])] = (
                            unit_index
                        )
                    except BrokenExecutor:
                        pending.append(unit_index)
                        broken = True

            if broken:
                # Harvest whatever finished cleanly; everything else is
                # re-dispatched on the rebuilt pool.
                for future, unit_index in futures.items():
                    if (
                        future.done()
                        and not future.cancelled()
                        and future.exception() is None
                    ):
                        for offset, result in zip(
                            units[unit_index], future.result()
                        ):
                            results[offset] = result
                    else:
                        if (
                            future.done()
                            and not future.cancelled()
                            and future.exception() is not None
                        ):
                            # The break failed this future before the
                            # harvesting loop saw it; report it here so a
                            # lost unit is observed no matter which path
                            # collects it.  Re-dispatch stays uncharged.
                            error = future.exception()
                            if isinstance(error, BrokenExecutor):
                                self._notify_failure(
                                    "crash",
                                    units[unit_index],
                                    attempts[unit_index],
                                    "worker process lost (pool broken)",
                                )
                            else:
                                self._notify_failure(
                                    "exception",
                                    units[unit_index],
                                    attempts[unit_index],
                                    repr(error),
                                )
                        pending.append(unit_index)
                restarts += 1
                if restarts > self.max_restarts:
                    self._discard_pool()
                    raise RunnerError(
                        f"worker pool failed {restarts} times (limit "
                        f"{self.max_restarts}); giving up with "
                        f"{len(pending)} unit(s) unfinished"
                    )
                self._discard_pool()

        return [results[index] for index in range(len(specs))]


def runner_from_jobs(
    jobs: Optional[int],
    *,
    timeout: Optional[float] = None,
    retries: int = 0,
    store: Optional["RunStore"] = None,
) -> Runner:
    """Map a ``--jobs N`` value onto a backend.

    ``None``, ``0`` or ``1`` -> :class:`SerialRunner`; ``N >= 2`` ->
    :class:`ProcessPoolRunner` with ``N`` workers; ``-1`` -> a pool
    sized to the machine (``os.cpu_count()``).  ``timeout`` / ``retries``
    configure the pool's fault budget (ignored for serial execution,
    which has no worker to lose).  ``store`` wraps the backend in a
    :class:`~repro.sim.store.CachingRunner` over the given
    :class:`~repro.sim.store.RunStore` -- pool workers additionally
    write through it directly.
    """
    runner: Runner
    if jobs is None or jobs in (0, 1):
        runner = SerialRunner()
    elif jobs == -1:
        runner = ProcessPoolRunner(timeout=timeout, retries=retries, store=store)
    elif jobs < -1:
        raise ValueError(f"jobs must be >= -1, got {jobs}")
    else:
        runner = ProcessPoolRunner(
            max_workers=jobs, timeout=timeout, retries=retries, store=store
        )
    if store is not None:
        from repro.sim.store import CachingRunner

        runner = CachingRunner(runner, store)
    return runner
