"""Pluggable execution backends for grids of :class:`RunSpec`.

A :class:`Runner` turns a sequence of specs into the matching sequence of
:class:`~repro.sim.metrics.RunResult` s.  Two backends ship:

* :class:`SerialRunner` -- runs specs one after another in-process.  The
  reference backend: zero overhead, exact legacy behavior.
* :class:`ProcessPoolRunner` -- fans specs out across a
  ``concurrent.futures.ProcessPoolExecutor``.  Because specs are pure
  data and :func:`repro.sim.spec.execute` is a module-level function of
  the spec alone, every worker reconstructs its runs independently and
  the results are **bit-identical** to the serial backend (the
  equivalence is pinned by ``tests/test_runner.py`` and the
  ``bench_runner_scaling`` benchmark report).

Both backends return results **in spec order**, regardless of completion
order, so downstream analysis can zip specs with results.

:func:`runner_from_jobs` maps a CLI-style ``--jobs N`` value onto a
backend (``N <= 1`` -> serial), which is how ``repro-dispersion
sweep/faults/campaign --jobs`` and the ``REPRO_JOBS`` environment knob
for benchmarks are implemented.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, List, Optional, Sequence

from repro.sim.metrics import RunResult
from repro.sim.spec import RunSpec, execute


class Runner:
    """Abstract execution backend for a sequence of :class:`RunSpec`."""

    #: Human-readable backend name (used in reports and ``--json`` output).
    name: str = "abstract"

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Execute every spec; results are returned in spec order."""
        raise NotImplementedError

    def map(self, specs: Iterable[RunSpec]) -> List[RunResult]:
        """Alias of :meth:`run` accepting any iterable of specs."""
        return self.run(list(specs))

    def close(self) -> None:
        """Release backend resources (no-op for stateless backends)."""

    def __enter__(self) -> "Runner":
        """Context-manager entry: the runner itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: close the backend."""
        self.close()


class SerialRunner(Runner):
    """Runs every spec sequentially in the current process."""

    name = "serial"

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Execute specs one by one, in order."""
        return [execute(spec) for spec in specs]


class ProcessPoolRunner(Runner):
    """Fans specs out across worker processes.

    ``max_workers=None`` uses ``os.cpu_count()``.  Workers are spawned
    lazily on first :meth:`run` and reused across calls; call
    :meth:`close` (or use the runner as a context manager) to shut the
    pool down.  ``chunksize`` batches specs per worker round-trip --
    raise it for grids of many very short runs.
    """

    name = "process_pool"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        *,
        chunksize: int = 1,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.max_workers = max_workers
        self.chunksize = chunksize
        self._pool: Optional[ProcessPoolExecutor] = None

    @property
    def effective_workers(self) -> int:
        """The worker count the pool will actually use."""
        if self.max_workers is not None:
            return self.max_workers
        return os.cpu_count() or 1

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Execute specs across the pool; ``executor.map`` preserves
        submission order, so results come back in spec order."""
        if not specs:
            return []
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return list(
            self._pool.map(execute, specs, chunksize=self.chunksize)
        )

    def close(self) -> None:
        """Shut down the worker pool."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


def runner_from_jobs(jobs: Optional[int]) -> Runner:
    """Map a ``--jobs N`` value onto a backend.

    ``None``, ``0`` or ``1`` -> :class:`SerialRunner`; ``N >= 2`` ->
    :class:`ProcessPoolRunner` with ``N`` workers; ``-1`` -> a pool
    sized to the machine (``os.cpu_count()``).
    """
    if jobs is None or jobs in (0, 1):
        return SerialRunner()
    if jobs == -1:
        return ProcessPoolRunner()
    if jobs < -1:
        raise ValueError(f"jobs must be >= -1, got {jobs}")
    return ProcessPoolRunner(max_workers=jobs)
