"""The ``vectorized`` engine backend: numpy struct-of-arrays kernels.

The reference backend rebuilds per-robot :class:`InfoPacket` /
:class:`Observation` objects, component graphs, spanning trees, and
root-path sets as dicts and dataclasses every round.  This backend keeps
the same engine-owned ground truth but executes the hot phases on flat
integer arrays:

* the round snapshot becomes a CSR adjacency table (``indptr`` +
  port-ordered ``neighbors``; cached per snapshot object, so static
  graphs pay the conversion once per run);
* alive robots become sorted ``(node, id)`` arrays, from which per-node
  representative / multiplicity / max-id columns fall out of one
  ``lexsort``;
* the occupied subgraph's edges are extracted with one vectorized mask
  and its connected components labeled by the batched min-label kernel
  :func:`label_occupied_components`;
* spanning-tree construction, disjoint root-path selection, and the
  sliding rule run as tight index loops over those arrays, reproducing
  Algorithm 2/3/4's tie-breaks exactly (decreasing-port DFS pushes,
  increasing-leaf-ID path selection with early exit at the truncation
  cap, smallest-stays root rule, largest-moves interior rule).

Observations are delivered lazily: the engine and the fast compute path
never read them (the move map is computed from the arrays), so packet
objects are only materialized -- via the reference code path, for
byte-identical content -- when an observer or the termination-detection
round actually subscripts the mapping.

Every fast path falls back to the inherited :class:`ReferenceBackend`
implementation when its preconditions do not hold (byzantine robots,
local communication, a subclassed algorithm, ...), so the backend is
*always* bit-identical to the reference -- the cross-backend fingerprint
tests enforce this across the golden campaign and all scheduler models.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.dispersion import DispersionDynamic
from repro.robots.memory import bits_for_state
from repro.sim.algorithm import (
    Decision,
    MoveDecision,
    RobotAlgorithm,
    STAY,
)
from repro.sim.backend import ReferenceBackend
from repro.sim.observation import (
    CommunicationModel,
    Observation,
    build_info_packets,
    observations_from_packets,
)

__all__ = [
    "VectorizedBackend",
    "label_occupied_components",
    "occupied_subgraph_edges",
    "snapshot_to_csr",
]


# ----------------------------------------------------------------------
# Array kernels (pure functions; pinned by the kernel golden tests)
# ----------------------------------------------------------------------


def snapshot_to_csr(snapshot) -> Tuple[np.ndarray, np.ndarray]:
    """A snapshot as CSR adjacency: ``(indptr, neighbors)``.

    ``neighbors[indptr[v]:indptr[v + 1]]`` lists ``v``'s neighbors in
    increasing port order, so the port of entry ``j`` of the slice is
    ``j + 1`` (ports are a bijection onto ``1..degree``).
    """
    n = snapshot.n
    indptr = np.zeros(n + 1, dtype=np.int64)
    flat: List[int] = []
    for v in range(n):
        nbrs = snapshot.neighbors(v)
        indptr[v + 1] = indptr[v] + len(nbrs)
        flat.extend(nbrs)
    return indptr, np.asarray(flat, dtype=np.int64)


def occupied_subgraph_edges(
    indptr: np.ndarray, neighbors: np.ndarray, occupied_nodes: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Directed edges of the occupied-induced subgraph, batched.

    ``occupied_nodes`` is the sorted array of occupied node ids; returns
    ``(src, dst, port)`` where ``src``/``dst`` are *indices into*
    ``occupied_nodes`` and ``port`` is the port at ``src``'s node toward
    ``dst``'s node.  Edges are grouped by ``src`` in increasing port
    order (the order every per-component tie-break needs).
    """
    n = indptr.shape[0] - 1
    n_occ = occupied_nodes.shape[0]
    occ_of_node = np.full(n, -1, dtype=np.int64)
    occ_of_node[occupied_nodes] = np.arange(n_occ, dtype=np.int64)
    counts = indptr[occupied_nodes + 1] - indptr[occupied_nodes]
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    seg_start = np.zeros(n_occ, dtype=np.int64)
    np.cumsum(counts[:-1], out=seg_start[1:])
    rel = np.arange(total, dtype=np.int64) - np.repeat(seg_start, counts)
    gathered = neighbors[np.repeat(indptr[occupied_nodes], counts) + rel]
    dst = occ_of_node[gathered]
    keep = dst >= 0
    src = np.repeat(np.arange(n_occ, dtype=np.int64), counts)[keep]
    return src, dst[keep], (rel + 1)[keep]


def label_occupied_components(
    indptr: np.ndarray, neighbors: np.ndarray, occupied_nodes: np.ndarray
) -> np.ndarray:
    """Connected-component labels of the occupied-induced subgraph.

    Batched min-label propagation with pointer jumping: every occupied
    node starts labeled with its own index into ``occupied_nodes`` and
    repeatedly adopts the minimum label across its occupied edges until
    a fixed point.  The returned canonical label of a node is therefore
    the *smallest index* (== the node with the smallest id, since
    ``occupied_nodes`` is sorted) of its component -- a deterministic,
    pinnable labeling.
    """
    occupied_nodes = np.asarray(occupied_nodes, dtype=np.int64)
    src, dst, _ = occupied_subgraph_edges(indptr, neighbors, occupied_nodes)
    return _label_from_edges(occupied_nodes.shape[0], src, dst)


def _label_from_edges(
    n_occ: int, src: np.ndarray, dst: np.ndarray
) -> np.ndarray:
    labels = np.arange(n_occ, dtype=np.int64)
    while True:
        nxt = labels.copy()
        if src.size:
            np.minimum.at(nxt, src, labels[dst])
        nxt = np.minimum(nxt, nxt[nxt])  # pointer jump: O(log) convergence
        if np.array_equal(nxt, labels):
            return labels
        labels = nxt


# ----------------------------------------------------------------------
# Lazy observation delivery
# ----------------------------------------------------------------------


class _LazyObservations(Mapping):
    """``{robot_id: Observation}`` materialized on first subscript.

    The fast compute path reads the round's arrays instead, so for most
    rounds no packet object is ever built; when an observer (or the
    termination-detection round) does subscript, the reference packet
    pipeline runs on state captured at observe time, producing content
    byte-identical to the reference backend's eager delivery.
    """

    __slots__ = (
        "_snapshot",
        "_round_index",
        "_positions",
        "_entry_ports",
        "_communication",
        "_neighborhood_knowledge",
        "_materialized",
    )

    def __init__(
        self,
        snapshot,
        round_index: int,
        positions: Dict[int, int],
        entry_ports: Dict[int, int],
        communication: CommunicationModel,
        neighborhood_knowledge: bool,
    ) -> None:
        self._snapshot = snapshot
        self._round_index = round_index
        self._positions = positions
        self._entry_ports = entry_ports
        self._communication = communication
        self._neighborhood_knowledge = neighborhood_knowledge
        self._materialized: Optional[Mapping[int, Observation]] = None

    def _materialize(self) -> Mapping[int, Observation]:
        if self._materialized is None:
            packets = build_info_packets(
                self._snapshot,
                self._positions,
                neighborhood_knowledge=self._neighborhood_knowledge,
            )
            self._materialized = observations_from_packets(
                packets,
                self._positions,
                self._round_index,
                communication=self._communication,
                neighborhood_knowledge=self._neighborhood_knowledge,
                entry_ports=self._entry_ports,
            )
        return self._materialized

    def __getitem__(self, robot_id: int) -> Observation:
        return self._materialize()[robot_id]

    def __iter__(self) -> Iterator[int]:
        return iter(self._positions)

    def __len__(self) -> int:
        return len(self._positions)


# ----------------------------------------------------------------------
# Per-round struct-of-arrays state
# ----------------------------------------------------------------------


class _RoundArrays:
    """Everything the fast paths need about one round, as flat arrays."""

    __slots__ = (
        "snapshot",
        "round_index",
        "occupied",
        "occ_nodes",
        "rep",
        "counts",
        "max_id",
        "robots_sorted",
        "group_start",
        "degree",
        "adj_offset",
        "adj_dst",
        "adj_port",
        "num_components",
        "mult_components",
        "has_multiplicity",
        "moves",
    )

    def __init__(
        self,
        snapshot,
        round_index: int,
        positions: Dict[int, int],
        indptr: np.ndarray,
        neighbors: np.ndarray,
    ) -> None:
        self.snapshot = snapshot
        self.round_index = round_index

        k_alive = len(positions)
        rids = np.fromiter(positions.keys(), dtype=np.int64, count=k_alive)
        nodes = np.fromiter(positions.values(), dtype=np.int64, count=k_alive)
        order = np.lexsort((rids, nodes))
        rids_sorted = rids[order]
        nodes_sorted = nodes[order]
        occ_np, first = np.unique(nodes_sorted, return_index=True)
        counts_np = np.diff(np.append(first, k_alive))
        n_occ = occ_np.shape[0]

        self.occupied: FrozenSet[int] = frozenset(occ_np.tolist())
        self.occ_nodes: List[int] = occ_np.tolist()
        self.rep: List[int] = rids_sorted[first].tolist()
        self.counts: List[int] = counts_np.tolist()
        self.max_id: List[int] = rids_sorted[first + counts_np - 1].tolist()
        self.robots_sorted: List[int] = rids_sorted.tolist()
        self.group_start: List[int] = np.append(first, k_alive).tolist()
        self.degree: List[int] = (
            (indptr[occ_np + 1] - indptr[occ_np]).tolist()
        )

        src, dst, port = occupied_subgraph_edges(indptr, neighbors, occ_np)
        seg_counts = np.bincount(src, minlength=n_occ)
        offsets = np.zeros(n_occ + 1, dtype=np.int64)
        np.cumsum(seg_counts, out=offsets[1:])
        # Flat per-node occupied adjacency in increasing port order; node
        # i's slice is [adj_offset[i], adj_offset[i + 1]).  Kept flat --
        # only multiplicity-component members ever need their slice.
        self.adj_offset: List[int] = offsets.tolist()
        self.adj_dst: List[int] = dst.tolist()
        self.adj_port: List[int] = port.tolist()

        labels = _label_from_edges(n_occ, src, dst)
        self.num_components = int(np.unique(labels).size)
        mult_labels = np.unique(labels[counts_np >= 2])
        self.mult_components: List[List[int]] = [
            np.nonzero(labels == label)[0].tolist() for label in mult_labels
        ]
        self.has_multiplicity = bool(mult_labels.size)
        self.moves: Optional[Dict[int, int]] = None

    # -- Algorithm 2/3/4 on arrays -------------------------------------

    def robots_at(self, occ_index: int) -> List[int]:
        """Robot ids at an occupied node, ascending."""
        return self.robots_sorted[
            self.group_start[occ_index]:self.group_start[occ_index + 1]
        ]

    def smallest_empty_port(self, occ_index: int) -> int:
        """Smallest port toward an empty neighbor (caller guarantees one
        exists: the node is in the leaf node set)."""
        port = 1
        for j in range(self.adj_offset[occ_index], self.adj_offset[occ_index + 1]):
            occupied_port = self.adj_port[j]
            if occupied_port == port:
                port += 1
            elif occupied_port > port:
                break
        return port

    def round_moves(self) -> Dict[int, int]:
        """The round's full ``{robot_id: exit_port}`` map (Algorithm 4)."""
        if self.moves is None:
            moves: Dict[int, int] = {}
            for members in self.mult_components:
                self._component_moves(members, moves)
            self.moves = moves
        return self.moves

    def _component_moves(
        self, members: List[int], moves: Dict[int, int]
    ) -> None:
        rep = self.rep
        counts = self.counts
        offsets = self.adj_offset
        adj_dst = self.adj_dst
        adj_port = self.adj_port

        # Root: smallest-ID multiplicity node (Algorithm 2).
        root = min(
            (m for m in members if counts[m] >= 2), key=rep.__getitem__
        )

        # DFS spanning tree: push neighbors in decreasing port order so
        # the smallest port is explored first; the discovery port is the
        # port at the parent toward the child (unique: simple graph).
        parent: Dict[int, int] = {root: -1}
        parent_port: Dict[int, int] = {}
        stack: List[Tuple[int, int, int]] = []

        def push_neighbors(node: int) -> None:
            for j in range(offsets[node + 1] - 1, offsets[node] - 1, -1):
                neighbor = adj_dst[j]
                if neighbor not in parent:
                    stack.append((neighbor, node, adj_port[j]))

        push_neighbors(root)
        while stack:
            node, discovered_from, port = stack.pop()
            if node in parent:
                continue  # discovered through an earlier (smaller-port) edge
            parent[node] = discovered_from
            parent_port[node] = port
            push_neighbors(node)

        # Disjoint root paths (Algorithm 3), truncated to count-1 (Alg 4).
        # Candidates in increasing leaf representative-ID order; a path is
        # kept iff its non-root nodes are unused.  Edge-disjointness needs
        # no separate check: a shared tree edge has a shared non-root
        # endpoint (its child side), which the node check already rejects.
        # Selection is a deterministic prefix, so stopping at the
        # truncation cap is identical to truncating afterwards.
        max_paths = counts[root] - 1
        degree = self.degree
        leaf_order = sorted(
            (
                m
                for m in members
                if degree[m] > offsets[m + 1] - offsets[m]
            ),
            key=rep.__getitem__,
        )
        used: set = set()
        paths: List[List[int]] = []
        for leaf in leaf_order:
            if len(paths) >= max_paths:
                break
            if leaf == root:
                paths.append([root])  # trivial path: nothing to check
                continue
            chain: List[int] = []
            node = leaf
            while node != root:
                if node in used:
                    break
                chain.append(node)
                node = parent[node]
            else:
                used.update(chain)
                chain.append(root)
                chain.reverse()
                paths.append(chain)

        # Sliding rule: smallest root robot stays; the i-th path gets the
        # (i+1)-st; at interior/leaf nodes the largest-ID robot moves.
        root_robots = self.robots_at(root)
        for index, path in enumerate(paths):
            root_mover = root_robots[index + 1]
            if len(path) == 1:
                moves[root_mover] = self.smallest_empty_port(root)
                continue
            moves[root_mover] = parent_port[path[1]]
            last = len(path) - 1
            for position in range(1, last + 1):
                node = path[position]
                if position < last:
                    port = parent_port[path[position + 1]]
                else:
                    port = self.smallest_empty_port(node)
                moves[self.max_id[node]] = port


# ----------------------------------------------------------------------
# The backend
# ----------------------------------------------------------------------


class VectorizedBackend(ReferenceBackend):
    """Struct-of-arrays phase execution, bit-identical to the reference.

    Inherits the (cheap) move/settle/activate phases and falls back to
    the inherited implementation of every overridden phase when the fast
    path's preconditions do not hold.
    """

    name = "vectorized"

    def on_bind(self) -> None:
        engine = self.engine
        self._csr_snapshot = None
        self._csr: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._round: Optional[_RoundArrays] = None

        algorithm = engine._algorithm
        # No byzantine robots: forged packets feed both observations and
        # honest decisions, so everything must go through the reference
        # packet pipeline.
        self._fast_observe = not engine._byzantine
        # The fully-array compute path additionally requires the stock
        # DispersionDynamic fast mode under its declared model; ablation
        # subclasses (overridden component_moves / decide) and faithful
        # mode fall back to reference decide over lazy observations.
        self._fast_compute = (
            self._fast_observe
            and engine._communication is CommunicationModel.GLOBAL
            and engine._neighborhood_knowledge
            and isinstance(algorithm, DispersionDynamic)
            and type(algorithm).decide is DispersionDynamic.decide
            and type(algorithm).component_moves
            is DispersionDynamic.component_moves
            and type(algorithm).on_round_start
            is DispersionDynamic.on_round_start
            and not getattr(algorithm, "_faithful", True)
        )
        # Stock persistent state is {"id": robot_id}: the audit reduces
        # to one bits_for_state call on the largest honest id (bit cost
        # is monotone in the id, with or without a declared bound).
        self._fast_audit = (
            type(algorithm).persistent_state
            is RobotAlgorithm.persistent_state
        )

    # -- phases ---------------------------------------------------------

    def observe(self, snapshot, round_index: int):
        engine = self.engine
        if not self._fast_observe:
            self._round = None
            return super().observe(snapshot, round_index)
        if self._csr_snapshot is not snapshot:
            self._csr = snapshot_to_csr(snapshot)
            self._csr_snapshot = snapshot
        indptr, neighbors = self._csr
        positions = dict(engine._positions)
        self._round = _RoundArrays(
            snapshot, round_index, positions, indptr, neighbors
        )
        num_occupied = len(self._round.occ_nodes)
        engine._packets_broadcast += num_occupied
        if engine._communication is CommunicationModel.GLOBAL:
            engine._packet_deliveries += num_occupied * len(positions)
        else:
            engine._packet_deliveries += len(positions)
        return _LazyObservations(
            snapshot,
            round_index,
            positions,
            dict(engine._entry_ports),
            engine._communication,
            engine._neighborhood_knowledge,
        )

    def compute(
        self, snapshot, round_index: int, observations, active
    ) -> Dict[int, Decision]:
        arrays = self._round
        if (
            not self._fast_compute
            or arrays is None
            or arrays.snapshot is not snapshot
            or arrays.round_index != round_index
        ):
            return super().compute(snapshot, round_index, observations, active)
        if not arrays.has_multiplicity:
            # No multiplicity packet anywhere: every robot stays
            # (DispersionDynamic's termination test).
            return {robot_id: STAY for robot_id in sorted(active)}
        moves = arrays.round_moves()
        decisions: Dict[int, Decision] = {}
        for robot_id in sorted(active):
            port = moves.get(robot_id)
            decisions[robot_id] = (
                MoveDecision(port) if port is not None else STAY
            )
        return decisions

    def audit_memory(self) -> int:
        if not self._fast_audit:
            return super().audit_memory()
        engine = self.engine
        if engine._byzantine:
            honest = [
                robot_id
                for robot_id in engine._positions
                if robot_id not in engine._byzantine
            ]
        else:
            honest = list(engine._positions)
        if not honest:
            return 0
        bounds = engine._algorithm.persistent_state_bounds(
            engine._k, engine._n
        )
        return bits_for_state({"id": max(honest)}, bounds=bounds)

    def count_occupied_components(self, snapshot, occupied) -> int:
        arrays = self._round
        if (
            arrays is not None
            and arrays.snapshot is snapshot
            and arrays.occupied == occupied
        ):
            return arrays.num_components
        return super().count_occupied_components(snapshot, occupied)
