"""Post-hoc invariant verification of recorded runs.

A :class:`~repro.sim.metrics.RunResult` produced with
``collect_records=True`` (and, for the physical checks,
``collect_snapshots=True``) carries enough ground truth to verify that the
run respected both the *model* and the *paper's* invariants.  The checks
are split accordingly:

Model invariants (must hold for every algorithm):

* :func:`check_moves_cross_edges` -- every position change in a round
  traverses exactly one edge of that round's graph ``G_r`` (no teleports);
* :func:`check_robots_conserved` -- robots only disappear by crashing;
* :func:`check_round_indices` -- records are contiguous from round 0.

Paper invariants (hold for the canonical algorithm in its model):

* :func:`check_occupied_monotone` -- previously occupied nodes stay
  occupied (Lemma 7's first half; fault-free synchronous runs only);
* :func:`check_progress_every_round` -- at least one newly occupied node
  per executed round (Lemma 7's second half);
* :func:`check_moves_bounded_by_paths` -- at most one robot leaves any
  non-root node per round (disjointness made physical).

:func:`verify_run` bundles the applicable checks and returns a list of
violation strings (empty = clean), so tests can assert emptiness and
benchmarks can count violations.
"""

from __future__ import annotations

from typing import List

from repro.sim.metrics import RunResult, TerminationReason


def check_round_indices(result: RunResult) -> List[str]:
    """Records must be contiguous, starting at round 0."""
    violations = []
    for expected, record in enumerate(result.records):
        if record.round_index != expected:
            violations.append(
                f"record {expected} carries round_index "
                f"{record.round_index}"
            )
    return violations


def check_robots_conserved(result: RunResult) -> List[str]:
    """Robots present at a round's start either end it somewhere or crash
    (after Compute); new robots never appear."""
    violations = []
    for record in result.records:
        before = set(record.positions_before)
        after = set(record.positions_after)
        crashed = set(record.crashed_after_compute)
        if after - before:
            violations.append(
                f"round {record.round_index}: robots {sorted(after - before)} "
                "appeared from nowhere"
            )
        missing = before - after - crashed
        if missing:
            violations.append(
                f"round {record.round_index}: robots {sorted(missing)} "
                "vanished without crashing"
            )
    return violations


def check_moves_cross_edges(result: RunResult) -> List[str]:
    """Every per-round position change must be along an edge of ``G_r``.

    Requires snapshots in the records (``collect_snapshots=True``).
    """
    violations = []
    for record in result.records:
        if record.snapshot is None:
            violations.append(
                f"round {record.round_index}: no snapshot recorded; rerun "
                "with collect_snapshots=True"
            )
            continue
        for robot_id, before in record.positions_before.items():
            after = record.positions_after.get(robot_id)
            if after is None or after == before:
                continue
            if not record.snapshot.has_edge(before, after):
                violations.append(
                    f"round {record.round_index}: robot {robot_id} "
                    f"teleported {before} -> {after} (no such edge in G_r)"
                )
    return violations


def check_occupied_monotone(result: RunResult) -> List[str]:
    """Fault-free Lemma 7 (first half): occupied nodes never vacate."""
    violations = []
    for record in result.records:
        lost = record.occupied_before - record.occupied_after
        if lost:
            violations.append(
                f"round {record.round_index}: occupied nodes "
                f"{sorted(lost)} were vacated"
            )
    return violations


def check_progress_every_round(result: RunResult) -> List[str]:
    """Fault-free Lemma 7 (second half): >= 1 new node per round."""
    violations = []
    for record in result.records:
        if not record.newly_occupied:
            violations.append(
                f"round {record.round_index}: no newly occupied node"
            )
    return violations


def check_moves_bounded_by_paths(result: RunResult) -> List[str]:
    """At most one robot leaves any node per round, except multiplicity
    nodes acting as path roots (which may send one robot per path).

    For the canonical algorithm, a node that is not a spanning-tree root
    belongs to at most one disjoint path (Observation 4), so at most one
    of its robots moves.  Roots may send several, but never all: the node
    must stay occupied.  The executable form: every node that loses robots
    this round either keeps at least one, or receives a replacement.
    """
    violations = []
    for record in result.records:
        departures: dict = {}
        for robot_id, before in record.positions_before.items():
            after = record.positions_after.get(robot_id)
            if after is not None and after != before:
                departures.setdefault(before, []).append(robot_id)
        for node in departures:
            if node not in record.occupied_after:
                violations.append(
                    f"round {record.round_index}: node {node} sent "
                    f"{sorted(departures[node])} away and ended empty"
                )
    return violations


def verify_run(
    result: RunResult,
    *,
    expect_paper_invariants: bool = True,
    expect_physical_moves: bool = True,
) -> List[str]:
    """Run the applicable checks; return all violations found.

    ``expect_paper_invariants`` should be False for runs with crashes,
    semi-synchronous schedules, or non-canonical algorithms -- the model
    checks still apply, the Lemma 7 family does not.
    """
    violations = check_round_indices(result)
    violations += check_robots_conserved(result)
    if expect_physical_moves:
        violations += check_moves_cross_edges(result)
    if expect_paper_invariants:
        if result.crashed_robots:
            raise ValueError(
                "paper invariants are fault-free statements; pass "
                "expect_paper_invariants=False for faulty runs"
            )
        violations += check_occupied_monotone(result)
        if result.reason is not TerminationReason.ALREADY_DISPERSED:
            violations += check_progress_every_round(result)
        violations += check_moves_bounded_by_paths(result)
    return violations
