"""Synchronous Communicate-Compute-Move simulation of robot algorithms.

This package is the substrate that stands in for the paper's synchronous
dynamic network: it owns the ground truth (node indices, robot positions,
who is alive), builds exactly the observations each communication/sensing
model entitles robots to, runs the per-round CCM loop against a (possibly
adversarial) dynamic graph, injects crash faults, audits persistent memory,
and records traces and metrics.

The strict separation between ground truth and robot-visible information is
the load-bearing design rule: robots only ever see
:class:`~repro.sim.observation.InfoPacket` s and their own node's local
view, never node indices, so an algorithm that "cheats" cannot typecheck
its way into the simulator.
"""

from repro.sim.observation import (
    CommunicationModel,
    InfoPacket,
    NeighborInfo,
    Observation,
    build_info_packets,
    build_observations,
)
from repro.sim.algorithm import RobotAlgorithm, StayDecision, MoveDecision, Decision
from repro.sim.backend import EngineBackend, ReferenceBackend
from repro.sim.metrics import RoundRecord, RunResult, TerminationReason
from repro.sim.engine import SimulationEngine, SimulationError
from repro.sim.invariants import verify_run
from repro.sim.traceio import (
    dynamic_graph_to_script,
    replay_and_verify,
    run_fingerprint,
    run_result_from_dict,
    run_result_to_dict,
    run_result_to_json,
    script_from_dict,
    script_to_dict,
    snapshot_from_dict,
    snapshot_to_dict,
)
from repro.sim.scheduling import (
    Activation,
    ActivationSchedule,
    AsyncScheduler,
    FsyncScheduler,
    FullActivation,
    RandomSubsetActivation,
    RoundRobinActivation,
    SchedulerModel,
    SsyncScheduler,
)
from repro.sim.hooks import (
    CallbackObserver,
    EngineObserver,
    LiveInvariantChecker,
    PhaseTimer,
    ProgressNarrator,
    TraceCollector,
)
from repro.sim.spec import (
    CODE_VERSION_SALT,
    ComponentSpec,
    CrashSpec,
    PlacementSpec,
    RunSpec,
    SpecError,
    build_backend,
    build_engine,
    canonical_spec_json,
    execute,
    make_spec,
    register_activation,
    register_algorithm,
    register_backend,
    register_byzantine,
    register_graph,
    register_scheduler,
    registered_components,
    spec_digest,
)
from repro.sim.runner import (
    ProcessPoolRunner,
    Runner,
    RunnerError,
    SerialRunner,
    runner_from_jobs,
)
from repro.sim.store import (
    CachingRunner,
    RunStore,
    StoreStats,
    default_cache_dir,
    execute_through_store,
)

__all__ = [
    "CommunicationModel",
    "InfoPacket",
    "NeighborInfo",
    "Observation",
    "build_info_packets",
    "build_observations",
    "RobotAlgorithm",
    "Decision",
    "StayDecision",
    "MoveDecision",
    "RoundRecord",
    "RunResult",
    "TerminationReason",
    "SimulationEngine",
    "SimulationError",
    "EngineBackend",
    "ReferenceBackend",
    "ActivationSchedule",
    "FullActivation",
    "RandomSubsetActivation",
    "RoundRobinActivation",
    "Activation",
    "SchedulerModel",
    "FsyncScheduler",
    "SsyncScheduler",
    "AsyncScheduler",
    "EngineObserver",
    "CallbackObserver",
    "TraceCollector",
    "ProgressNarrator",
    "PhaseTimer",
    "LiveInvariantChecker",
    "ComponentSpec",
    "PlacementSpec",
    "CrashSpec",
    "RunSpec",
    "SpecError",
    "make_spec",
    "build_backend",
    "build_engine",
    "execute",
    "register_graph",
    "register_algorithm",
    "register_backend",
    "register_byzantine",
    "register_activation",
    "register_scheduler",
    "registered_components",
    "CODE_VERSION_SALT",
    "canonical_spec_json",
    "spec_digest",
    "Runner",
    "RunnerError",
    "SerialRunner",
    "ProcessPoolRunner",
    "runner_from_jobs",
    "RunStore",
    "CachingRunner",
    "StoreStats",
    "default_cache_dir",
    "execute_through_store",
    "run_fingerprint",
    "run_result_from_dict",
    "verify_run",
    "dynamic_graph_to_script",
    "replay_and_verify",
    "run_result_to_dict",
    "run_result_to_json",
    "script_from_dict",
    "script_to_dict",
    "snapshot_from_dict",
    "snapshot_to_dict",
]
