"""Legacy setup shim.

The offline environments this repo targets may lack the ``wheel`` package
that PEP 660 editable installs require; with this shim,
``pip install -e . --no-build-isolation --no-use-pep517`` works everywhere.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
