"""Tests for the graph-family generators."""

import random

import pytest

from repro.graph import generators as gen


class TestPath:
    def test_structure(self):
        snap = gen.path_graph(5)
        assert snap.n == 5 and snap.num_edges == 4
        assert snap.degree(0) == snap.degree(4) == 1
        assert all(snap.degree(v) == 2 for v in (1, 2, 3))

    def test_single_node(self):
        assert gen.path_graph(1).num_edges == 0

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            gen.path_graph(0)


class TestCycle:
    def test_structure(self):
        snap = gen.cycle_graph(6)
        assert snap.num_edges == 6
        assert all(snap.degree(v) == 2 for v in snap.nodes())
        assert snap.is_connected()

    def test_rejects_small(self):
        with pytest.raises(ValueError):
            gen.cycle_graph(2)


class TestStar:
    def test_structure(self):
        snap = gen.star_graph(7)
        assert snap.degree(0) == 6
        assert all(snap.degree(v) == 1 for v in range(1, 7))

    def test_custom_center(self):
        snap = gen.star_graph(5, center=3)
        assert snap.degree(3) == 4

    def test_rejects_bad_center(self):
        with pytest.raises(ValueError):
            gen.star_graph(3, center=5)


class TestComplete:
    def test_structure(self):
        snap = gen.complete_graph(5)
        assert snap.num_edges == 10
        assert all(snap.degree(v) == 4 for v in snap.nodes())

    def test_diameter_one(self):
        assert gen.complete_graph(4).diameter() == 1


class TestGrid:
    def test_counts(self):
        snap = gen.grid_graph(3, 4)
        assert snap.n == 12
        assert snap.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
        assert snap.is_connected()

    def test_corner_degrees(self):
        snap = gen.grid_graph(3, 3)
        assert snap.degree(0) == 2
        assert snap.degree(4) == 4  # center

    def test_one_by_one(self):
        assert gen.grid_graph(1, 1).n == 1


class TestTorus:
    def test_regular(self):
        snap = gen.torus_graph(3, 4)
        assert all(snap.degree(v) == 4 for v in snap.nodes())
        assert snap.is_connected()

    def test_rejects_small(self):
        with pytest.raises(ValueError):
            gen.torus_graph(2, 4)


class TestHypercube:
    @pytest.mark.parametrize("dim", [1, 2, 3, 4])
    def test_regular(self, dim):
        snap = gen.hypercube_graph(dim)
        assert snap.n == 2 ** dim
        assert all(snap.degree(v) == dim for v in snap.nodes())
        assert snap.is_connected()

    def test_edge_count(self):
        assert gen.hypercube_graph(3).num_edges == 12


class TestLollipopBarbell:
    def test_lollipop(self):
        snap = gen.lollipop_graph(4, 3)
        assert snap.n == 7
        assert snap.is_connected()
        assert snap.num_edges == 6 + 3

    def test_barbell(self):
        snap = gen.barbell_graph(3, 2)
        assert snap.n == 8
        assert snap.is_connected()
        assert snap.num_edges == 3 + 3 + 3

    def test_lollipop_no_path(self):
        snap = gen.lollipop_graph(3, 0)
        assert snap.n == 3 and snap.num_edges == 3


class TestRandomFamilies:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_tree(self, seed):
        snap = gen.random_tree(12, random.Random(seed))
        assert snap.num_edges == 11
        assert snap.is_connected()

    @pytest.mark.parametrize("seed", range(5))
    def test_random_connected(self, seed):
        rng = random.Random(seed)
        snap = gen.random_connected_graph(15, 10, rng)
        assert snap.is_connected()
        assert 14 <= snap.num_edges <= 24

    def test_random_connected_saturates(self):
        snap = gen.random_connected_graph(4, 100, random.Random(0))
        assert snap.num_edges == 6  # K_4

    @pytest.mark.parametrize("seed", range(3))
    def test_random_regularish(self, seed):
        snap = gen.random_regularish_graph(20, 4, random.Random(seed))
        assert snap.is_connected()
        assert all(snap.degree(v) >= 2 for v in snap.nodes())
        assert snap.max_degree() <= 5

    def test_tree_single_node(self):
        assert gen.random_tree(1, random.Random(0)).n == 1


class TestTwoStars:
    def test_figure2_shape(self):
        snap = gen.two_stars_graph(0, [1, 2, 3], 4, [5, 6], 7)
        assert snap.is_connected()
        assert snap.diameter() == 3
        assert snap.has_edge(0, 4)
        assert snap.degree(0) == 4  # 3 leaves + center edge

    def test_rejects_bad_partition(self):
        with pytest.raises(ValueError):
            gen.two_stars_graph(0, [1], 2, [2], 4)


class TestFamilyRegistry:
    @pytest.mark.parametrize("name", sorted(gen.FAMILY_BUILDERS))
    def test_builds_connected(self, name):
        snap = gen.build_family(name, 10, random.Random(7))
        assert snap.is_connected()
        assert snap.n >= 10 or name == "cycle"

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            gen.build_family("nope", 5, random.Random(0))


class TestLaterFamilies:
    def test_wheel(self):
        snap = gen.wheel_graph(7)
        assert snap.degree(0) == 6
        assert all(snap.degree(v) == 3 for v in range(1, 7))
        assert snap.is_connected()
        assert snap.num_edges == 12

    def test_wheel_rejects_small(self):
        with pytest.raises(ValueError):
            gen.wheel_graph(3)

    def test_complete_bipartite(self):
        snap = gen.complete_bipartite_graph(3, 4)
        assert snap.n == 7 and snap.num_edges == 12
        assert all(snap.degree(v) == 4 for v in range(3))
        assert all(snap.degree(v) == 3 for v in range(3, 7))

    def test_complete_bipartite_rejects_empty_side(self):
        with pytest.raises(ValueError):
            gen.complete_bipartite_graph(0, 3)

    def test_binary_tree(self):
        snap = gen.binary_tree_graph(7)
        assert snap.num_edges == 6
        assert snap.degree(0) == 2
        assert snap.is_connected()

    def test_caterpillar(self):
        snap = gen.caterpillar_graph(4, 2)
        assert snap.n == 12
        assert snap.is_connected()
        assert snap.degree(0) == 3  # spine end: 1 spine + 2 legs

    def test_broom(self):
        snap = gen.broom_graph(5, 6)
        assert snap.n == 11
        assert snap.degree(4) == 7  # last handle node: 1 + 6 bristles
        assert snap.is_connected()

    def test_broom_no_bristles(self):
        assert gen.broom_graph(4, 0).num_edges == 3
