"""Integration matrix: the full cross product of run configurations.

Every cell runs the paper's algorithm end to end and checks the guarantees
that apply to that cell.  The matrix axes:

* dynamics: static random graph / random churn / pure tree churn /
  T-interval churn / dynamic ring / star-star adversary
* start: rooted / few clusters / near-dispersed
* fleet: small (k=6), medium (k=18), near-full (k = n)
* mode: memoized / faithful, with and without per-round records

This file intentionally trades depth for breadth -- the per-module tests
prove the pieces, this one proves the combinations keep composing.
"""

import random

import pytest

from repro.adversary.star_lower_bound import StarStarAdversary
from repro.core.dispersion import DispersionDynamic
from repro.graph.dynamic import (
    RandomChurnDynamicGraph,
    StaticDynamicGraph,
    TIntervalChurnDynamicGraph,
)
from repro.graph.generators import random_connected_graph
from repro.graph.rings import RingDynamicGraph
from repro.robots.robot import RobotSet
from repro.sim.engine import SimulationEngine

N = 24

DYNAMICS = {
    "static": lambda seed: StaticDynamicGraph(
        random_connected_graph(N, N, random.Random(seed))
    ),
    "churn": lambda seed: RandomChurnDynamicGraph(
        N, extra_edges=N // 2, seed=seed
    ),
    "tree_churn": lambda seed: RandomChurnDynamicGraph(
        N, extra_edges=0, seed=seed
    ),
    "t_interval": lambda seed: TIntervalChurnDynamicGraph(
        N, interval=3, extra_edges=6, seed=seed
    ),
    "ring": lambda seed: RingDynamicGraph(
        N, mode="random", removal_probability=0.8, seed=seed
    ),
    "star_adversary": lambda seed: StarStarAdversary(N, [0], seed=seed),
}

STARTS = {
    "rooted": lambda k, seed: RobotSet.rooted(k, N),
    "clusters": lambda k, seed: RobotSet.arbitrary(
        k, N, random.Random(seed), num_occupied=max(1, k // 4)
    ),
    "near_dispersed": lambda k, seed: RobotSet.arbitrary(
        k, N, random.Random(seed), num_occupied=max(1, k - 1)
    ),
}

FLEETS = {"small": 6, "medium": 18, "full": N}


@pytest.mark.parametrize("dynamics_name", sorted(DYNAMICS))
@pytest.mark.parametrize("start_name", sorted(STARTS))
@pytest.mark.parametrize("fleet_name", sorted(FLEETS))
def test_cell(dynamics_name, start_name, fleet_name):
    k = FLEETS[fleet_name]
    # a stable seed (hash() of strings is randomized per process)
    import zlib

    seed = zlib.crc32(
        f"{dynamics_name}:{start_name}:{fleet_name}".encode()
    ) % 1000
    robots = STARTS[start_name](k, seed)
    result = SimulationEngine(
        DYNAMICS[dynamics_name](seed),
        robots,
        DispersionDynamic(),
        max_rounds=4 * k + 32,
    ).run()
    assert result.dispersed, (dynamics_name, start_name, fleet_name)
    alpha = len(robots.occupied_nodes())
    assert result.rounds <= k - alpha + (0 if k > alpha else 1), (
        dynamics_name, start_name, fleet_name, result.rounds,
    )
    assert len(set(result.final_positions.values())) == k
    # fault-free monotone progress in every cell
    for record in result.records:
        assert record.occupied_before <= record.occupied_after


@pytest.mark.parametrize("dynamics_name", ["churn", "ring", "star_adversary"])
def test_cell_faithful_mode_agrees(dynamics_name):
    k, seed = 10, 77
    robots = RobotSet.rooted(k, N)

    def one(faithful):
        return SimulationEngine(
            DYNAMICS[dynamics_name](seed),
            robots,
            DispersionDynamic(faithful=faithful),
            collect_records=False,
        ).run()

    fast, faithful = one(False), one(True)
    assert fast.rounds == faithful.rounds
    assert fast.final_positions == faithful.final_positions


@pytest.mark.parametrize("dynamics_name", sorted(DYNAMICS))
def test_cell_with_faults(dynamics_name):
    from repro.robots.faults import CrashSchedule

    k, seed = 12, 55
    schedule = CrashSchedule.random_schedule(
        k, 3, k // 2, random.Random(seed)
    )
    result = SimulationEngine(
        DYNAMICS[dynamics_name](seed),
        RobotSet.rooted(k, N),
        DispersionDynamic(),
        crash_schedule=schedule,
        max_rounds=4 * k + 32,
    ).run()
    assert result.dispersed, dynamics_name
    survivors = result.final_positions
    assert len(set(survivors.values())) == len(survivors)
