"""Property-based tests (hypothesis) for the core data structures and the
paper's invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.components import partition_into_components
from repro.core.disjoint_paths import (
    check_pairwise_disjoint,
    compute_disjoint_paths,
)
from repro.core.dispersion import DispersionDynamic
from repro.core.spanning_tree import build_spanning_tree
from repro.graph.dynamic import RandomChurnDynamicGraph
from repro.graph.generators import random_connected_graph
from repro.graph.snapshot import GraphSnapshot
from repro.robots.robot import RobotSet
from repro.sim.engine import SimulationEngine
from repro.sim.observation import build_info_packets

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

seeds = st.integers(min_value=0, max_value=10_000)


@st.composite
def snapshots(draw, min_n=2, max_n=25):
    seed = draw(seeds)
    rng = random.Random(seed)
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    extra = draw(st.integers(min_value=0, max_value=2 * n))
    return random_connected_graph(n, extra, rng)


@st.composite
def instances(draw, min_n=3, max_n=25):
    """(snapshot, positions) with 2 <= k <= n robots."""
    snapshot = draw(snapshots(min_n=min_n, max_n=max_n))
    seed = draw(seeds)
    rng = random.Random(seed)
    k = draw(st.integers(min_value=2, max_value=snapshot.n))
    robots = RobotSet.arbitrary(k, snapshot.n, rng)
    return snapshot, robots.positions


# ---------------------------------------------------------------------------
# Snapshot invariants
# ---------------------------------------------------------------------------


@given(snapshots())
@settings(max_examples=60, deadline=None)
def test_ports_are_bijective(snapshot: GraphSnapshot):
    for v in snapshot.nodes():
        ports = snapshot.port_map(v)
        assert sorted(ports) == list(range(1, snapshot.degree(v) + 1))
        assert len(set(ports.values())) == snapshot.degree(v)


@given(snapshots())
@settings(max_examples=60, deadline=None)
def test_edges_are_symmetric_with_consistent_ports(snapshot: GraphSnapshot):
    for edge in snapshot.edges():
        assert snapshot.neighbor_via(edge.u, edge.port_u) == edge.v
        assert snapshot.neighbor_via(edge.v, edge.port_v) == edge.u


@given(snapshots(), seeds)
@settings(max_examples=30, deadline=None)
def test_relabeling_preserves_structure(snapshot: GraphSnapshot, seed: int):
    relabeled = snapshot.relabeled_ports(random.Random(seed))
    assert relabeled.n == snapshot.n
    assert {(e.u, e.v) for e in relabeled.edges()} == {
        (e.u, e.v) for e in snapshot.edges()
    }
    assert [relabeled.degree(v) for v in relabeled.nodes()] == [
        snapshot.degree(v) for v in snapshot.nodes()
    ]


# ---------------------------------------------------------------------------
# Packet / component invariants
# ---------------------------------------------------------------------------


@given(instances())
@settings(max_examples=60, deadline=None)
def test_components_partition_the_occupied_nodes(instance):
    snapshot, positions = instance
    packets = list(build_info_packets(snapshot, positions).values())
    components = partition_into_components(packets)
    reps = [rep for c in components for rep in c.representatives]
    assert len(reps) == len(set(reps))
    assert sorted(reps) == sorted(p.representative_id for p in packets)
    total_robots = sum(c.total_robots() for c in components)
    assert total_robots == len(positions)


@given(instances())
@settings(max_examples=60, deadline=None)
def test_components_match_ground_truth(instance):
    snapshot, positions = instance
    packets = list(build_info_packets(snapshot, positions).values())
    components = partition_into_components(packets)
    truth = snapshot.induced_occupied_components(positions.values())

    def rep_of(node):
        return min(r for r, pos in positions.items() if pos == node)

    truth_sets = {frozenset(rep_of(v) for v in comp) for comp in truth}
    ours = {frozenset(c.representatives) for c in components}
    assert ours == truth_sets


@given(instances())
@settings(max_examples=60, deadline=None)
def test_spanning_trees_span_and_paths_are_disjoint(instance):
    snapshot, positions = instance
    packets = list(build_info_packets(snapshot, positions).values())
    for component in partition_into_components(packets):
        tree = build_spanning_tree(component)
        if tree is None:
            assert not component.has_multiplicity
            continue
        assert sorted(tree.nodes) == component.representatives
        assert tree.is_valid_tree()
        paths = compute_disjoint_paths(tree, component)
        assert check_pairwise_disjoint(paths)
        if len(set(positions.values())) < snapshot.n:
            # Lemma 3: an empty node exists somewhere, so if this
            # component borders one, paths must be non-empty; components
            # always border empty nodes when k < n (2-hop separation).
            assert paths


# ---------------------------------------------------------------------------
# Full-run invariants
# ---------------------------------------------------------------------------


@given(
    st.integers(min_value=2, max_value=24),
    st.integers(min_value=0, max_value=20),
    seeds,
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_dispersion_always_succeeds_within_k_rounds(k, extra, seed):
    n = k + random.Random(seed).randint(0, 10)
    dyn = RandomChurnDynamicGraph(n, extra_edges=extra, seed=seed)
    robots = RobotSet.arbitrary(k, n, random.Random(seed + 1))
    result = SimulationEngine(dyn, robots, DispersionDynamic()).run()
    assert result.dispersed
    assert result.rounds <= result.k - result.initial_occupied
    # Lemma 7: monotone growth
    trajectory = result.occupied_trajectory()
    assert all(b > a for a, b in zip(trajectory, trajectory[1:]))
    # final configuration is a dispersion
    assert len(set(result.final_positions.values())) == k


@given(
    st.integers(min_value=4, max_value=20),
    st.integers(min_value=1, max_value=6),
    seeds,
)
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_faulty_dispersion_survivors_disperse(k, f, seed):
    from repro.robots.faults import CrashSchedule

    f = min(f, k - 1)
    n = k + 5
    rng = random.Random(seed)
    schedule = CrashSchedule.random_schedule(k, f, k, rng)
    dyn = RandomChurnDynamicGraph(n, extra_edges=n // 2, seed=seed)
    result = SimulationEngine(
        dyn,
        RobotSet.rooted(k, n),
        DispersionDynamic(),
        crash_schedule=schedule,
    ).run()
    assert result.dispersed
    survivors = result.final_positions
    assert len(set(survivors.values())) == len(survivors)
    assert set(survivors) | set(result.crashed_robots) == set(
        range(1, k + 1)
    )


# ---------------------------------------------------------------------------
# Anonymity: the robots' world is invariant under node relabeling
# ---------------------------------------------------------------------------


@given(instances(), seeds)
@settings(max_examples=40, deadline=None)
def test_observations_invariant_under_node_relabeling(instance, seed):
    """The graph is anonymous: if the ground-truth node indices are
    permuted (ports carried along), every robot receives exactly the same
    observation.  This proves no node identity leaks into the packets."""
    snapshot, positions = instance
    permutation = list(range(snapshot.n))
    random.Random(seed).shuffle(permutation)

    relabeled_ports = [dict() for _ in range(snapshot.n)]
    for v in range(snapshot.n):
        for port, neighbor in snapshot.port_map(v).items():
            relabeled_ports[permutation[v]][port] = permutation[neighbor]
    relabeled_snapshot = GraphSnapshot.from_port_maps(
        snapshot.n, relabeled_ports
    )
    relabeled_positions = {
        robot: permutation[node] for robot, node in positions.items()
    }

    from repro.sim.observation import build_observations

    original = build_observations(snapshot, positions, 0)
    relabeled = build_observations(
        relabeled_snapshot, relabeled_positions, 0
    )
    assert set(original) == set(relabeled)
    for robot_id in original:
        a, b = original[robot_id], relabeled[robot_id]
        assert a.own_packet == b.own_packet
        assert a.packets == b.packets


@given(instances(min_n=4, max_n=16), seeds)
@settings(max_examples=15, deadline=None)
def test_dispersion_run_isomorphic_under_relabeling(instance, seed):
    """Consequence of anonymity: the whole run commutes with relabeling --
    same rounds, and final positions related by the permutation."""
    snapshot, positions = instance
    permutation = list(range(snapshot.n))
    random.Random(seed).shuffle(permutation)

    relabeled_ports = [dict() for _ in range(snapshot.n)]
    for v in range(snapshot.n):
        for port, neighbor in snapshot.port_map(v).items():
            relabeled_ports[permutation[v]][port] = permutation[neighbor]
    relabeled_snapshot = GraphSnapshot.from_port_maps(
        snapshot.n, relabeled_ports
    )
    relabeled_positions = {
        robot: permutation[node] for robot, node in positions.items()
    }

    from repro.graph.dynamic import StaticDynamicGraph

    a = SimulationEngine(
        StaticDynamicGraph(snapshot), positions, DispersionDynamic()
    ).run()
    b = SimulationEngine(
        StaticDynamicGraph(relabeled_snapshot),
        relabeled_positions,
        DispersionDynamic(),
    ).run()
    assert a.rounds == b.rounds
    assert a.reason is b.reason
    for robot_id, node in a.final_positions.items():
        assert b.final_positions[robot_id] == permutation[node]


# ---------------------------------------------------------------------------
# One-round sliding semantics (unit-level Lemma 7)
# ---------------------------------------------------------------------------


@given(instances())
@settings(max_examples=50, deadline=None)
def test_sliding_moves_preserve_occupancy_unit_level(instance):
    """Applying one round's move map directly to the configuration keeps
    every occupied node occupied and claims >= 1 new node per component
    with a multiplicity -- Lemma 7 at the granularity of a single
    compute step, without the engine in the loop."""
    from repro.core.dispersion import component_moves

    snapshot, positions = instance
    if len(set(positions.values())) == snapshot.n:
        return  # no empty node anywhere; nothing to verify
    packets = list(build_info_packets(snapshot, positions).values())
    moves = {}
    components = partition_into_components(packets)
    for component in components:
        moves.update(component_moves(component))

    new_positions = dict(positions)
    for robot_id, port in moves.items():
        node = positions[robot_id]
        assert 1 <= port <= snapshot.degree(node)
        new_positions[robot_id] = snapshot.neighbor_via(node, port)

    occupied_before = set(positions.values())
    occupied_after = set(new_positions.values())
    assert occupied_before <= occupied_after
    if any(c.has_multiplicity for c in components):
        assert occupied_after - occupied_before
