"""Unit tests for the port-labelled graph snapshot."""

import random

import pytest

from repro.graph.snapshot import GraphSnapshot, PortLabeledEdge


def triangle() -> GraphSnapshot:
    return GraphSnapshot.from_edges(3, [(0, 1), (1, 2), (0, 2)])


class TestPortLabeledEdge:
    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            PortLabeledEdge(1, 1, 1, 2)

    def test_endpoints(self):
        edge = PortLabeledEdge(0, 1, 2, 3)
        assert edge.endpoints() == frozenset({0, 2})

    def test_other(self):
        edge = PortLabeledEdge(0, 1, 2, 3)
        assert edge.other(0) == 2
        assert edge.other(2) == 0

    def test_other_rejects_non_endpoint(self):
        with pytest.raises(ValueError):
            PortLabeledEdge(0, 1, 2, 3).other(5)

    def test_port_at(self):
        edge = PortLabeledEdge(0, 1, 2, 3)
        assert edge.port_at(0) == 1
        assert edge.port_at(2) == 3

    def test_port_at_rejects_non_endpoint(self):
        with pytest.raises(ValueError):
            PortLabeledEdge(0, 1, 2, 3).port_at(9)


class TestConstruction:
    def test_from_edges_basic(self):
        snap = triangle()
        assert snap.n == 3
        assert snap.num_edges == 3

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            GraphSnapshot.from_edges(0, [])

    def test_single_node_no_edges(self):
        snap = GraphSnapshot.from_edges(1, [])
        assert snap.n == 1
        assert snap.degree(0) == 0
        assert snap.is_connected()

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            GraphSnapshot.from_edges(2, [(0, 0)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(ValueError):
            GraphSnapshot.from_edges(3, [(0, 1), (1, 0)])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(ValueError):
            GraphSnapshot.from_edges(2, [(0, 5)])

    def test_canonical_ports_are_sorted_by_neighbor(self):
        snap = GraphSnapshot.from_edges(4, [(1, 3), (1, 0), (1, 2)])
        assert snap.neighbor_via(1, 1) == 0
        assert snap.neighbor_via(1, 2) == 2
        assert snap.neighbor_via(1, 3) == 3

    def test_random_ports_are_a_permutation(self):
        rng = random.Random(1)
        snap = GraphSnapshot.from_edges(
            5, [(0, 1), (0, 2), (0, 3), (0, 4)], rng=rng
        )
        assert sorted(snap.port_map(0)) == [1, 2, 3, 4]
        assert sorted(snap.port_map(0).values()) == [1, 2, 3, 4]

    def test_from_port_maps_roundtrip(self):
        snap = triangle()
        rebuilt = GraphSnapshot.from_port_maps(
            3, [snap.port_map(v) for v in range(3)]
        )
        assert rebuilt == snap

    def test_from_port_maps_rejects_bad_port_range(self):
        with pytest.raises(ValueError):
            GraphSnapshot.from_port_maps(2, [{2: 1}, {1: 0}])

    def test_from_port_maps_rejects_asymmetric(self):
        with pytest.raises(ValueError):
            GraphSnapshot.from_port_maps(3, [{1: 1}, {1: 2}, {1: 1}])

    def test_from_port_maps_rejects_self_loop(self):
        with pytest.raises(ValueError):
            GraphSnapshot.from_port_maps(2, [{1: 0}, {}])

    def test_from_port_maps_rejects_parallel_edges(self):
        with pytest.raises(ValueError):
            GraphSnapshot.from_port_maps(
                2, [{1: 1, 2: 1}, {1: 0, 2: 0}]
            )


class TestQueries:
    def test_degree(self):
        snap = GraphSnapshot.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert snap.degree(0) == 3
        assert snap.degree(1) == 1

    def test_max_degree(self):
        snap = GraphSnapshot.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert snap.max_degree() == 3

    def test_neighbors_in_port_order(self):
        snap = triangle()
        assert snap.neighbors(0) == (1, 2)

    def test_ports(self):
        snap = triangle()
        assert snap.ports(0) == (1, 2)
        assert snap.ports(1) == (1, 2)

    def test_neighbor_via_unknown_port_raises(self):
        with pytest.raises(ValueError):
            triangle().neighbor_via(0, 7)

    def test_port_of(self):
        snap = triangle()
        for v in snap.nodes():
            for port in snap.ports(v):
                neighbor = snap.neighbor_via(v, port)
                assert snap.port_of(v, neighbor) == port

    def test_port_of_non_neighbor_raises(self):
        snap = GraphSnapshot.from_edges(3, [(0, 1), (1, 2)])
        with pytest.raises(ValueError):
            snap.port_of(0, 2)

    def test_has_edge(self):
        snap = GraphSnapshot.from_edges(3, [(0, 1), (1, 2)])
        assert snap.has_edge(0, 1) and snap.has_edge(1, 0)
        assert not snap.has_edge(0, 2)

    def test_edges_are_canonical(self):
        snap = triangle()
        for edge in snap.edges():
            assert edge.u < edge.v
            assert snap.port_of(edge.u, edge.v) == edge.port_u
            assert snap.port_of(edge.v, edge.u) == edge.port_v

    def test_iter_yields_nodes(self):
        assert list(triangle()) == [0, 1, 2]

    def test_repr(self):
        assert repr(triangle()) == "GraphSnapshot(n=3, m=3)"


class TestAnalysis:
    def test_connected_true(self):
        assert triangle().is_connected()

    def test_connected_false(self):
        snap = GraphSnapshot.from_edges(4, [(0, 1), (2, 3)])
        assert not snap.is_connected()

    def test_bfs_distances(self):
        snap = GraphSnapshot.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert snap.bfs_distances(0) == [0, 1, 2, 3]

    def test_bfs_unreachable_marked(self):
        snap = GraphSnapshot.from_edges(3, [(0, 1)])
        assert snap.bfs_distances(0)[2] == -1

    def test_diameter_path(self):
        snap = GraphSnapshot.from_edges(5, [(i, i + 1) for i in range(4)])
        assert snap.diameter() == 4

    def test_diameter_disconnected_raises(self):
        snap = GraphSnapshot.from_edges(3, [(0, 1)])
        with pytest.raises(ValueError):
            snap.diameter()

    def test_connected_node_components(self):
        snap = GraphSnapshot.from_edges(5, [(0, 1), (2, 3)])
        comps = {frozenset(c) for c in snap.connected_node_components()}
        assert comps == {frozenset({0, 1}), frozenset({2, 3}), frozenset({4})}

    def test_induced_occupied_components(self):
        snap = GraphSnapshot.from_edges(
            6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]
        )
        comps = snap.induced_occupied_components([0, 1, 3, 4])
        assert {frozenset(c) for c in comps} == {
            frozenset({0, 1}),
            frozenset({3, 4}),
        }

    def test_to_networkx(self):
        import networkx as nx

        graph = triangle().to_networkx()
        assert nx.is_connected(graph)
        assert graph.number_of_edges() == 3
        assert graph.edges[0, 1]["ports"][0] == 1

    def test_relabeled_ports_preserves_edges(self):
        snap = GraphSnapshot.from_edges(6, [(i, i + 1) for i in range(5)])
        relabeled = snap.relabeled_ports(random.Random(3))
        assert {(e.u, e.v) for e in snap.edges()} == {
            (e.u, e.v) for e in relabeled.edges()
        }


class TestEquality:
    def test_equal_snapshots(self):
        assert triangle() == triangle()

    def test_port_labelling_matters(self):
        a = GraphSnapshot.from_port_maps(
            3, [{1: 1, 2: 2}, {1: 0, 2: 2}, {1: 0, 2: 1}]
        )
        b = GraphSnapshot.from_port_maps(
            3, [{1: 2, 2: 1}, {1: 0, 2: 2}, {1: 0, 2: 1}]
        )
        assert a != b

    def test_hashable(self):
        assert len({triangle(), triangle()}) == 1

    def test_not_equal_to_other_type(self):
        assert triangle() != "graph"
