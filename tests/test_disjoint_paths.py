"""Tests for Algorithm 3: disjoint root-path selection.

Covers Lemma 3 (non-emptiness), Lemma 4 (agreement/determinism), Lemma 5
(every selected leaf has an empty neighbor), Definition 5 and Observation 4
(disjointness), plus the trivial root path.
"""

import pytest

from repro.analysis.figures import build_fig3_instance
from repro.core.components import build_component, partition_into_components
from repro.core.disjoint_paths import (
    RootPath,
    check_pairwise_disjoint,
    compute_disjoint_paths,
    leaf_node_set,
)
from repro.core.spanning_tree import build_spanning_tree
from repro.graph.generators import path_graph, star_graph

from tests.conftest import make_packets, random_instance


def paths_for(snapshot, positions, rep):
    packets = make_packets(snapshot, positions)
    component = build_component(packets, rep)
    tree = build_spanning_tree(component)
    assert tree is not None
    return component, tree, compute_disjoint_paths(tree, component)


class TestRootPathType:
    def test_fields(self):
        path = RootPath((1, 4, 7))
        assert path.root == 1 and path.leaf == 7
        assert not path.is_trivial
        assert path.interior_and_leaf == (4, 7)
        assert path.edges() == [(1, 4), (4, 7)]
        assert len(path) == 3

    def test_trivial(self):
        path = RootPath((5,))
        assert path.is_trivial
        assert path.root == path.leaf == 5
        assert path.edges() == []

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RootPath(())

    def test_rejects_repeats(self):
        with pytest.raises(ValueError):
            RootPath((1, 2, 1))


class TestLeafNodeSet:
    def test_rooted_single_node(self):
        """A lone multiplicity node with empty neighbors is its own leaf."""
        snap = star_graph(5)
        _, tree, paths = paths_for(snap, {1: 0, 2: 0, 3: 0}, 1)
        component = build_component(
            make_packets(snap, {1: 0, 2: 0, 3: 0}), 1
        )
        assert leaf_node_set(tree, component) == [1]
        assert paths == [RootPath((1,))]

    def test_only_nodes_with_empty_neighbors(self):
        snap = path_graph(5)
        positions = {1: 0, 2: 0, 3: 1, 4: 2}
        component, tree, _ = paths_for(snap, positions, 1)
        # node0 (rep 1): neighbor node1 occupied -> not a leaf
        # node1 (rep 3): neighbors node0, node2 occupied -> not a leaf
        # node2 (rep 4): neighbor node3 empty -> leaf
        assert leaf_node_set(tree, component) == [4]

    def test_sorted_ascending(self):
        instance = build_fig3_instance()
        packets = make_packets(instance.snapshot, instance.positions)
        for component in partition_into_components(packets):
            tree = build_spanning_tree(component)
            leaves = leaf_node_set(tree, component)
            assert leaves == sorted(leaves)


class TestLemma3NonEmpty:
    @pytest.mark.parametrize("seed", range(12))
    def test_multiplicity_component_has_a_path(self, seed):
        snap, positions = random_instance(seed)
        if len(set(positions.values())) == snap.n:
            pytest.skip("no empty node: k == n dispersed-ish instance")
        packets = make_packets(snap, positions)
        for component in partition_into_components(packets):
            tree = build_spanning_tree(component)
            if tree is None:
                continue
            paths = compute_disjoint_paths(tree, component)
            assert len(paths) >= 1, seed


class TestLemma5LeafHasEmptyNeighbor:
    @pytest.mark.parametrize("seed", range(12))
    def test_every_leaf_has_empty_neighbor(self, seed):
        snap, positions = random_instance(seed)
        packets = make_packets(snap, positions)
        for component in partition_into_components(packets):
            tree = build_spanning_tree(component)
            if tree is None:
                continue
            for path in compute_disjoint_paths(tree, component):
                assert component.node(path.leaf).has_empty_neighbor


class TestDefinition5Disjointness:
    @pytest.mark.parametrize("seed", range(12))
    def test_pairwise_disjoint(self, seed):
        snap, positions = random_instance(seed)
        packets = make_packets(snap, positions)
        for component in partition_into_components(packets):
            tree = build_spanning_tree(component)
            if tree is None:
                continue
            paths = compute_disjoint_paths(tree, component)
            assert check_pairwise_disjoint(paths)

    def test_observation4_node_in_at_most_one_path(self):
        """Any non-root node appears in at most one selected path."""
        for seed in range(8):
            snap, positions = random_instance(seed)
            packets = make_packets(snap, positions)
            for component in partition_into_components(packets):
                tree = build_spanning_tree(component)
                if tree is None:
                    continue
                seen = set()
                for path in compute_disjoint_paths(tree, component):
                    for node in path.interior_and_leaf:
                        assert node not in seen
                        seen.add(node)

    def test_check_pairwise_disjoint_detects_overlap(self):
        assert not check_pairwise_disjoint(
            [RootPath((1, 2, 3)), RootPath((1, 2, 4))]
        )
        assert not check_pairwise_disjoint(
            [RootPath((1, 3)), RootPath((1, 2, 3))]
        )
        assert check_pairwise_disjoint(
            [RootPath((1, 2)), RootPath((1, 3))]
        )


class TestOrderingAndGreediness:
    def test_paths_in_increasing_leaf_order(self):
        for seed in range(8):
            snap, positions = random_instance(seed)
            packets = make_packets(snap, positions)
            for component in partition_into_components(packets):
                tree = build_spanning_tree(component)
                if tree is None:
                    continue
                leaves = [
                    p.leaf for p in compute_disjoint_paths(tree, component)
                ]
                assert leaves == sorted(leaves)

    def test_star_center_multiplicity_selects_many_paths(self):
        """On a star with the multiplicity at the center, every occupied
        leaf with an empty sibling gives a disjoint path."""
        snap = star_graph(7)
        positions = {1: 0, 2: 0, 3: 1, 4: 2, 5: 3}
        component, tree, paths = paths_for(snap, positions, 1)
        # center has empty neighbors (nodes 4,5,6) -> trivial path [1];
        # occupied leaves have no empty neighbors -> no other leaf nodes.
        assert [list(p.nodes) for p in paths] == [[1]]

    def test_line_with_two_frontiers(self):
        """Multiplicity in the middle of a path: both directions give
        disjoint paths."""
        snap = path_graph(7)
        positions = {3: 2, 1: 3, 2: 3, 4: 4}  # occupied nodes 2,3,4
        component, tree, paths = paths_for(snap, positions, 1)
        assert tree.root == 1
        leaf_reps = {p.leaf for p in paths}
        assert leaf_reps == {3, 4}  # node2 (rep 3) and node4 (rep 4)
        assert check_pairwise_disjoint(paths)


class TestLemma4Agreement:
    @pytest.mark.parametrize("seed", range(6))
    def test_same_paths_from_any_member(self, seed):
        snap, positions = random_instance(seed)
        packets = make_packets(snap, positions)
        by_component = {}
        for packet in packets:
            rep = packet.representative_id
            component = build_component(packets, rep)
            tree = build_spanning_tree(component)
            if tree is None:
                continue
            paths = tuple(
                tuple(p.nodes)
                for p in compute_disjoint_paths(tree, component)
            )
            key = frozenset(component.representatives)
            if key in by_component:
                assert by_component[key] == paths
            else:
                by_component[key] = paths
